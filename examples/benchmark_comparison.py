"""Head-to-head comparison of every method on one dataset.

A compact, self-contained version of the paper's Tables 2/4 and
Figure 3 on a single dataset stand-in: builds each method, measures
construction time, index size and query time on a shared equal
workload, and prints one row per method.

Run:  python examples/benchmark_comparison.py [dataset]
"""

import sys
import time

from repro.bench.experiments import PAPER_METHODS, get_experiment
from repro.core.base import get_method
from repro.datasets.catalog import load
from repro.datasets.workloads import equal_workload


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "arxiv"
    exp = get_experiment("table2")
    graph = load(dataset)
    print(f"dataset {dataset}: |V|={graph.n:,} |E|={graph.m:,}")
    workload = equal_workload(graph, 5000, seed=7)
    print(f"workload: {len(workload):,} queries, {workload.positives:,} positive\n")

    header = f"{'method':<8}{'build (ms)':>12}{'index (k ints)':>16}{'queries (ms)':>14}"
    print(header)
    print("-" * len(header))
    for method in PAPER_METHODS + ["BFS"]:
        budget = exp.budgets.get(method)
        params = budget.params if budget else {}
        t0 = time.perf_counter()
        try:
            index = get_method(method)(graph, **params)
        except MemoryError:
            print(f"{method:<8}{'—':>12}{'—':>16}{'—':>14}")
            continue
        build_ms = (time.perf_counter() - t0) * 1000
        pairs = workload.pairs if method != "BFS" else workload.pairs[:500]
        t0 = time.perf_counter()
        answers = index.query_batch(pairs)
        query_ms = (time.perf_counter() - t0) * 1000
        if method == "BFS":
            query_ms *= len(workload.pairs) / len(pairs)  # extrapolate
        size_k = index.index_size_ints() / 1000
        print(f"{method:<8}{build_ms:>12.1f}{size_k:>16.1f}{query_ms:>14.1f}")
        del answers


if __name__ == "__main__":
    main()
