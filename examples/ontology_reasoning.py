"""Ontology subsumption with a reachability oracle + exact distances.

Gene-Ontology-style taxonomies (the paper's go_uniprot / uniprotenc
datasets) ask two queries constantly:

* *subsumption*: is term A a (transitive) descendant of term B?
  — a reachability query along child -> parent edges,
* *semantic depth*: how many is-a steps separate A from B?
  — a distance query, answered here by the Pruned Landmark baseline
  (the one method in the paper's evaluation that retains distances).

Run:  python examples/ontology_reasoning.py
"""

import random
import time

from repro.core.distribution import DistributionLabeling
from repro.baselines.pruned_landmark import PrunedLandmark
from repro.graph.generators import ontology_dag


def main() -> None:
    n = 15_000
    g = ontology_dag(n, extra_parent_ratio=0.3, roots=5, seed=11)
    print(f"ontology: {g.n:,} terms, {g.m:,} is-a edges (child -> parent)")

    t0 = time.perf_counter()
    dl = DistributionLabeling(g)
    print(f"DL oracle built in {time.perf_counter() - t0:.2f}s "
          f"({dl.index_size_ints():,} label ints)")

    t0 = time.perf_counter()
    pl = PrunedLandmark(g)
    print(f"PL distance labeling built in {time.perf_counter() - t0:.2f}s "
          f"({pl.index_size_ints():,} ints)")

    rng = random.Random(5)
    print("\nsubsumption checks (is A under B?):")
    for i in range(6):
        a = rng.randrange(n // 2, n)  # specific terms are newer
        if i % 2 == 0:
            # A genuine ancestor: walk a few is-a steps up from a.
            b = a
            for _ in range(rng.randrange(2, 6)):
                parents = g.out(b)
                if not parents:
                    break
                b = parents[rng.randrange(len(parents))]
        else:
            b = rng.randrange(0, n // 10)  # random general term
        subsumed = dl.query(a, b)
        dist = pl.distance(a, b)
        depth = f", {dist} is-a steps" if dist is not None else ""
        print(f"  term {a:>6} under term {b:>5}? {str(subsumed):5}{depth}")

    # Throughput check: subsumption batches are the hot path in
    # annotation pipelines.
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(50_000)]
    t0 = time.perf_counter()
    positives = sum(dl.query_batch(pairs))
    dt = time.perf_counter() - t0
    print(
        f"\n{len(pairs):,} subsumption queries in {dt * 1000:.0f} ms "
        f"({len(pairs) / dt / 1e6:.2f} M queries/s, {positives:,} positive)"
    )


if __name__ == "__main__":
    main()
