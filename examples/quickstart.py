"""Quickstart: answer reachability queries on any directed graph.

Builds a Distribution-Labeling oracle (the paper's recommended method)
over a small directed graph *with cycles*, runs some queries, inspects
the index, and round-trips it through serialization.

Run:  python examples/quickstart.py
"""

from repro import DiGraph, Reachability
from repro.serialization import load_labels, save_labels


def main() -> None:
    # A little service-call graph: 0..2 form a retry cycle, the rest is
    # a pipeline with a side branch.
    #
    #    0 -> 1 -> 2 -> 0   (cycle: these three reach each other)
    #    2 -> 3 -> 4 -> 5
    #         3 -> 6
    g = DiGraph(7)
    for u, v in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (3, 6)]:
        g.add_edge(u, v)

    oracle = Reachability(g)  # method="DL" by default
    print("oracle:", oracle)
    print("stats:", oracle.stats())

    print("\nqueries:")
    for u, v in [(0, 5), (5, 0), (1, 0), (6, 4), (2, 6)]:
        print(f"  {u} -> {v}?  {oracle.query(u, v)}")

    print("\nvertices reachable from 0:", oracle.reachable_count_from(0))
    print("0 and 2 strongly connected?", oracle.same_scc(0, 2))

    # The witness API explains positive answers with an intermediate hop.
    dag_u = oracle.condensation.comp[0]
    dag_v = oracle.condensation.comp[5]
    hop = oracle.index.witness(dag_u, dag_v)
    print(f"\nwitness hop (condensation ids) for 0->5: {hop}")

    # Build once, serve anywhere: the full pipeline (condensation
    # included) persists as a binary, memory-mappable artifact, and a
    # serving process answers original-graph queries with no graph in
    # memory.
    artifact = "/tmp/quickstart_oracle.rpro"
    oracle.save(artifact)
    served = Reachability.load(artifact)
    print(f"\nreloaded pipeline from {artifact}: {served}")
    print("served query 0 -> 5:", served.query(0, 5))
    print("served same-SCC 1 -> 0:", served.query(1, 0))

    # The older v1 JSON format still round-trips the bare labels of the
    # condensation index (no SCC map — condensation ids only).
    path = "/tmp/quickstart_labels.json"
    save_labels(oracle.index, path)
    frozen = load_labels(path)
    print(f"\nreloaded v1 labels from {path}: {frozen}")
    print("frozen query (condensation ids):", frozen.query(dag_u, dag_v))


if __name__ == "__main__":
    main()
