"""Incremental reachability on an evolving DAG (paper §7 future work).

A workflow/orchestration engine keeps adding tasks and dependency edges
to a running DAG and needs instant answers to "would this new edge
create a cycle?" and "is task B downstream of task A?".  DynamicDL
keeps the DL labels valid under edge insertions — no rebuild per edge —
and rebuilds to the minimal labeling only when the labels have bloated.

Run:  python examples/dynamic_updates.py
"""

import random
import time

from repro.core.dynamic import DynamicDL
from repro.graph.generators import random_dag
from repro.graph.traversal import bfs_reaches


def main() -> None:
    n = 4000
    g = random_dag(n, 8000, seed=1)
    dyn = DynamicDL(g, auto_rebuild_factor=3.0)
    print(f"base DAG: {dyn.n:,} tasks, {dyn.m:,} dependencies")
    print(f"initial labels: {dyn.index_size_ints():,} ints\n")

    rng = random.Random(2)
    inserted = cycles_rejected = redundant = 0
    t0 = time.perf_counter()
    attempts = 0
    while inserted + redundant < 500 and attempts < 20_000:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        # The oracle itself is the cycle guard: O(label) per check.
        if dyn.query(v, u):
            cycles_rejected += 1
            continue
        try:
            changed = dyn.insert_edge(u, v)
        except ValueError:
            cycles_rejected += 1
            continue
        if changed:
            inserted += 1
        else:
            redundant += 1
    dt = time.perf_counter() - t0
    print(f"processed {attempts:,} edge proposals in {dt*1000:.0f} ms:")
    print(f"  {inserted} inserted with new reachability")
    print(f"  {redundant} inserted but already implied")
    print(f"  {cycles_rejected} rejected as cycle-creating")
    print(f"labels now: {dyn.index_size_ints():,} ints "
          f"(auto-rebuild state: {dyn.stats()['inserts_since_rebuild']} inserts "
          f"since last rebuild)")

    # Spot-check against BFS on the evolved graph.
    errors = 0
    for _ in range(2000):
        u, v = rng.randrange(n), rng.randrange(n)
        if dyn.query(u, v) != bfs_reaches(dyn._graph.out_adj, u, v):
            errors += 1
    print(f"\nspot-check vs BFS on 2,000 random pairs: {errors} mismatches")

    dyn.rebuild()
    print(f"after explicit rebuild: {dyn.index_size_ints():,} ints (minimal again)")


if __name__ == "__main__":
    main()
