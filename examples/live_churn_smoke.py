"""CI smoke: mixed insert/delete churn on a live server, drop nothing.

The delete-path acceptance drill, end to end:

1. build a dataset, derive a churn stream — batches mixing removals of
   existing edges with novel insertions — and apply it to a shadow
   graph (the referee),
2. serve the original graph live and fire a pipelined query load at
   it; mid-load, a second client ships the churn batches over the wire
   (``OP_UPDATE_SEQ`` with explicit ``+``/``-`` ops),
3. assert **zero dropped connections / failed requests** and that
   post-churn answers are bit-identical to a *fresh direct build* of
   the shadow graph,
4. push removals past the dirt threshold and assert the background
   recompile fires, compacts every tombstone away, and changes no
   answer.

Run from the repo root (CI runs it on both backends)::

    PYTHONPATH=src python examples/live_churn_smoke.py --dataset kegg
    PYTHONPATH=src REPRO_BACKEND=numpy python examples/live_churn_smoke.py
"""

from __future__ import annotations

import argparse
import random
import sys
import threading
import time

from repro.datasets.catalog import DATASETS, load
from repro.facade import Reachability
from repro.graph.generators import novel_acyclic_edges
from repro.server import ReachClient, run_load


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def make_churn(graph, batches, batch_size, seed):
    """Churn batches + the shadow graph they produce.

    Each batch is ~half removals of edges still present in the shadow,
    half insertions that are novel and acyclic against it.
    """
    rng = random.Random(seed)
    shadow = graph.copy()
    ops_batches = []
    for _ in range(batches):
        ops = []
        n_rm = batch_size // 2
        live_edges = sorted(shadow.edges())
        for u, v in rng.sample(live_edges, min(n_rm, len(live_edges))):
            shadow.remove_edge(u, v)
            ops.append(("-", u, v))
        fresh, shadow = novel_acyclic_edges(
            shadow, batch_size - n_rm, seed=rng.randrange(1 << 30)
        )
        ops.extend(("+", u, v) for u, v in fresh)
        rng.shuffle(ops)
        ops_batches.append(ops)
    return ops_batches, shadow


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="kegg", choices=sorted(DATASETS))
    parser.add_argument("--queries", type=int, default=4000)
    parser.add_argument("--batches", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=20)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args()

    graph = load(args.dataset)
    ops_batches, shadow = make_churn(
        graph, args.batches, args.batch_size, args.seed
    )
    rng = random.Random(args.seed + 1)
    pairs = [
        (rng.randrange(graph.n), rng.randrange(graph.n))
        for _ in range(args.queries)
    ]
    # The referee: a fresh direct build of the churned graph.
    expected = Reachability(shadow.copy(), "DL").query_batch(pairs)

    DIRT = 0.05
    reach = Reachability(graph.copy(), "DL")
    server = reach.serve(live=True, workers=args.workers, dirt_threshold=DIRT)
    try:
        churned = threading.Event()

        def churn_midway():
            time.sleep(0.02)
            with ReachClient(*server.address) as writer:
                for ops in ops_batches:
                    writer.update(ops)
            churned.set()

        churner = threading.Thread(target=churn_midway)
        churner.start()
        report = run_load(*server.address, pairs, connections=4, pipeline=32)
        churner.join()
        check(churned.is_set(), "the churn never happened")
        check(report.errors == 0,
              f"dropped requests during churn: {report.first_error}")

        with ReachClient(*server.address) as client:
            served = client.query_batch(pairs)
            stats = client.stats()
        check(served == expected,
              "post-churn answers diverge from a direct build of the "
              "churned graph")
        n_rm = sum(1 for ops in ops_batches for op in ops if op[0] == "-")
        n_ins = sum(len(ops) for ops in ops_batches) - n_rm
        print(
            f"[churn] {args.dataset}: {n_ins} inserts + {n_rm} removals over "
            f"{len(ops_batches)} wire batches at {report.qps:,.0f} q/s, "
            f"0 errors, answers == direct build (workers={args.workers})"
        )

        # Phase 2: force the dirt threshold and watch the background
        # recompile fire — observed entirely over the wire via stats().
        before = stats["live"]["recompiles"]
        removed = []
        with ReachClient(*server.address) as writer:
            for u, v in sorted(shadow.edges()):
                reply = writer.update([("-", u, v)])
                removed.append((u, v))
                if reply["tombstones"] == 0 and reply["dirt_ratio"] == 0.0 \
                        and writer.stats()["live"]["recompiles"] > before:
                    break  # a recompile already compacted mid-stream
                if reply["dirt_ratio"] >= DIRT:
                    break
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                live = writer.stats()["live"]
                if live["recompiles"] > before and \
                        live["compiler"]["tombstones"] == 0:
                    break
                time.sleep(0.05)
        check(live["recompiles"] > before,
              "dirt threshold crossed but no background recompile ran")
        check(live["compiler"]["tombstones"] == 0,
              "recompile left tombstones behind")
        for u, v in removed:
            shadow.remove_edge(u, v)
        expected2 = Reachability(shadow.copy(), "DL").query_batch(pairs)
        with ReachClient(*server.address) as client:
            check(client.query_batch(pairs) == expected2,
                  "answers diverge after the dirt-triggered recompile")
        print(
            f"[recompile] {len(removed)} more removals -> "
            f"{live['recompiles'] - before} background recompile(s), "
            f"0 tombstones left, answers == direct build"
        )
    finally:
        server.close()
    print("live churn smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
