"""Walk through the paper's running examples (Figures 1 and 2).

* Figure 1 illustrates Hierarchical-Labeling: a DAG is decomposed into
  backbone levels G0 ⊃ G1 ⊃ G2, the core is labeled first, and labels
  flow down through the backbone vertex sets.
* Figure 2 illustrates Distribution-Labeling: vertices are distributed
  as hops in rank order, each covering Cov(Vs ∪ {vi}) via a pruned
  reverse/forward BFS.

The paper's exact figure graph is not fully specified in the text, so
this example uses a small layered DAG of the same character and prints
every intermediate structure, which is what the figures depict.

Run:  python examples/paper_running_examples.py
"""

from repro.core.backbone import hierarchical_decomposition
from repro.core.distribution import DistributionLabeling
from repro.core.hierarchical import HierarchicalLabeling
from repro.core.order import degree_product_order
from repro.graph.generators import layered_dag


def show_hierarchical(g) -> None:
    print("=" * 64)
    print("Hierarchical-Labeling (paper §4, Figure 1)")
    print("=" * 64)
    hierarchy = hierarchical_decomposition(g, eps=2, core_limit=6)
    print(f"vertex hierarchy sizes |Vi|: {hierarchy.level_sizes()}")
    for i, level in enumerate(hierarchy.levels):
        originals = [hierarchy.orig_of_level[i][v] for v in level.backbone_vertices]
        print(f"  level {i}: backbone V{i+1} = {originals[:12]}"
              f"{' …' if len(originals) > 12 else ''}")
    print(f"  core graph: {hierarchy.core_graph.n} vertices, "
          f"{hierarchy.core_graph.m} edges")

    hl = HierarchicalLabeling(g, eps=2, core_limit=6)
    print("\nlabels of the first six vertices (hops are vertex ids):")
    for v in range(6):
        print(f"  v={v}:  Lout={hl.labels.lout[v]}  Lin={hl.labels.lin[v]}")
    print(f"total label size: {hl.index_size_ints()} ints")


def show_distribution(g) -> None:
    print()
    print("=" * 64)
    print("Distribution-Labeling (paper §5, Figure 2)")
    print("=" * 64)
    order = degree_product_order(g)
    ranks = [
        (v, (g.out_degree(v) + 1) * (g.in_degree(v) + 1)) for v in order[:8]
    ]
    print("top of the total order (vertex, (|Nout|+1)(|Nin|+1)):")
    print("  " + ", ".join(f"{v}:{r}" for v, r in ranks) + ", …")

    dl = DistributionLabeling(g)
    print("\nlabels of the first six vertices (hops are rank positions;")
    print("rank r means vertex", [dl.order_list[r] for r in range(4)], "… for r=0..3):")
    for v in range(6):
        print(f"  v={v}:  Lout={dl.labels.lout[v]}  Lin={dl.labels.lin[v]}")
    print(f"total label size: {dl.index_size_ints()} ints "
          f"(HL produced a larger labeling above — the paper's Figure 3 gap)")

    # Demonstrate the non-redundancy property on one hop.
    print("\nevery stored hop is load-bearing (Theorem 4):")
    u = next(v for v in range(g.n) if len(dl.labels.lout[v]) > 1)
    hop = dl.labels.lout[u][0]
    hop_vertex = dl.order_list[hop]
    print(f"  removing hop {hop} (vertex {hop_vertex}) from Lout({u}) would break "
          f"the pair ({u} -> {hop_vertex}) among others.")


def main() -> None:
    g = layered_dag(layers=5, width=8, edges_per_vertex=2, seed=4)
    print(f"running-example DAG: {g.n} vertices, {g.m} edges "
          f"(5 layers of 8, in the spirit of Figure 1)\n")
    show_hierarchical(g)
    show_distribution(g)


if __name__ == "__main__":
    main()
