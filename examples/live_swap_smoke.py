"""CI smoke: hot-swap a served artifact under load, drop nothing.

The live-serving acceptance drill, end to end:

1. build v1 of a dataset and serve it (optionally through a worker
   pool),
2. fire a pipelined query load at the server and, mid-load, hot-swap to
   a v2 artifact (the same graph plus fresh edges) through the
   epoch-versioned store,
3. assert **zero dropped connections / failed requests**, that the
   server reports the new epoch, and that post-swap answers are
   bit-identical to a direct v2 ``CompiledOracle`` (via a fresh
   serve-mode facade on the v2 artifact),
4. repeat the swap through the *update* path: serve the graph live and
   insert the same edges over the wire (``OP_UPDATE``), asserting the
   same bit-identical outcome.

Run from the repo root (CI runs both worker shapes on both backends)::

    PYTHONPATH=src python examples/live_swap_smoke.py --dataset kegg --workers 0
    PYTHONPATH=src python examples/live_swap_smoke.py --dataset arxiv --workers 2
"""

from __future__ import annotations

import argparse
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.datasets.catalog import DATASETS, load
from repro.facade import Reachability
from repro.graph.generators import novel_acyclic_edges
from repro.live import VersionedArtifactStore
from repro.server import ReachClient, run_load
from repro.server.service import QueryService, ReachServer


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def swap_smoke(graph, g2, v1_path, v2_path, pairs, expected_v2, workers):
    """Phase 1: store-published swap under client load."""
    store = VersionedArtifactStore()
    store.publish(v1_path)
    service = QueryService(store=store, owns_store=True, workers=workers).start()
    server = ReachServer(service, owns_service=True).start()
    try:
        swapped = threading.Event()

        def swap_midway():
            time.sleep(0.02)
            store.publish(v2_path)
            swapped.set()

        swapper = threading.Thread(target=swap_midway)
        swapper.start()
        report = run_load(*server.address, pairs, connections=4, pipeline=32)
        swapper.join()
        check(swapped.is_set(), "the swap never happened")
        check(report.errors == 0,
              f"dropped requests during swap: {report.first_error}")
        with ReachClient(*server.address) as client:
            check(client.epoch() == 2, "server did not reach epoch 2")
            served = client.query_batch(pairs)
            stats = client.stats()
        check(served == expected_v2,
              "post-swap answers diverge from the direct v2 oracle")
        check(stats["epoch"] == 2, "stats document lacks the epoch")
        return report
    finally:
        server.close()


def update_smoke(graph, edges, pairs, expected_v2, workers):
    """Phase 2: the same v2 reached through wire-protocol updates."""
    reach = Reachability(graph.copy(), "DL")
    server = reach.serve(live=True, workers=workers)
    try:
        with ReachClient(*server.address) as client:
            check(client.epoch() == 1, "live server must start at epoch 1")
            summary = client.update(edges)
            check(summary["epoch"] == 2, f"unexpected update summary {summary}")
            served = client.query_batch(pairs)
        check(served == expected_v2,
              "post-update answers diverge from the direct v2 oracle")
        return summary
    finally:
        server.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="kegg", choices=sorted(DATASETS))
    parser.add_argument("--queries", type=int, default=4000)
    parser.add_argument("--edges", type=int, default=25, help="v2 insertions")
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args()

    graph = load(args.dataset)
    edges, g2 = novel_acyclic_edges(graph, args.edges, seed=args.seed)
    check(edges, "dataset produced no insertable edges")
    rng = random.Random(args.seed + 1)
    pairs = [
        (rng.randrange(graph.n), rng.randrange(graph.n))
        for _ in range(args.queries)
    ]

    with tempfile.TemporaryDirectory() as tmp:
        v1_path = str(Path(tmp) / "v1.rpro")
        v2_path = str(Path(tmp) / "v2.rpro")
        Reachability(graph.copy(), "DL").save(v1_path)
        Reachability(g2.copy(), "DL").save(v2_path)
        # The referee: a direct serve-mode oracle on the v2 artifact.
        expected_v2 = Reachability.load(v2_path).query_batch(pairs)

        report = swap_smoke(
            graph, g2, v1_path, v2_path, pairs, expected_v2, args.workers
        )
        print(
            f"[swap] {args.dataset}: {len(pairs)} queries at "
            f"{report.qps:,.0f} q/s across the swap, 0 errors, "
            f"post-swap answers == direct v2 oracle (workers={args.workers})"
        )

        summary = update_smoke(graph, edges, pairs, expected_v2, args.workers)
        print(
            f"[update] {args.dataset}: {summary['edges']} edges -> epoch "
            f"{summary['epoch']} in {summary['swap_s'] * 1000:.1f} ms "
            f"({'full' if summary['full'] else 'incremental'} compile), "
            f"answers == direct v2 oracle"
        )
    print("live swap smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
