"""CI durability smoke: kill -9 the primary, lose no acked update.

The crash-recovery acceptance drill, end to end
(:func:`repro.cluster.chaos.primary_crash_drill`):

1. boot a journaled primary (``repro.durability.JournaledPrimary``
   behind a killable ``PrimaryProcess``) shipping epochs to blank
   replicas, its data dir on real disk,
2. stream sequenced update batches from one client, recording every
   *acked* batch; with one batch in flight, SIGKILL the primary — no
   flush, no checkpoint, no goodbye,
3. restart the primary on the same data dir and assert, against BFS
   ground truth: every acked update is queryable (**ack ⇒ durable**),
   the in-flight batch landed entirely or not at all
   (**all-or-nothing**), and re-sending it applies **exactly once**
   (the recovered dedupe window answers ``deduped: true`` for
   sequences that already landed),
4. assert every replica re-converges on the recovered primary's epoch
   and serves identical answers.

Then a second, faster pass with ``--sync always`` proves the drill is
policy-independent for kill -9 (``interval``/``off`` trade the power-
loss window for throughput; see README "Durability").

Run from the repo root (CI runs it on both backends)::

    PYTHONPATH=src python examples/recovery_smoke.py
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.cluster.chaos import primary_crash_drill


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def run_drill(tmp: Path, tag: str, **kwargs) -> dict:
    report = primary_crash_drill(str(tmp / tag), **kwargs)
    for name, passed in sorted(report["checks"].items()):
        print(f"  [{tag}] {'ok' if passed else 'FAIL'}: {name}")
    check(report["ok"], f"{tag} drill failed: {report['checks']}")
    info = report["recovery_info"]
    check(info["recovered"] is True, f"{tag}: restart did not run recovery")
    print(
        f"  [{tag}] inflight_acked={report['inflight_acked']} "
        f"applied_on_recovery={report['inflight_applied_on_recovery']} "
        f"replayed={info['records_replayed']} "
        f"restart={report['restart_s'] * 1000:.0f}ms"
    )
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=300)
    parser.add_argument("--batches", type=int, default=12)
    parser.add_argument("--edges-per-batch", type=int, default=3)
    parser.add_argument("--replicas", type=int, default=1)
    parser.add_argument("--queries", type=int, default=300)
    args = parser.parse_args()

    tmp = Path(tempfile.mkdtemp(prefix="repro-recovery-"))

    # -- pass 1: the default group-commit policy under the full drill
    first = run_drill(
        tmp, "interval",
        n=args.n, replicas=args.replicas, batches=args.batches,
        edges_per_batch=args.edges_per_batch, sync="interval",
        query_pairs=args.queries,
    )

    # -- pass 2: per-append fsync, smaller and replica-free
    second = run_drill(
        tmp, "always",
        n=max(60, args.n // 3), replicas=1, batches=6,
        edges_per_batch=2, sync="always",
        query_pairs=max(100, args.queries // 3), seed=11,
    )

    print(
        f"OK n={args.n} batches={args.batches} replicas={args.replicas} "
        f"sync=interval+always acked_lost=0 "
        f"restarts={first['restart_s'] * 1000:.0f}ms/"
        f"{second['restart_s'] * 1000:.0f}ms"
    )


if __name__ == "__main__":
    main()
