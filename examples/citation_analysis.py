"""Citation-network analysis: the paper's motivating workload at scale.

Builds a 20 000-paper preferential-attachment citation DAG, indexes it
with Distribution-Labeling, and contrasts query throughput with plain
BFS — the "one or two orders of magnitude" gap the paper attributes to
online search (§2.1).  Also demonstrates influence analytics: which
early papers are transitively cited by the largest share of the corpus.

Run:  python examples/citation_analysis.py
"""

import random
import time

from repro.core.distribution import DistributionLabeling
from repro.baselines.online import OnlineBFS
from repro.graph.generators import citation_dag


def main() -> None:
    n = 20_000
    print(f"generating a {n}-paper citation DAG ...")
    g = citation_dag(n, out_per_vertex=4, seed=42)
    print(f"  |V|={g.n}, |E|={g.m}")

    t0 = time.perf_counter()
    oracle = DistributionLabeling(g)
    build_s = time.perf_counter() - t0
    print(
        f"DL oracle built in {build_s:.2f}s, "
        f"{oracle.index_size_ints():,} label ints "
        f"(avg {oracle.labels.average_label_len():.1f} per paper)"
    )

    # "Does paper A transitively cite paper B?" over a random batch.
    rng = random.Random(7)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(20_000)]

    t0 = time.perf_counter()
    answers = oracle.query_batch(pairs)
    oracle_s = time.perf_counter() - t0
    print(
        f"\nDL: {len(pairs):,} queries in {oracle_s * 1000:.1f} ms "
        f"({sum(answers):,} positive)"
    )

    bfs = OnlineBFS(g)
    sample = pairs[:500]  # BFS is too slow for the full batch
    t0 = time.perf_counter()
    bfs_answers = bfs.query_batch(sample)
    bfs_s = time.perf_counter() - t0
    est_full = bfs_s * len(pairs) / len(sample)
    print(
        f"BFS: {len(sample)} queries in {bfs_s * 1000:.1f} ms "
        f"(≈{est_full * 1000:.0f} ms extrapolated to the full batch, "
        f"{est_full / oracle_s:.0f}x slower than DL)"
    )
    assert bfs_answers == answers[: len(sample)], "oracle disagrees with BFS!"

    # Influence: fraction of the corpus transitively citing a seminal paper.
    # (Edges point citing -> cited, so "who cites p" is reverse reachability;
    # we count forward from every candidate using the label witness trick:
    # check a sample of readers against each seminal paper.)
    seminal = list(range(10))  # the 10 oldest papers
    readers = [rng.randrange(n) for _ in range(4000)]
    print("\ninfluence of the ten oldest papers (sampled):")
    for p in seminal:
        cited_by = sum(1 for r in readers if r != p and oracle.query(r, p))
        print(f"  paper {p}: transitively cited by {cited_by / len(readers):6.1%} of sampled papers")


if __name__ == "__main__":
    main()
