"""End-to-end serving smoke: build → serve (subprocess) → verify → stop.

The full production lifecycle in one script, and the CI server smoke:

1. build a pipeline artifact for a dataset stand-in,
2. launch ``python -m repro.cli serve`` as a real subprocess (worker
   processes mmap the artifact),
3. drive mixed (equal + uniform-random) queries through the binary
   client,
4. assert every served answer is bit-identical to a direct
   ``CompiledOracle`` on the same artifact,
5. shut the server down over the wire and assert a clean exit code.

Run:  python examples/serve_and_query.py [--dataset kegg] [--queries 200]
      [--workers 2]
"""

import argparse
import os
import random
import shutil
import subprocess
import sys
import tempfile
import time


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="kegg")
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--batch-window", type=float, default=1.0, metavar="MS")
    args = parser.parse_args()

    from repro.datasets.catalog import load
    from repro.datasets.workloads import equal_workload
    from repro.facade import Reachability
    from repro.serialization import load_artifact
    from repro.server import ReachClient

    tmpdir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    artifact = os.path.join(tmpdir, f"{args.dataset}.rpro")
    ready_file = os.path.join(tmpdir, "ready")

    graph = load(args.dataset)
    reach = Reachability(graph, "DL")
    nbytes = reach.save(artifact)
    print(f"built {args.dataset} (n={graph.n:,}) -> {artifact} ({nbytes:,} B)")

    # Mixed workload: ~half an equal (50/50) workload, half uniform
    # random pairs.
    half = args.queries // 2
    wl = equal_workload(graph, half, seed=3)
    rng = random.Random(4)
    pairs = list(wl.pairs) + [
        (rng.randrange(graph.n), rng.randrange(graph.n))
        for _ in range(args.queries - len(wl.pairs))
    ]
    direct = load_artifact(artifact)
    expected = [bool(a) for a in direct.query_batch(pairs)]

    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--artifact", artifact, "--port", "0",
            "--workers", str(args.workers),
            "--batch-window", str(args.batch_window),
            "--ready-file", ready_file,
        ],
        env=os.environ.copy(),
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if os.path.exists(ready_file) and open(ready_file).read().strip():
                break
            if server.poll() is not None:
                raise RuntimeError(f"server died on startup (rc={server.returncode})")
            time.sleep(0.05)
        else:
            raise RuntimeError("server did not become ready within 60s")
        host, port = open(ready_file).read().split()[:2]
        print(f"server ready on {host}:{port} (workers={args.workers})")

        with ReachClient(host, int(port)) as client:
            got = [client.query(*pairs[0])]  # scalar path
            got += client.query_batch(pairs[1:])  # batch path
            if got != expected:
                bad = sum(1 for a, b in zip(got, expected) if a != b)
                raise AssertionError(
                    f"served answers diverge from direct CompiledOracle "
                    f"({bad}/{len(pairs)} mismatches)"
                )
            stats = client.stats()
            print(
                f"{len(pairs)} mixed queries served bit-identical "
                f"({sum(expected)} positive); mean batch "
                f"{stats['batcher']['mean_batch_pairs']:.1f} pairs"
            )
            client.shutdown_server()
        rc = server.wait(timeout=30)
        if rc != 0:
            raise RuntimeError(f"server exited uncleanly (rc={rc})")
        print("clean shutdown: OK")
        return 0
    finally:
        if server.poll() is None:
            server.terminate()
            server.wait(timeout=10)
        shutil.rmtree(tmpdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
