"""Preprocessing pipeline: condense, reduce, measure, estimate.

Before indexing a raw graph, a production pipeline typically: (1)
coalesces strongly connected components (every method in the paper
assumes a DAG), (2) optionally strips redundant edges via transitive
reduction (smaller input, identical reachability), (3) measures the
structure to pick an index, and (4) estimates |TC| with Cohen sketches
to decide whether TC-materialising methods are even affordable — the
pre-flight check behind the "—" entries of the paper's Tables 5-7.

Run:  python examples/graph_preprocessing.py
"""

import time

from repro.core.estimation import estimate_tc_pairs
from repro.graph.generators import powerlaw_digraph
from repro.graph.metrics import compute_metrics
from repro.graph.reduction import transitive_reduction
from repro.graph.scc import condense


def main() -> None:
    raw = powerlaw_digraph(30_000, 90_000, seed=7)
    print(f"raw digraph: {raw.n:,} vertices, {raw.m:,} edges (cyclic)")

    # 1. Condense SCCs.
    t0 = time.perf_counter()
    cond = condense(raw)
    dag = cond.dag
    print(
        f"condensed in {time.perf_counter() - t0:.2f}s -> DAG with "
        f"{dag.n:,} vertices, {dag.m:,} edges "
        f"(largest SCC: {max(len(mem) for mem in cond.members):,} vertices)"
    )

    # 2. Transitive reduction (exact; affordable at this scale).
    t0 = time.perf_counter()
    reduced = transitive_reduction(dag)
    print(
        f"transitive reduction in {time.perf_counter() - t0:.2f}s: "
        f"{dag.m - reduced.m:,} redundant edges removed "
        f"({dag.m:,} -> {reduced.m:,})"
    )

    # 3. Structural metrics drive index choice.
    metrics = compute_metrics(reduced)
    print("\nstructural metrics:")
    for key, value in metrics.as_dict().items():
        print(f"  {key:>16}: {value}")

    # 4. Pre-flight |TC| estimate (Cohen k-min sketches, one sweep).
    t0 = time.perf_counter()
    est, err_hint = estimate_tc_pairs(reduced, k=64, seed=1)
    print(
        f"\nestimated reachable pairs: ~{est:,.0f} "
        f"(±{err_hint:.0%} per-vertex, {time.perf_counter() - t0:.2f}s). "
    )
    budget = 1_000_000
    verdict = "affordable" if est <= budget else "NOT affordable — use an oracle"
    print(f"TC-materialising methods (2HOP/K-Reach) with a {budget:,}-pair "
          f"budget: {verdict}")

    # Index the reduced DAG with DL and sanity-check a few queries.
    from repro.core.distribution import DistributionLabeling

    t0 = time.perf_counter()
    dl = DistributionLabeling(reduced)
    print(
        f"\nDL oracle on the reduced DAG: built in "
        f"{time.perf_counter() - t0:.2f}s, {dl.index_size_ints():,} ints"
    )


if __name__ == "__main__":
    main()
