"""Dependency impact analysis with Hierarchical-Labeling.

Models a package ecosystem as a DAG (package -> dependency), then
answers the two questions a build system asks constantly:

* *forward*: does installing A pull in B? (reachability A -> B)
* *reverse*: a vulnerability lands in package X — which packages are
  affected? (reachability ? -> X, answered by indexing the graph once
  and querying every candidate, which is exactly what a fast oracle is
  for)

Run:  python examples/software_dependencies.py
"""

import random
import time

from repro.core.hierarchical import HierarchicalLabeling
from repro.graph.digraph import DiGraph


def build_ecosystem(n_packages: int, seed: int = 3) -> DiGraph:
    """Synthesize a plausible package ecosystem.

    A small core of foundational libraries gets depended on heavily;
    newer packages depend on a few earlier ones (2-6 deps each), giving
    the scale-free dependency structure of real registries.
    """
    rng = random.Random(seed)
    g = DiGraph(n_packages)
    core = max(5, n_packages // 200)
    for v in range(core, n_packages):
        deps = rng.randrange(2, 7)
        for _ in range(deps):
            # 60% chance of a core library, else any earlier package.
            d = rng.randrange(core) if rng.random() < 0.6 else rng.randrange(v)
            if d != v and not g.has_edge(v, d):
                g.add_edge(v, d)
    return g.freeze()


def main() -> None:
    n = 12_000
    g = build_ecosystem(n)
    print(f"ecosystem: {g.n:,} packages, {g.m:,} dependency edges")

    t0 = time.perf_counter()
    oracle = HierarchicalLabeling(g)
    print(
        f"HL oracle built in {time.perf_counter() - t0:.2f}s; "
        f"hierarchy levels {oracle.hierarchy.level_sizes()}"
    )

    # Forward question: does package 11_000 (an app) depend on core lib 2?
    app, lib = 11_000, 2
    print(f"\npackage {app} transitively depends on {lib}? {oracle.query(app, lib)}")

    # Reverse question: CVE in package X. Which packages are affected?
    cve_pkg = 3
    t0 = time.perf_counter()
    affected = [p for p in range(g.n) if p != cve_pkg and oracle.query(p, cve_pkg)]
    scan_s = time.perf_counter() - t0
    print(
        f"CVE in package {cve_pkg}: {len(affected):,}/{g.n:,} packages affected "
        f"(full-registry scan in {scan_s * 1000:.0f} ms)"
    )

    # Explain one affected package with a witness hop.
    if affected:
        p = affected[-1]
        hop = oracle.witness(p, cve_pkg)
        print(f"example: package {p} is affected via intermediate dependency {hop}")


if __name__ == "__main__":
    main()
