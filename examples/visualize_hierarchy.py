"""Render the HL backbone hierarchy as a Graphviz DOT file.

Reproduces the *look* of the paper's Figure 1: the original DAG with
each vertex shaded by its hierarchy level (darker = higher level /
more important) and backbone edges of G1 highlighted.  Pipe the output
through `dot -Tpng` if Graphviz is installed; the DOT text itself is
the artifact here.

Run:  python examples/visualize_hierarchy.py > hierarchy.dot
"""

import sys

from repro.core.backbone import hierarchical_decomposition
from repro.graph.dot import to_dot
from repro.graph.generators import layered_dag


def main() -> None:
    g = layered_dag(layers=4, width=6, edges_per_vertex=2, seed=2)
    hierarchy = hierarchical_decomposition(g, eps=2, core_limit=4)

    # level[v] = highest hierarchy index that still contains v.
    level = [0] * g.n
    current = list(range(g.n))
    for i, lvl in enumerate(hierarchy.levels):
        orig = hierarchy.orig_of_level[i]
        survivors = {orig[v] for v in lvl.backbone_vertices}
        for v in range(g.n):
            if v in survivors:
                level[v] = i + 1

    # The first-level backbone edges, mapped back to original ids.
    backbone_edges = []
    if hierarchy.levels:
        lvl = hierarchy.levels[0]
        orig = hierarchy.orig_of_level[0]
        for bu, bv in lvl.backbone_graph.edges():
            backbone_edges.append(
                (orig[lvl.from_backbone[bu]], orig[lvl.from_backbone[bv]])
            )
        # Only highlight backbone edges that are real G0 edges (the
        # others are shortcut edges of G1 and do not exist in G0).
        backbone_edges = [e for e in backbone_edges if g.has_edge(*e)]

    dot = to_dot(g, name="Hierarchy", levels=level, highlight_edges=backbone_edges)
    sys.stdout.write(dot)
    print(
        f"// levels: {hierarchy.level_sizes()}  "
        f"(higher level = darker fill; red = G1 backbone edges)",
        file=sys.stderr,
    )


if __name__ == "__main__":
    main()
