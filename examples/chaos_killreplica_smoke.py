"""CI chaos smoke: SIGKILL a replica under load, drop nothing.

The fault-tolerance acceptance drill, end to end:

1. build a dataset artifact and serve it through the replica tier
   (``repro.cluster.serve_replicated``: N replica processes, an epoch
   shipper, a health-checked router front end),
2. fire a pipelined query load at the router and, mid-load, SIGKILL
   one replica process with requests in flight,
3. assert **zero dropped connections / failed requests** — the router
   must absorb the crash with retries — and that answers stay
   bit-identical to the artifact queried directly,
4. publish a new epoch to the primary store mid-load and assert the
   client-observed epoch only ever moves forward while the shipper
   flips each replica in turn,
5. restart the killed replica *blank* and assert the shipper re-fills
   it and probation re-admits it (the tier is back to full strength).

Run from the repo root (CI runs it on both backends)::

    PYTHONPATH=src python examples/chaos_killreplica_smoke.py --dataset kegg
"""

from __future__ import annotations

import argparse
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.cluster import serve_replicated
from repro.datasets.catalog import DATASETS, load
from repro.facade import Reachability
from repro.graph.generators import novel_acyclic_edges
from repro.server import ReachClient, run_load


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def wait_for(predicate, timeout_s, message):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    check(False, message)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="kegg", choices=sorted(DATASETS))
    parser.add_argument("--queries", type=int, default=4000)
    parser.add_argument("--replicas", type=int, default=2)
    args = parser.parse_args()

    graph = load(args.dataset)
    rng = random.Random(7)
    pairs = [
        (rng.randrange(graph.n), rng.randrange(graph.n))
        for _ in range(args.queries)
    ]
    reach = Reachability(graph.copy(), "DL")
    expected = reach.query_batch(pairs)
    updates, g2 = novel_acyclic_edges(graph, 20, seed=3)
    expected_v2 = Reachability(g2, "DL").query_batch(pairs)

    tmp = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    v1 = str(tmp / "v1.rpro")
    v2 = str(tmp / "v2.rpro")
    reach.save(v1)
    Reachability(g2.copy(), "DL").save(v2)

    server = serve_replicated(
        v1,
        replicas=args.replicas,
        sync_interval_s=0.2,
        health_interval_s=0.1,
        probation_delay_s=0.3,
        eject_after=2,
        backoff_base_s=0.01,
    )
    router = server.router
    try:
        host, port = server.address

        # -- phase 1: steady load, answers must match the direct build
        steady = run_load(host, port, pairs, connections=4, pipeline=32)
        check(steady.errors == 0,
              f"steady load dropped requests: {steady.first_error}")
        with ReachClient(host, port) as client:
            check(client.query_batch(pairs) == expected,
                  "routed answers diverge from the direct oracle")

        # -- phase 2: SIGKILL a replica mid-load; zero failures allowed
        victim = server.replicas[0]
        victim_name = f"{victim.host}:{victim.port}"
        base_retries = router.stats()["retries"]
        killed = threading.Event()

        def kill_midway():
            time.sleep(max(0.05, steady.wall_s * 0.3))
            victim.kill()
            killed.set()

        killer = threading.Thread(target=kill_midway)
        killer.start()
        report = run_load(host, port, pairs, connections=4, pipeline=32)
        killer.join()
        check(killed.is_set(), "the kill never happened")
        check(report.errors == 0,
              f"dropped requests during the kill: {report.first_error}")
        wait_for(
            lambda: router.health.state_of(victim_name)["state"] != "healthy",
            10.0,
            "the dead replica was never ejected",
        )
        retries = router.stats()["retries"] - base_retries

        # -- phase 3: epoch flip under load; client epochs only go up
        epochs = []
        stop_polling = threading.Event()

        def poll_epochs():
            with ReachClient(host, port) as poller:
                while not stop_polling.is_set():
                    epochs.append(poller.epoch())
                    time.sleep(0.02)

        poller = threading.Thread(target=poll_epochs)
        poller.start()
        server.store.publish_snapshot(v2)
        flip = run_load(host, port, pairs, connections=4, pipeline=32)
        wait_for(
            lambda: router.current_epoch >= 2, 10.0,
            "the shipped epoch never reached the router",
        )
        stop_polling.set()
        poller.join()
        check(flip.errors == 0,
              f"dropped requests during the epoch flip: {flip.first_error}")
        check(all(a <= b for a, b in zip(epochs, epochs[1:])),
              f"client-observed epochs went backwards: {epochs}")
        with ReachClient(host, port) as client:
            check(client.query_batch(pairs) == expected_v2,
                  "post-flip answers diverge from the direct v2 oracle")

        # -- phase 4: blank restart; shipper re-fills, probation re-admits
        victim.restart()
        wait_for(
            lambda: len(router.health.routable()) == args.replicas,
            20.0,
            "the restarted replica was never re-admitted",
        )
        check(
            router.health.state_of(victim_name)["epoch"]
            == server.store.current_epoch,
            "the restarted replica did not bootstrap to the latest epoch",
        )
        after = run_load(host, port, pairs, connections=4, pipeline=32)
        check(after.errors == 0,
              f"dropped requests after re-admission: {after.first_error}")

        print(
            f"OK dataset={args.dataset} replicas={args.replicas} "
            f"queries={args.queries}x4 errors=0 retries={retries} "
            f"epoch={router.current_epoch} readmitted=True"
        )
    finally:
        server.close()


if __name__ == "__main__":
    main()
