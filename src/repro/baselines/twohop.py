"""2HOP — Cohen et al.'s set-cover based 2-hop labeling.

The original reachability oracle (SIAM J. Comput. 2003) and the paper's
representative of the construction cost problem (§2.2): it materialises
the full transitive closure, then greedily selects hops by
cost-effectiveness until every reachable pair is covered.

Following the heuristic line the paper's own 2HOP baseline adopts
([29] HOPI, [20] 3-hop), candidate sets are taken *whole-hop*: selecting
hop ``w`` covers every still-uncovered pair (a, d) with ``a -> w -> d``,
at cost ``|A'| + |D'|`` (the label entries written), rather than solving
a densest-subgraph problem per candidate.  Selection uses lazy greedy
(CELF): coverage benefits only shrink as pairs get covered, so stale
priority-queue entries are re-evaluated on pop.

Everything the paper says about 2HOP is visible in this implementation:
construction is dominated by TC materialisation plus repeated coverage
counting (our Table 4/7 benchmarks show the gap to DL), and memory is
O(n²/64) bits — the ``max_tc_bits`` budget converts that into the "—"
entries of the large-graph tables.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from ..graph.digraph import DiGraph
from ..graph.topo import topological_order
from ..graph.closure import reverse_transitive_closure_bits, transitive_closure_bits
from ..core.base import ReachabilityIndex, register_method
from ..core.labels import LabelSet

__all__ = ["TwoHop"]


@register_method
class TwoHop(ReachabilityIndex):
    """Set-cover based 2-hop labeling (abbreviation ``2HOP``).

    Parameters
    ----------
    graph:
        The DAG to index.
    max_tc_bits:
        Budget on ``n²`` before refusing to materialise the closure
        (reproduces the paper's DNF behaviour on large graphs).

    Examples
    --------
    >>> from repro.graph.generators import path_dag
    >>> th = TwoHop(path_dag(4))
    >>> th.query(0, 3), th.query(2, 1)
    (True, False)
    """

    short_name = "2HOP"
    full_name = "2-hop set-cover labeling"

    def _build(
        self,
        graph: DiGraph,
        max_tc_bits: int = 400_000_000,
        max_tc_pairs: int = 50_000_000,
    ) -> None:
        n = graph.n
        if n * n > max_tc_bits:
            raise MemoryError(
                f"2HOP transitive closure needs {n * n} bits "
                f"(budget {max_tc_bits}); graph too large"
            )
        order = topological_order(graph)
        if order is None:
            raise ValueError("2HOP requires a DAG; condense first")

        tc = transitive_closure_bits(graph, order)  # reflexive
        total_pairs = sum(b.bit_count() for b in tc) - n
        if total_pairs > max_tc_pairs:
            raise MemoryError(
                f"2HOP set-cover ground set has {total_pairs} pairs "
                f"(budget {max_tc_pairs}); covering would not terminate "
                "in reasonable time"
            )
        rtc = reverse_transitive_closure_bits(graph, order)
        self_bit = [1 << v for v in range(n)]

        # uncovered[a]: strict descendants of a not yet covered by a hop.
        uncovered: List[int] = [tc[a] & ~self_bit[a] for a in range(n)]
        remaining = sum(b.bit_count() for b in uncovered)

        labels = LabelSet(n)

        def benefit(w: int) -> int:
            """Pairs newly covered if w were selected now."""
            desc_w = tc[w]
            anc = rtc[w]
            total = 0
            a_bits = anc
            while a_bits:
                low = a_bits & -a_bits
                a = low.bit_length() - 1
                a_bits ^= low
                u = uncovered[a]
                if u:
                    total += (u & desc_w).bit_count()
            return total

        # CELF lazy greedy: (-stale_benefit, vertex).
        heap = [(-benefit(w), w) for w in range(n)]
        heapq.heapify(heap)

        while remaining > 0:
            neg_b, w = heapq.heappop(heap)
            fresh = benefit(w)
            if fresh == 0:
                continue
            if heap and fresh < -heap[0][0]:
                heapq.heappush(heap, (-fresh, w))
                continue
            # Select w: label contributing ancestors and the union of
            # their newly covered descendants.
            desc_w = tc[w]
            anc = rtc[w]
            newly_covered_union = 0
            a_bits = anc
            while a_bits:
                low = a_bits & -a_bits
                a = low.bit_length() - 1
                a_bits ^= low
                newly = uncovered[a] & desc_w
                if newly:
                    labels.lout[a].append(w)
                    newly_covered_union |= newly
                    uncovered[a] &= ~newly
                    remaining -= newly.bit_count()
            d_bits = newly_covered_union
            while d_bits:
                low = d_bits & -d_bits
                d = low.bit_length() - 1
                d_bits ^= low
                labels.lin[d].append(w)

        # Hops were appended in selection order; sort for merge queries.
        for lab in labels.lout:
            lab.sort()
        for lab in labels.lin:
            lab.sort()
        labels.seal()
        self.labels = labels

    def query(self, u: int, v: int) -> bool:
        if u == v:
            return True
        return self.labels.query(u, v)

    def compile(self):
        """Label artifact; 2HOP labels omit self-hops, so the compiled
        oracle keeps the explicit reflexive short-circuit."""
        from ..core.compiled import CompiledLabelOracle

        return CompiledLabelOracle.from_index(self, reflexive=True)

    def index_size_ints(self) -> int:
        return self.labels.size_ints()

    def stats(self) -> Dict[str, object]:
        base = super().stats()
        base.update(
            {
                "max_label_len": self.labels.max_label_len(),
                "avg_label_len": round(self.labels.average_label_len(), 2),
            }
        )
        return base
