"""Interval sets: the shared substrate of INT and PathTree.

Both Nuutila's INT and PathTree compress each vertex's transitive closure
``TC(u)`` into a sorted list of disjoint integer intervals over some
vertex numbering (§2.1 of the paper: "if TC(u) is {1,2,3,4,8,9,10} it can
be represented as two intervals [1,4] and [8,10]").  The numbering is the
whole trick — a good numbering makes closures contiguous — and is what
distinguishes the two methods; the container below is numbering-agnostic.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = ["IntervalSet"]


class IntervalSet:
    """Sorted disjoint closed intervals ``[a, b]`` over non-negative ints.

    Stored as two parallel lists (starts, ends) to keep membership tests
    a single ``bisect`` plus one comparison.

    Examples
    --------
    >>> s = IntervalSet.from_sorted_ints([1, 2, 3, 4, 8, 9, 10])
    >>> list(s.intervals())
    [(1, 4), (8, 10)]
    >>> 4 in s, 7 in s
    (True, False)
    """

    __slots__ = ("starts", "ends")

    def __init__(self, starts: List[int] = None, ends: List[int] = None) -> None:
        self.starts: List[int] = starts if starts is not None else []
        self.ends: List[int] = ends if ends is not None else []
        if len(self.starts) != len(self.ends):
            raise ValueError("starts/ends length mismatch")

    # ------------------------------------------------------------------
    @classmethod
    def from_sorted_ints(cls, values: Sequence[int]) -> "IntervalSet":
        """Build from a strictly increasing sequence of ints."""
        starts: List[int] = []
        ends: List[int] = []
        for v in values:
            if ends and v == ends[-1] + 1:
                ends[-1] = v
            elif ends and v <= ends[-1]:
                raise ValueError("input not strictly increasing")
            else:
                starts.append(v)
                ends.append(v)
        return cls(starts, ends)

    @classmethod
    def union_merge(cls, sets: Iterable["IntervalSet"]) -> "IntervalSet":
        """Union of several interval sets.

        This is the inner operation of interval-TC propagation: a
        vertex's closure is the union of its own singleton with the
        closures of its out-neighbours.
        """
        events: List[Tuple[int, int]] = []
        for s in sets:
            events.extend(zip(s.starts, s.ends))
        if not events:
            return cls()
        events.sort()
        starts: List[int] = []
        ends: List[int] = []
        cur_s, cur_e = events[0]
        for a, b in events[1:]:
            if a <= cur_e + 1:
                if b > cur_e:
                    cur_e = b
            else:
                starts.append(cur_s)
                ends.append(cur_e)
                cur_s, cur_e = a, b
        starts.append(cur_s)
        ends.append(cur_e)
        return cls(starts, ends)

    # ------------------------------------------------------------------
    def add_point(self, v: int) -> None:
        """Insert a single value (used to seed a closure with the vertex).

        Optimised for the common propagation case where ``v`` is adjacent
        to or inside an existing boundary interval; falls back to a
        general insert otherwise.
        """
        i = bisect_right(self.starts, v)
        if i > 0 and self.ends[i - 1] >= v:
            return  # already covered
        touches_left = i > 0 and self.ends[i - 1] == v - 1
        touches_right = i < len(self.starts) and self.starts[i] == v + 1
        if touches_left and touches_right:
            self.ends[i - 1] = self.ends[i]
            del self.starts[i]
            del self.ends[i]
        elif touches_left:
            self.ends[i - 1] = v
        elif touches_right:
            self.starts[i] = v
        else:
            self.starts.insert(i, v)
            self.ends.insert(i, v)

    def __contains__(self, v: int) -> bool:
        i = bisect_right(self.starts, v)
        return i > 0 and self.ends[i - 1] >= v

    def intervals(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(start, end)`` pairs."""
        return zip(self.starts, self.ends)

    def __len__(self) -> int:
        """Number of intervals."""
        return len(self.starts)

    def cardinality(self) -> int:
        """Number of integers covered."""
        return sum(e - s + 1 for s, e in zip(self.starts, self.ends))

    def to_sorted_ints(self) -> List[int]:
        """Expand back into the covered integers (tests / small sets only)."""
        out: List[int] = []
        for s, e in zip(self.starts, self.ends):
            out.extend(range(s, e + 1))
        return out

    def storage_ints(self) -> int:
        """Integers needed to store this set (two per interval)."""
        return 2 * len(self.starts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self.starts == other.starts and self.ends == other.ends

    def __repr__(self) -> str:
        body = ", ".join(f"[{s},{e}]" for s, e in list(self.intervals())[:4])
        more = "…" if len(self) > 4 else ""
        return f"IntervalSet({body}{more})"
