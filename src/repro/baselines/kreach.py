"""K-Reach — vertex-cover based reachability (basic k = ∞ case).

Cheng, Shang, Cheng, Wang & Yu (PVLDB 2012).  For basic reachability the
index is: a vertex cover ``S`` of the DAG, plus the materialised
transitive closure *restricted to cover vertices*.  Because every edge
has an endpoint in ``S``, no two non-cover vertices are adjacent, so any
path decomposes into cover-to-cover segments of length ≤ 2; four query
cases (by cover membership of the endpoints) each reduce to O(deg) probes
of the cover closure.

The defining weakness reproduced here: the cover of a large graph is
large, and materialising its pairwise closure is quadratic in the cover
size — K-Reach fails on most large graphs (Tables 5-7 report "—"), which
our budget guards reproduce.  As the paper notes, K-Reach is "a
reachability backbone with ε = 1" whose backbone index is a full TC.
"""

from __future__ import annotations

from typing import Dict, List

from ..graph.digraph import DiGraph
from ..graph.topo import topological_order
from ..core.base import ReachabilityIndex, register_method
from ..core.order import degree_product_order

__all__ = ["KReach"]


@register_method
class KReach(ReachabilityIndex):
    """K-Reach index for basic reachability (abbreviation ``KR``).

    Parameters
    ----------
    graph:
        The DAG to index.
    max_cover_closure_bits:
        Safety budget on the ``|S|²`` closure bit matrix used during
        construction.
    max_cover_tc_entries:
        Budget on the number of materialised cover-to-cover reachable
        pairs — the index size that makes K-Reach fail on large graphs
        (the "—" entries of Tables 5-7).
    """

    short_name = "KR"
    full_name = "K-Reach (vertex cover)"

    def _build(
        self,
        graph: DiGraph,
        max_cover_closure_bits: int = 600_000_000,
        max_cover_tc_entries: int = 200_000_000,
    ) -> None:
        order = topological_order(graph)
        if order is None:
            raise ValueError("K-Reach requires a DAG; condense first")

        cover = self._greedy_vertex_cover(graph)
        if len(cover) * len(cover) > max_cover_closure_bits:
            raise MemoryError(
                f"K-Reach cover closure would need {len(cover)**2} bits "
                f"(budget {max_cover_closure_bits}); graph too large"
            )
        self._in_cover = bytearray(graph.n)
        for v in cover:
            self._in_cover[v] = 1
        self._cover_index: Dict[int, int] = {v: i for i, v in enumerate(cover)}
        self._cover = cover

        # Cover graph: cover pairs joined by an edge or a 2-path through
        # a non-cover middle vertex (no other path shapes exist).
        cg = DiGraph(len(cover))
        ci = self._cover_index
        for u, v in graph.edges():
            if self._in_cover[u] and self._in_cover[v]:
                if not cg.has_edge(ci[u], ci[v]):
                    cg.add_edge(ci[u], ci[v])
        for x in graph.vertices():
            if self._in_cover[x]:
                continue
            for u in graph.inn(x):
                for v in graph.out(x):
                    # u, v are in the cover by the vertex-cover property.
                    if u != v and not cg.has_edge(ci[u], ci[v]):
                        cg.add_edge(ci[u], ci[v])
        cg.freeze()

        # Materialise the cover-to-cover closure as bitsets.
        cg_order = topological_order(cg)
        assert cg_order is not None, "cover graph of a DAG must be acyclic"
        tc = [0] * cg.n
        entries = 0
        for a in reversed(cg_order):
            bits = 1 << a
            for b in cg.out(a):
                bits |= tc[b]
            tc[a] = bits
            entries += bits.bit_count()
            if entries > max_cover_tc_entries:
                raise MemoryError(
                    f"K-Reach cover closure exceeded {max_cover_tc_entries} "
                    "entries; index too large for this graph"
                )
        self._cover_tc = tc
        self._tc_entries = entries

    @staticmethod
    def _greedy_vertex_cover(graph: DiGraph) -> List[int]:
        """Greedy cover in degree order (standard K-Reach construction)."""
        in_cover = bytearray(graph.n)
        for v in degree_product_order(graph, 0):
            if in_cover[v]:
                continue
            if any(not in_cover[u] for u in graph.inn(v)) or any(
                not in_cover[w] for w in graph.out(v)
            ):
                in_cover[v] = 1
        return [v for v in graph.vertices() if in_cover[v]]

    # ------------------------------------------------------------------
    def _cover_reach(self, a: int, b: int) -> bool:
        """Closure probe between cover vertices (original ids)."""
        ia = self._cover_index[a]
        ib = self._cover_index[b]
        return bool((self._cover_tc[ia] >> ib) & 1)

    def query(self, u: int, v: int) -> bool:
        if u == v:
            return True
        cu = self._in_cover[u]
        cv = self._in_cover[v]
        if cu and cv:
            return self._cover_reach(u, v)
        if cu:
            # v's in-neighbours are all cover vertices.
            return any(self._cover_reach(u, w) for w in self.graph.inn(v))
        if cv:
            return any(self._cover_reach(w, v) for w in self.graph.out(u))
        # Neither endpoint in the cover: endpoints' neighbours all are.
        out_u = self.graph.out(u)
        in_v = self.graph.inn(v)
        return any(self._cover_reach(w, x) for w in out_u for x in in_v)

    def index_size_ints(self) -> int:
        # Closure entries (one int each, adjacency-list accounting as in
        # the paper's Figure 3/4 metric) + cover membership map.
        return self._tc_entries + self.graph.n

    def stats(self) -> Dict[str, object]:
        base = super().stats()
        base.update({"cover_size": len(self._cover), "cover_tc_entries": self._tc_entries})
        return base
