"""Online-search reachability (plain BFS/DFS).

One end of the paper's spectrum (§2.1): no index at all, answer each
query by searching.  Serves three roles here:

* ground truth for every correctness test,
* the "no precomputation" reference point in benchmarks,
* the inner engine that GRAIL accelerates with interval pruning.
"""

from __future__ import annotations

from ..graph.digraph import DiGraph
from ..graph.topo import topological_levels
from ..core.base import ReachabilityIndex, register_method

__all__ = ["OnlineBFS", "OnlineDFS"]


@register_method
class OnlineBFS(ReachabilityIndex):
    """Index-free BFS reachability (abbreviation ``BFS``).

    A topological-level filter is kept (one int per vertex — essentially
    free) because every serious online-search implementation short-cuts
    impossible queries this way.
    """

    short_name = "BFS"
    full_name = "Online BFS"

    def _build(self, graph: DiGraph) -> None:
        self._levels = topological_levels(graph)
        self._out = graph.out_adj
        self._visited = bytearray(graph.n)

    def compile(self):
        """Levels + forward-CSR artifact (level-pruned BFS at serve time)."""
        from ..core.compiled import CompiledOnline

        return CompiledOnline.from_index(self)

    def query(self, u: int, v: int) -> bool:
        if u == v:
            return True
        levels = self._levels
        if levels[u] >= levels[v]:
            return False
        out = self._out
        visited = self._visited
        target_level = levels[v]
        frontier = [u]
        visited[u] = 1
        touched = [u]
        found = False
        qi = 0
        while qi < len(frontier) and not found:
            x = frontier[qi]
            qi += 1
            for w in out[x]:
                if w == v:
                    found = True
                    break
                if not visited[w] and levels[w] < target_level:
                    visited[w] = 1
                    touched.append(w)
                    frontier.append(w)
        for x in touched:
            visited[x] = 0
        return found

    def index_size_ints(self) -> int:
        return len(self._levels)


@register_method
class OnlineDFS(ReachabilityIndex):
    """Index-free iterative DFS reachability (abbreviation ``DFS``)."""

    short_name = "DFS"
    full_name = "Online DFS"

    def _build(self, graph: DiGraph) -> None:
        self._levels = topological_levels(graph)
        self._out = graph.out_adj
        self._visited = bytearray(graph.n)

    def compile(self):
        """Levels + forward-CSR artifact (level-pruned BFS at serve time)."""
        from ..core.compiled import CompiledOnline

        return CompiledOnline.from_index(self)

    def query(self, u: int, v: int) -> bool:
        if u == v:
            return True
        levels = self._levels
        if levels[u] >= levels[v]:
            return False
        out = self._out
        visited = self._visited
        target_level = levels[v]
        stack = [u]
        visited[u] = 1
        touched = [u]
        found = False
        while stack and not found:
            x = stack.pop()
            for w in out[x]:
                if w == v:
                    found = True
                    break
                if not visited[w] and levels[w] < target_level:
                    visited[w] = 1
                    touched.append(w)
                    stack.append(w)
        for x in touched:
            visited[x] = 0
        return found

    def index_size_ints(self) -> int:
        return len(self._levels)
