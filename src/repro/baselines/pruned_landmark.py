"""Pruned Landmark (PL) — distance labeling applied to reachability.

Akiba, Iwata & Yoshida (SIGMOD 2013).  Like DL, PL processes vertices in
importance order and runs pruned BFS in both directions; unlike DL, its
labels carry **(hop, distance)** pairs and its pruning condition compares
distances ("is the already-labelled path at most as short?").  The paper
compares against PL directly (§2.4, §6) and attributes its slower
reachability queries to "additional distance comparison cost" — the exact
overhead this implementation retains: queries scan label pairs and add
distances even though only finiteness matters for reachability.

As a bonus, :meth:`PrunedLandmark.distance` answers exact shortest-path
(hop-count) distance queries, which DL cannot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graph.digraph import DiGraph
from ..core.base import ReachabilityIndex, register_method
from ..core.order import get_order

__all__ = ["PrunedLandmark"]

_INF = float("inf")


@register_method
class PrunedLandmark(ReachabilityIndex):
    """Pruned landmark distance labeling (abbreviation ``PL``).

    Labels are parallel lists ``hops`` / ``dists`` per direction, sorted
    by hop rank (construction order guarantees it).

    ``backend="numpy"`` runs the sweeps frontier-at-a-time over padded
    2-D label tables (:mod:`repro.kernels.pl`); the ``(hop, dist)``
    labels are bit-identical to the scalar sweeps.

    Examples
    --------
    >>> from repro.graph.generators import path_dag
    >>> pl = PrunedLandmark(path_dag(5))
    >>> pl.query(0, 4), pl.distance(0, 4)
    (True, 4)
    """

    short_name = "PL"
    full_name = "Pruned Landmark labeling"

    def _build(
        self,
        graph: DiGraph,
        order: str = "degree_product",
        seed: int = 0,
        backend: Optional[str] = None,
    ) -> None:
        from ..kernels import numpy_or_none, resolve_backend

        n = graph.n
        order_list = get_order(order)(graph, seed)
        self.order_list = order_list

        if resolve_backend(backend, n) == "numpy" and n:
            from ..kernels.pl import pruned_landmark_numpy

            lout_h, lout_d, lin_h, lin_d = pruned_landmark_numpy(
                numpy_or_none(), graph, order_list
            )
            self._lout_h, self._lout_d = lout_h, lout_d
            self._lin_h, self._lin_d = lin_h, lin_d
            return

        # label_out[u]: (hops, dists) such that u reaches hop at dist.
        lout_h: List[List[int]] = [[] for _ in range(n)]
        lout_d: List[List[int]] = [[] for _ in range(n)]
        lin_h: List[List[int]] = [[] for _ in range(n)]
        lin_d: List[List[int]] = [[] for _ in range(n)]
        out_adj = graph.out_adj
        in_adj = graph.in_adj
        # Stamped visited marks: bumping the stamp retires a sweep's
        # marks in O(1), so there is no per-sweep reset pass.
        vis = [-1] * n
        stamp = -1
        pruned = self._pruned

        for hop, vi in enumerate(order_list):
            # Forward BFS from vi: cover pairs (vi, w) via Lin(w).
            snapshot = dict(zip(lout_h[vi], lout_d[vi]))
            snapshot[hop] = 0
            stamp += 1
            frontier: List[Tuple[int, int]] = [(vi, 0)]
            fap = frontier.append
            vis[vi] = stamp
            for w, d in frontier:
                if pruned(snapshot, lin_h[w], lin_d[w], d):
                    continue
                lin_h[w].append(hop)
                lin_d[w].append(d)
                d1 = d + 1
                for x in out_adj[w]:
                    if vis[x] != stamp:
                        vis[x] = stamp
                        fap((x, d1))

            # Backward BFS from vi: cover pairs (u, vi) via Lout(u).
            snapshot = dict(zip(lin_h[vi], lin_d[vi]))
            snapshot[hop] = 0
            stamp += 1
            frontier = [(vi, 0)]
            fap = frontier.append
            vis[vi] = stamp
            for u, d in frontier:
                if pruned(snapshot, lout_h[u], lout_d[u], d):
                    continue
                lout_h[u].append(hop)
                lout_d[u].append(d)
                d1 = d + 1
                for x in in_adj[u]:
                    if vis[x] != stamp:
                        vis[x] = stamp
                        fap((x, d1))

        self._lout_h, self._lout_d = lout_h, lout_d
        self._lin_h, self._lin_d = lin_h, lin_d

    @staticmethod
    def _pruned(snapshot: Dict[int, int], hops: List[int], dists: List[int], d: int) -> bool:
        """Existing labels already certify a path of length ≤ d?"""
        for h, dh in zip(hops, dists):
            other = snapshot.get(h)
            if other is not None and other + dh <= d:
                return True
        return False

    # ------------------------------------------------------------------
    def distance(self, u: int, v: int) -> Optional[int]:
        """Exact hop-count shortest-path distance, or ``None`` if v is unreachable."""
        if u == v:
            return 0
        best = _INF
        hs_u, ds_u = self._lout_h[u], self._lout_d[u]
        hs_v, ds_v = self._lin_h[v], self._lin_d[v]
        i = j = 0
        nu, nv = len(hs_u), len(hs_v)
        while i < nu and j < nv:
            hu, hv = hs_u[i], hs_v[j]
            if hu == hv:
                total = ds_u[i] + ds_v[j]
                if total < best:
                    best = total
                i += 1
                j += 1
            elif hu < hv:
                i += 1
            else:
                j += 1
        return None if best is _INF else int(best)

    def query(self, u: int, v: int) -> bool:
        # Reachability via the distance machinery — deliberately keeping
        # the distance-comparison overhead the paper measures for PL.
        return self.distance(u, v) is not None

    def compile(self):
        """Graph-free (hop, distance) arena artifact; ``distance`` and
        ``k_reach`` survive compilation."""
        from ..core.compiled import CompiledHopDist

        return CompiledHopDist.from_index(self)

    def k_reach(self, u: int, v: int, k: int) -> bool:
        """Whether ``u`` reaches ``v`` within ``k`` steps.

        The k-hop reachability variant of Cheng et al. [12], which the
        paper names as future work ("how to apply them on more general
        reachability computation, such as k-reach problem"): a distance
        labeling answers it directly.
        """
        d = self.distance(u, v)
        return d is not None and d <= k

    def index_size_ints(self) -> int:
        ints = 0
        for arrs in (self._lout_h, self._lout_d, self._lin_h, self._lin_d):
            ints += sum(len(a) for a in arrs)
        return ints
