"""Chain compression (Jagadish 1990) — the classic TC compression.

Listed in the paper's related work (§2.1) as the earliest transitive
closure compression family: decompose the DAG into chains; a vertex's
closure intersected with one chain is always a *suffix* of the chain, so
``TC(u)`` compresses to at most one integer per chain ("the first
position of each chain that u reaches").

Included as a substrate/ablation baseline (abbreviation ``CH``): it is
the conceptual ancestor of PathTree and a useful lower bound on what
chain-aware numbering buys.
"""

from __future__ import annotations

from typing import List

from ..graph.digraph import DiGraph
from ..graph.topo import topological_order
from ..core.base import ReachabilityIndex, register_method
from .pathtree import greedy_path_decomposition

__all__ = ["ChainCompression"]


@register_method
class ChainCompression(ReachabilityIndex):
    """Chain-cover compressed transitive closure (abbreviation ``CH``).

    For each vertex ``u``, ``first[u]`` is a sorted list of
    ``(chain_id, min_position)`` pairs: the earliest vertex of each chain
    reachable from ``u``.  Query: look up ``chain(v)`` in ``first[u]``
    and compare positions.
    """

    short_name = "CH"
    full_name = "Chain compression"

    def _build(self, graph: DiGraph) -> None:
        order = topological_order(graph)
        if order is None:
            raise ValueError("chain compression requires a DAG; condense first")
        chains = greedy_path_decomposition(graph, order)
        n = graph.n
        chain_of = [0] * n
        pos_of = [0] * n
        for cid, chain in enumerate(chains):
            for i, v in enumerate(chain):
                chain_of[v] = cid
                pos_of[v] = i
        self._chain_of = chain_of
        self._pos_of = pos_of
        self._n_chains = len(chains)

        # first[u]: dict chain -> min reachable position, built in
        # reverse topological order, then frozen into sorted pair lists.
        firsts: List[dict] = [None] * n  # type: ignore[list-item]
        for u in reversed(order):
            acc = {chain_of[u]: pos_of[u]}
            for w in graph.out(u):
                for cid, p in firsts[w].items():
                    cur = acc.get(cid)
                    if cur is None or p < cur:
                        acc[cid] = p
            firsts[u] = acc
        self._first_keys: List[List[int]] = []
        self._first_vals: List[List[int]] = []
        for u in range(n):
            items = sorted(firsts[u].items())
            self._first_keys.append([k for k, _ in items])
            self._first_vals.append([p for _, p in items])

    def compile(self):
        """Chain-arena artifact ((chain, min-position) pair tables)."""
        from ..core.compiled import CompiledChains

        return CompiledChains.from_index(self)

    def query(self, u: int, v: int) -> bool:
        from bisect import bisect_left

        cid = self._chain_of[v]
        keys = self._first_keys[u]
        i = bisect_left(keys, cid)
        if i == len(keys) or keys[i] != cid:
            return False
        return self._first_vals[u][i] <= self._pos_of[v]

    def index_size_ints(self) -> int:
        entries = sum(len(k) for k in self._first_keys)
        return 2 * entries + 2 * self.graph.n  # pairs + (chain, pos) per vertex

    def stats(self):
        base = super().stats()
        base.update({"chains": self._n_chains})
        return base
