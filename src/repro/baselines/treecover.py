"""Agrawal's tree cover — the original interval labeling (SIGMOD 1989).

Cited throughout the paper (§2.1) as the root of the interval
compression family and the method PathTree generalises.  The idea:

1. pick a spanning forest of the DAG (we use the *optimal tree cover*
   heuristic of choosing, for every vertex, the parent whose subtree
   assignment maximises interval sharing — approximated here by the
   highest-closure in-neighbour, which is the standard practical pick);
2. a post-order traversal gives every vertex an interval
   ``[low, post]`` covering exactly its tree descendants — one O(1)
   containment test handles all tree reachability;
3. non-tree reachability is folded in by a reverse-topological sweep
   that unions, for every vertex, the interval lists of its out-
   neighbours — descendants already covered by the tree interval
   compress away.

Registered as ``TREE``.  Included both as a baseline ablation (how much
of PathTree's win is the path decomposition vs plain tree intervals?)
and as the simplest member of the interval family for teaching and
tests.
"""

from __future__ import annotations

from typing import List

from ..graph.digraph import DiGraph
from ..graph.topo import topological_order
from ..core.base import ReachabilityIndex, register_method
from .intervals import IntervalSet

__all__ = ["TreeCover"]


@register_method
class TreeCover(ReachabilityIndex):
    """Tree-cover interval index (abbreviation ``TREE``).

    Examples
    --------
    >>> from repro.graph.generators import path_dag
    >>> tc = TreeCover(path_dag(5))
    >>> tc.query(0, 4), tc.query(4, 1)
    (True, False)
    """

    short_name = "TREE"
    full_name = "Agrawal tree cover"

    def _build(self, graph: DiGraph, max_storage_ints: int = 80_000_000) -> None:
        order = topological_order(graph)
        if order is None:
            raise ValueError("tree cover requires a DAG; condense first")
        n = graph.n

        # 1. Spanning forest: each vertex keeps one tree parent — the
        # in-neighbour with the largest (estimated) descendant count,
        # so big subtrees share intervals.  Descendant counts come from
        # a cheap reverse-topological accumulation (upper bound).
        weight = [1] * n
        for u in reversed(order):
            for w in graph.out(u):
                weight[u] += weight[w]
        parent = [-1] * n
        for v in range(n):
            best = -1
            for u in graph.inn(v):
                if best < 0 or weight[u] > weight[best] or (
                    weight[u] == weight[best] and u < best
                ):
                    best = u
            parent[v] = best
        children: List[List[int]] = [[] for _ in range(n)]
        roots: List[int] = []
        for v in range(n):
            if parent[v] < 0:
                roots.append(v)
            else:
                children[parent[v]].append(v)

        # 2. Post-order numbering over the forest: a vertex's tree
        # descendants occupy [low, post].
        post = [0] * n
        low = [0] * n
        counter = 0
        for root in roots:
            stack = [(root, False)]
            while stack:
                v, exiting = stack.pop()
                if exiting:
                    lo = counter
                    for c in children[v]:
                        if low[c] < lo:
                            lo = low[c]
                    low[v] = lo
                    post[v] = counter
                    counter += 1
                    continue
                stack.append((v, True))
                for c in reversed(children[v]):
                    stack.append((c, False))
        self._low = low
        self._post = post

        # 3. Non-tree closure intervals over the post numbering.
        closures: List[IntervalSet] = [None] * n  # type: ignore[list-item]
        stored = 0
        for u in reversed(order):
            succ = [closures[w] for w in graph.out(u)]
            merged = IntervalSet.union_merge(succ) if succ else IntervalSet()
            merged.add_point(post[u])
            closures[u] = merged
            stored += merged.storage_ints()
            if stored > max_storage_ints:
                raise MemoryError(
                    f"tree-cover interval storage exceeded {max_storage_ints} ints"
                )
        self._closures = closures

    def compile(self):
        """Interval-closure artifact with the subtree fast path."""
        from ..core.compiled import CompiledIntervalClosure

        return CompiledIntervalClosure.from_index(self)

    def query(self, u: int, v: int) -> bool:
        # O(1) tree fast path: v inside u's subtree interval.
        if self._low[u] <= self._post[v] <= self._post[u]:
            return True
        return self._post[v] in self._closures[u]

    def index_size_ints(self) -> int:
        return sum(c.storage_ints() for c in self._closures) + 2 * self.graph.n
