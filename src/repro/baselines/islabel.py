"""IS-Label — independent-set based distance labeling (Fu et al., 2013).

The paper's §6.1 mentions testing IS-Label and omitting its numbers:
"its query performance is at least 2 to 3 orders magnitude slower than
the reachability methods".  We implement it so that claim is checkable
rather than taken on faith.

Construction builds a vertex hierarchy by repeatedly *removing an
independent set* of low-degree vertices; each removed vertex is patched
around with weighted shortcut edges (``w(u,v) + w(v,x)``), so shortest
distances among the survivors are preserved.  Labels are then assigned
top-down: the small core gets exact all-pairs distances, and every
removed vertex inherits ``(hop, distance)`` entries from its (strictly
higher-level) neighbours at removal time:

    ``Lout(v) = {(v, 0)} ∪ { (h, w(v,x) + d) : x ∈ out(v), (h,d) ∈ Lout(x) }``

Every shortest path factors as an up-then-down path through the
hierarchy, so ``dist(s, t) = min over common hops of d_out + d_in`` is
exact; reachability is its finiteness.  Queries carry the same
distance-merging overhead as Pruned Landmark but with the heavier
labels the folding produces — the slowness the paper observed.

Registered as ``ISL``.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..graph.digraph import DiGraph
from ..graph.topo import topological_order
from ..core.base import ReachabilityIndex, register_method

__all__ = ["ISLabel"]

_INF = float("inf")


@register_method
class ISLabel(ReachabilityIndex):
    """IS-Label distance labeling (abbreviation ``ISL``).

    Parameters
    ----------
    graph:
        The DAG to index (unit edge weights).
    core_limit:
        Stop folding once at most this many vertices remain; the core
        is labeled with exact all-pairs distances.
    max_storage_ints:
        Budget on total label entries (two ints each).

    Examples
    --------
    >>> from repro.graph.generators import path_dag
    >>> isl = ISLabel(path_dag(5))
    >>> isl.query(0, 4), isl.distance(0, 4)
    (True, 4)
    """

    short_name = "ISL"
    full_name = "IS-Label (independent-set folding)"

    def _build(
        self,
        graph: DiGraph,
        core_limit: int = 32,
        max_storage_ints: int = 60_000_000,
    ) -> None:
        if topological_order(graph) is None:
            raise ValueError("IS-Label requires a DAG; condense first")
        n = graph.n

        # Working weighted graph: out_w[v] = {x: w}, in_w mirrors it.
        out_w: List[Dict[int, int]] = [dict() for _ in range(n)]
        in_w: List[Dict[int, int]] = [dict() for _ in range(n)]
        for u, v in graph.edges():
            out_w[u][v] = 1
            in_w[v][u] = 1

        alive = set(range(n))
        removal_out: List[Optional[List[Tuple[int, int]]]] = [None] * n
        removal_in: List[Optional[List[Tuple[int, int]]]] = [None] * n
        fold_order: List[int] = []

        while len(alive) > core_limit:
            selected = self._independent_set(alive, out_w, in_w)
            if not selected:
                break
            for v in selected:
                removal_out[v] = list(out_w[v].items())
                removal_in[v] = list(in_w[v].items())
                fold_order.append(v)
                # Patch shortcuts around v, keeping minimal weights.
                for u, wu in in_w[v].items():
                    del out_w[u][v]
                    for x, wx in out_w[v].items():
                        if u == x:
                            continue
                        w = wu + wx
                        cur = out_w[u].get(x)
                        if cur is None or w < cur:
                            out_w[u][x] = w
                            in_w[x][u] = w
                for x in out_w[v]:
                    del in_w[x][v]
                out_w[v] = {}
                in_w[v] = {}
                alive.remove(v)

        # Core labels: exact all-pairs via per-source Dijkstra.
        lout_h: List[List[int]] = [[] for _ in range(n)]
        lout_d: List[List[int]] = [[] for _ in range(n)]
        lin_h: List[List[int]] = [[] for _ in range(n)]
        lin_d: List[List[int]] = [[] for _ in range(n)]
        core = sorted(alive)
        for s in core:
            dist = self._dijkstra(s, out_w)
            for t in sorted(dist):
                lout_h[s].append(t)
                lout_d[s].append(dist[t])
                # lin lists stay sorted because s ascends across the loop.
                lin_h[t].append(s)
                lin_d[t].append(dist[t])

        stored = sum(len(x) for x in lout_h) + sum(len(x) for x in lin_h)

        # Removed vertices: inherit from removal-time neighbours,
        # processed in reverse fold order (highest level first).
        for v in reversed(fold_order):
            acc_out: Dict[int, int] = {v: 0}
            for x, w in removal_out[v]:
                hs, ds = lout_h[x], lout_d[x]
                for h, d in zip(hs, ds):
                    total = w + d
                    cur = acc_out.get(h)
                    if cur is None or total < cur:
                        acc_out[h] = total
            items = sorted(acc_out.items())
            lout_h[v] = [h for h, _ in items]
            lout_d[v] = [d for _, d in items]

            acc_in: Dict[int, int] = {v: 0}
            for u, w in removal_in[v]:
                hs, ds = lin_h[u], lin_d[u]
                for h, d in zip(hs, ds):
                    total = w + d
                    cur = acc_in.get(h)
                    if cur is None or total < cur:
                        acc_in[h] = total
            items = sorted(acc_in.items())
            lin_h[v] = [h for h, _ in items]
            lin_d[v] = [d for _, d in items]

            stored += len(lout_h[v]) + len(lin_h[v])
            if 2 * stored > max_storage_ints:
                raise MemoryError(
                    f"IS-Label storage exceeded {max_storage_ints} ints"
                )

        self._lout_h, self._lout_d = lout_h, lout_d
        self._lin_h, self._lin_d = lin_h, lin_d

    # ------------------------------------------------------------------
    @staticmethod
    def _independent_set(alive, out_w, in_w) -> List[int]:
        """Greedy independent set, lowest total degree first."""
        order = sorted(alive, key=lambda v: (len(out_w[v]) + len(in_w[v]), v))
        blocked = set()
        selected: List[int] = []
        for v in order:
            if v in blocked:
                continue
            selected.append(v)
            blocked.add(v)
            blocked.update(out_w[v])
            blocked.update(in_w[v])
        return selected

    @staticmethod
    def _dijkstra(source: int, out_w) -> Dict[int, int]:
        dist = {source: 0}
        heap = [(0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, _INF):
                continue
            for x, w in out_w[u].items():
                nd = d + w
                if nd < dist.get(x, _INF):
                    dist[x] = nd
                    heapq.heappush(heap, (nd, x))
        return dist

    # ------------------------------------------------------------------
    def distance(self, u: int, v: int) -> Optional[int]:
        """Exact hop-count distance, or ``None`` if unreachable."""
        if u == v:
            return 0
        best = _INF
        hs_u, ds_u = self._lout_h[u], self._lout_d[u]
        hs_v, ds_v = self._lin_h[v], self._lin_d[v]
        i = j = 0
        nu, nv = len(hs_u), len(hs_v)
        while i < nu and j < nv:
            a, b = hs_u[i], hs_v[j]
            if a == b:
                total = ds_u[i] + ds_v[j]
                if total < best:
                    best = total
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return None if best is _INF else int(best)

    def query(self, u: int, v: int) -> bool:
        return self.distance(u, v) is not None

    def compile(self):
        """Graph-free (hop, distance) arena artifact (same layout as PL)."""
        from ..core.compiled import CompiledHopDist

        return CompiledHopDist.from_index(self)

    def index_size_ints(self) -> int:
        ints = 0
        for arrs in (self._lout_h, self._lout_d, self._lin_h, self._lin_d):
            ints += sum(len(a) for a in arrs)
        return ints
