"""PWAH-8 — word-aligned-hybrid compressed bit-vector closures.

van Schaik & de Moor (SIGMOD 2011) store each vertex's transitive
closure as a compressed bit vector.  PWAH-8 splits every 64-bit word
into 8 partitions of 7 payload bits plus an 8-bit flag field; each
partition is either a **literal** (7 raw closure bits) or a **fill**
(one bit of fill value + a 6-bit run length counted in 7-bit blocks).
Long homogeneous stretches of the closure — which a good vertex
numbering produces — collapse into single fill partitions.

Queries decompress on the fly: a membership probe scans the word stream
accumulating block offsets until it covers the probed position.  That
scan is why PWAH-8's queries lag the oracles on large graphs (Tables
5-6) even though its index is among the smallest (Figures 3-4).

:class:`PwahBitVector` is the self-contained codec (round-trip tested,
including property tests); :class:`Pwah8` is the reachability index
built on it.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from ..graph.digraph import DiGraph
from ..graph.topo import topological_order
from ..core.base import ReachabilityIndex, register_method
from .interval import postorder_numbering

__all__ = ["PwahBitVector", "Pwah8"]

_BLOCK_BITS = 7
_PARTITIONS = 8
_MAX_RUN = 63  # 6-bit run length, in blocks
_LITERAL_MASK = (1 << _BLOCK_BITS) - 1


def _emit_fill(partitions: List[int], flags: List[int], value: int, run: int) -> None:
    """Append fill partitions covering ``run`` blocks of ``value`` bits.

    Coalesces with a trailing fill of the same value, so emitting fills
    block by block produces the same stream as emitting one long run.
    """
    while run > 0:
        if (
            partitions
            and flags[-1] == 1
            and (partitions[-1] >> 6) == value
            and (partitions[-1] & _MAX_RUN) < _MAX_RUN
        ):
            space = _MAX_RUN - (partitions[-1] & _MAX_RUN)
            take = min(space, run)
            partitions[-1] += take
            run -= take
            continue
        chunk = min(run, _MAX_RUN)
        partitions.append((value << 6) | chunk)
        flags.append(1)
        run -= chunk


def _emit_literal(partitions: List[int], flags: List[int], bits: int) -> None:
    """Append one literal partition (degenerating to a fill if uniform)."""
    if bits == _LITERAL_MASK:
        _emit_fill(partitions, flags, 1, 1)
    elif bits == 0:
        _emit_fill(partitions, flags, 0, 1)
    else:
        partitions.append(bits)
        flags.append(0)


def _pack_words(partitions: List[int], flags: List[int]) -> List[int]:
    """Pack partitions into 64-bit words: top byte holds the 8 flag bits,
    payloads occupy 7-bit slots starting at the least significant end."""
    words: List[int] = []
    for base in range(0, len(partitions), _PARTITIONS):
        word = 0
        flag_byte = 0
        for j in range(_PARTITIONS):
            k = base + j
            if k >= len(partitions):
                break
            word |= partitions[k] << (j * _BLOCK_BITS)
            flag_byte |= flags[k] << j
        word |= flag_byte << 56
        words.append(word)
    return words


class PwahBitVector:
    """A PWAH-8 compressed, immutable bit vector.

    Build with :meth:`encode`; probe with :meth:`contains`; expand with
    :meth:`decode`.  Words are stored as Python ints (one per 64-bit
    word-equivalent) in ``self.words``.
    """

    __slots__ = ("words", "universe")

    def __init__(self, words: List[int], universe: int) -> None:
        self.words = words
        self.universe = universe

    # ------------------------------------------------------------------
    @classmethod
    def encode(cls, sorted_positions: Sequence[int], universe: int) -> "PwahBitVector":
        """Compress a strictly-increasing position sequence.

        Positions must lie in ``[0, universe)``.  Trailing zero blocks
        are not emitted (probes past the stream return False).
        """
        for i in range(1, len(sorted_positions)):
            if sorted_positions[i - 1] >= sorted_positions[i]:
                raise ValueError("positions must be strictly increasing")
        if sorted_positions and (
            sorted_positions[0] < 0 or sorted_positions[-1] >= universe
        ):
            raise ValueError("position out of universe range")

        # Group positions into 7-bit literal blocks.
        blocks: List[int] = []  # parallel arrays: block index -> literal bits
        block_ids: List[int] = []
        for p in sorted_positions:
            b, off = divmod(p, _BLOCK_BITS)
            if block_ids and block_ids[-1] == b:
                blocks[-1] |= 1 << off
            else:
                block_ids.append(b)
                blocks.append(1 << off)

        partitions: List[int] = []
        flags: List[int] = []
        prev_block = -1
        for bid, bits in zip(block_ids, blocks):
            gap = bid - prev_block - 1
            if gap > 0:
                _emit_fill(partitions, flags, 0, gap)
            _emit_literal(partitions, flags, bits)
            prev_block = bid
        return cls(_pack_words(partitions, flags), universe)

    @classmethod
    def encode_bitset(cls, bits: int, universe: int) -> "PwahBitVector":
        """Compress a big-int bitset (vectorised via numpy).

        Equivalent to ``encode(bit_positions(bits), universe)`` but runs
        the block extraction and run detection in C — this is what makes
        PWAH construction feasible on dense closures.
        """
        import numpy as np

        if bits < 0:
            raise ValueError("bitset must be non-negative")
        if bits >> universe:
            raise ValueError("bitset has positions beyond the universe")
        if bits == 0 or universe == 0:
            return cls([], universe)
        nblocks = (universe + _BLOCK_BITS - 1) // _BLOCK_BITS
        nbytes = (universe + 7) // 8
        raw = np.frombuffer(bits.to_bytes(nbytes, "little"), dtype=np.uint8)
        bitarr = np.unpackbits(raw, bitorder="little")[:universe]
        pad = nblocks * _BLOCK_BITS - universe
        if pad:
            bitarr = np.concatenate([bitarr, np.zeros(pad, dtype=np.uint8)])
        weights = (1 << np.arange(_BLOCK_BITS, dtype=np.int64))
        payloads = bitarr.reshape(nblocks, _BLOCK_BITS) @ weights
        nz = np.nonzero(payloads)[0]
        if len(nz) == 0:
            return cls([], universe)
        payloads = payloads[: int(nz[-1]) + 1]
        # Run-length segmentation over equal consecutive payloads.
        change = np.nonzero(np.diff(payloads))[0]
        starts = np.concatenate([[0], change + 1])
        ends = np.concatenate([change, [len(payloads) - 1]])
        partitions: List[int] = []
        flags: List[int] = []
        for s, e in zip(starts, ends):
            val = int(payloads[s])
            run = int(e - s + 1)
            if val == 0:
                _emit_fill(partitions, flags, 0, run)
            elif val == _LITERAL_MASK:
                _emit_fill(partitions, flags, 1, run)
            else:
                for _ in range(run):
                    partitions.append(val)
                    flags.append(0)
        return cls(_pack_words(partitions, flags), universe)

    # ------------------------------------------------------------------
    def _partitions(self) -> Iterator[tuple]:
        """Yield ``(is_fill, payload)`` for every partition in order."""
        for word in self.words:
            flag_byte = word >> 56
            for j in range(_PARTITIONS):
                payload = (word >> (j * _BLOCK_BITS)) & _LITERAL_MASK
                is_fill = (flag_byte >> j) & 1
                if not is_fill and payload == 0:
                    # The encoder never emits a literal-zero partition
                    # (zero blocks become fills), so this is end-of-stream
                    # padding in the last word.
                    return
                yield is_fill, payload

    def contains(self, pos: int) -> bool:
        """Whether bit ``pos`` is set."""
        if pos < 0 or pos >= self.universe:
            return False
        target_block, off = divmod(pos, _BLOCK_BITS)
        block = 0
        for is_fill, payload in self._partitions():
            if is_fill:
                value = payload >> 6
                run = payload & _MAX_RUN
                if block + run > target_block:
                    return bool(value)
                block += run
            else:
                if block == target_block:
                    return bool((payload >> off) & 1)
                block += 1
            if block > target_block:
                return False
        return False  # past the encoded stream: implicit zeros

    def decode(self) -> List[int]:
        """Expand back to the sorted position list."""
        out: List[int] = []
        block = 0
        for is_fill, payload in self._partitions():
            if is_fill:
                value = payload >> 6
                run = payload & _MAX_RUN
                if value:
                    start = block * _BLOCK_BITS
                    out.extend(range(start, start + run * _BLOCK_BITS))
                block += run
            else:
                base = block * _BLOCK_BITS
                bits = payload
                while bits:
                    low = bits & -bits
                    out.append(base + low.bit_length() - 1)
                    bits ^= low
                block += 1
        return [p for p in out if p < self.universe]

    def word_count(self) -> int:
        """Number of 64-bit words in the compressed stream."""
        return len(self.words)

    def __repr__(self) -> str:
        return f"PwahBitVector(words={len(self.words)}, universe={self.universe})"


@register_method
class Pwah8(ReachabilityIndex):
    """PWAH-8 compressed transitive closure (abbreviation ``PW8``).

    Closures are computed once as big-int bitsets in a reverse
    topological sweep (re-coordinatised by a DFS post-order numbering so
    descendant sets form long fills), then each vertex's bitset is
    compressed to a :class:`PwahBitVector` and the bitsets are dropped.
    """

    short_name = "PW8"
    full_name = "PWAH-8 bit-vector TC"

    def _build(self, graph: DiGraph) -> None:
        order = topological_order(graph)
        if order is None:
            raise ValueError("PWAH-8 requires a DAG; condense first")
        number = postorder_numbering(graph)
        self._number = number
        n = graph.n
        bits: List[int] = [0] * n
        vectors: List[PwahBitVector] = [None] * n  # type: ignore[list-item]
        # Reverse topological sweep; big-int closures are transient.
        remaining_uses = [graph.in_degree(u) for u in range(n)]
        for u in reversed(order):
            acc = 1 << number[u]
            for w in graph.out(u):
                acc |= bits[w]
                remaining_uses[w] -= 1
                if remaining_uses[w] == 0:
                    bits[w] = 0  # free memory once no parent still needs it
            bits[u] = acc
            vectors[u] = PwahBitVector.encode_bitset(acc, n)
        self._vectors = vectors

    def compile(self):
        """PWAH-8 word-arena artifact."""
        from ..core.compiled import CompiledPwah

        return CompiledPwah.from_index(self)

    def query(self, u: int, v: int) -> bool:
        return self._vectors[u].contains(self._number[v])

    def index_size_ints(self) -> int:
        # One 64-bit word counted as one stored integer, plus numbering.
        return sum(vec.word_count() for vec in self._vectors) + self.graph.n


def _bit_positions(bits: int) -> List[int]:
    """Sorted positions of set bits in a big-int bitset."""
    out: List[int] = []
    base = 0
    while bits:
        chunk = bits & 0xFFFFFFFFFFFFFFFF
        while chunk:
            low = chunk & -chunk
            out.append(base + low.bit_length() - 1)
            chunk ^= low
        bits >>= 64
        base += 64
    return out
