"""Dual Labeling — constant-time reachability for sparse DAGs.

Wang, He, Yang, Yu & Yu (ICDE 2006), cited in the paper's §2.1 as a
member of the transitive-closure-compression family.  The idea exploits
sparsity directly: pick a spanning forest, label it with intervals
(tree reachability becomes one comparison), and handle the remaining
``t = m - (n - #roots)`` **non-tree links** with a ``t × t`` transitive
link table.  Any path decomposes into tree segments joined by links, so

    ``u`` reaches ``v``  iff  ``v`` is in ``u``'s subtree, **or** some
    link ``l1`` with tail in ``u``'s subtree reaches (through the link
    closure) a link ``l2`` whose head's subtree contains ``v``.

The original paper refines the link-side test to O(1) with geometric
coding; we keep the (already tiny, for sparse graphs) bitset scan over
links, which preserves Dual Labeling's evaluation signature: unbeatable
on tree-like inputs, and a ``t²`` wall on anything dense — the
``max_links`` budget makes that wall explicit, mirroring §2.1's framing
that the approach targets graphs where ``t ≪ n``.

Registered as ``DUAL``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Tuple

from ..graph.digraph import DiGraph
from ..graph.topo import topological_order
from ..core.base import ReachabilityIndex, register_method

__all__ = ["DualLabeling"]


@register_method
class DualLabeling(ReachabilityIndex):
    """Dual labeling (abbreviation ``DUAL``).

    Parameters
    ----------
    graph:
        The DAG to index.
    max_links:
        Budget on the number of non-tree edges ``t``; the ``t × t``
        link closure is the method's memory wall on non-sparse graphs.

    Examples
    --------
    >>> from repro.graph.generators import path_dag
    >>> dual = DualLabeling(path_dag(5))
    >>> dual.query(0, 4), dual.query(4, 0)
    (True, False)
    """

    short_name = "DUAL"
    full_name = "Dual labeling"

    def _build(self, graph: DiGraph, max_links: int = 40_000) -> None:
        order = topological_order(graph)
        if order is None:
            raise ValueError("dual labeling requires a DAG; condense first")
        n = graph.n

        # Spanning forest: first-seen in-neighbour along topological
        # order becomes the tree parent; every other edge is a link.
        parent = [-1] * n
        for v in order:
            for u in graph.inn(v):
                parent[v] = u
                break
        children: List[List[int]] = [[] for _ in range(n)]
        roots: List[int] = []
        for v in range(n):
            if parent[v] < 0:
                roots.append(v)
            else:
                children[parent[v]].append(v)

        # Pre/post intervals: subtree(v) = [start[v], end[v]).
        start = [0] * n
        end = [0] * n
        counter = 0
        for root in roots:
            stack = [(root, False)]
            while stack:
                v, exiting = stack.pop()
                if exiting:
                    end[v] = counter
                    continue
                start[v] = counter
                counter += 1
                stack.append((v, True))
                for c in reversed(children[v]):
                    stack.append((c, False))
        self._start = start
        self._end = end

        # Non-tree links.
        links: List[Tuple[int, int]] = [
            (u, v) for u, v in graph.edges() if parent[v] != u
        ]
        t = len(links)
        if t > max_links:
            raise MemoryError(
                f"dual labeling needs a {t}x{t} link closure "
                f"(budget {max_links} links); graph not sparse enough"
            )
        self._links = links
        self._t = t

        # Links sorted by tail's DFS start: the links whose tail lies in
        # subtree(u) form a contiguous range under this order.
        by_tail = sorted(range(t), key=lambda i: start[links[i][0]])
        self._tail_starts = [start[links[i][0]] for i in by_tail]
        self._by_tail = by_tail

        # Link closure over the link graph: l1 -> l2 iff head(l1)
        # tree-reaches tail(l2).  Reflexive.  Row i is a bitset.
        reach: List[int] = [1 << i for i in range(t)]
        # Process links in reverse topological order of their heads so
        # rows can be combined transitively in one sweep.
        pos_in_topo = [0] * n
        for i, v in enumerate(order):
            pos_in_topo[v] = i
        link_order = sorted(range(t), key=lambda i: -pos_in_topo[links[i][1]])
        direct: List[List[int]] = [[] for _ in range(t)]
        for i in range(t):
            h = links[i][1]
            s, e = start[h], end[h]
            lo = bisect_left(self._tail_starts, s)
            hi = bisect_right(self._tail_starts, e - 1)
            for k in range(lo, hi):
                j = by_tail[k]
                if j != i:
                    direct[i].append(j)
        for i in link_order:
            bits = reach[i]
            for j in direct[i]:
                bits |= reach[j]
            reach[i] = bits
        self._link_reach = reach

    # ------------------------------------------------------------------
    def _tree_reach(self, u: int, v: int) -> bool:
        return self._start[u] <= self._start[v] < self._end[u]

    def query(self, u: int, v: int) -> bool:
        if self._tree_reach(u, v):
            return True
        t = self._t
        if t == 0:
            return False
        # Links available from u: tails inside subtree(u).
        s, e = self._start[u], self._end[u]
        lo = bisect_left(self._tail_starts, s)
        hi = bisect_right(self._tail_starts, e - 1)
        if lo == hi:
            return False
        # Target links: heads whose subtree contains v.
        target_bits = 0
        sv = self._start[v]
        links = self._links
        for j in range(t):
            h = links[j][1]
            if self._start[h] <= sv < self._end[h]:
                target_bits |= 1 << j
        if target_bits == 0:
            return False
        by_tail = self._by_tail
        reach = self._link_reach
        for k in range(lo, hi):
            if reach[by_tail[k]] & target_bits:
                return True
        return False

    def index_size_ints(self) -> int:
        # Intervals (2n) + link endpoints (2t) + closure rows (t·t bits,
        # counted in 32-bit integers as the paper's figures do).
        t = self._t
        return 2 * self.graph.n + 2 * t + (t * t + 31) // 32

    def stats(self) -> Dict[str, object]:
        base = super().stats()
        base.update({"links": self._t})
        return base
