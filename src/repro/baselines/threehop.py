"""3-HOP — chain-contour reachability labeling (Jin et al., SIGMOD 2009).

Cited throughout the paper ([20]) as the set-cover generation between
2HOP and this paper's algorithms.  The 3-hop insight: decompose the DAG
into chains; any path then factors as

    ``u  --(hop 1)-->  chain entry  --(hop 2: along the chain)-->
    chain exit  --(hop 3)-->  v``

so it suffices to record, per vertex, *entry points* (``Lout(u)``: for
each chain, the earliest position ``u`` reaches) and *exit points*
(``Lin(v)``: for each chain, the latest position that reaches ``v``).
``u -> v`` iff some chain has ``entry(u, c) ≤ exit(v, c)``.

Reproduction scope: the original optimises which (vertex, chain)
contour segments to record via a greedy set cover over the "contour" of
the transitive closure; we record the full first-reach/last-reach
contour (no cover optimisation), which keeps the 3-hop query structure
and index shape while avoiding the very set-cover machinery this
paper's §1 identifies as the scalability problem — the construction-
time gap to DL in our benchmarks is therefore a *lower bound* on the
original's.

Registered as ``3HOP``.
"""

from __future__ import annotations

from typing import Dict, List

from ..graph.digraph import DiGraph
from ..graph.topo import topological_order
from ..core.base import ReachabilityIndex, register_method
from .pathtree import greedy_path_decomposition

__all__ = ["ThreeHop"]


@register_method
class ThreeHop(ReachabilityIndex):
    """3-hop chain-contour labeling (abbreviation ``3HOP``).

    Examples
    --------
    >>> from repro.graph.generators import path_dag
    >>> th = ThreeHop(path_dag(5))
    >>> th.query(0, 4), th.query(4, 0)
    (True, False)
    """

    short_name = "3HOP"
    full_name = "3-hop chain contour"

    def _build(self, graph: DiGraph, max_storage_ints: int = 80_000_000) -> None:
        order = topological_order(graph)
        if order is None:
            raise ValueError("3-hop requires a DAG; condense first")
        n = graph.n
        chains = greedy_path_decomposition(graph, order)
        chain_of = [0] * n
        pos_of = [0] * n
        for cid, chain in enumerate(chains):
            for i, v in enumerate(chain):
                chain_of[v] = cid
                pos_of[v] = i
        self._chain_of = chain_of
        self._pos_of = pos_of
        self._n_chains = len(chains)

        # Entry contour: per vertex, (chain -> min reachable position),
        # reverse-topological accumulation.
        entry: List[Dict[int, int]] = [None] * n  # type: ignore[list-item]
        stored = 0
        for u in reversed(order):
            acc = {chain_of[u]: pos_of[u]}
            for w in graph.out(u):
                for cid, p in entry[w].items():
                    cur = acc.get(cid)
                    if cur is None or p < cur:
                        acc[cid] = p
            entry[u] = acc
            stored += 2 * len(acc)
            if stored > max_storage_ints:
                raise MemoryError(
                    f"3-hop entry contour exceeded {max_storage_ints} ints"
                )

        # Exit contour: per vertex, (chain -> max position reaching it),
        # forward-topological accumulation.
        exit_: List[Dict[int, int]] = [None] * n  # type: ignore[list-item]
        for v in order:
            acc = {chain_of[v]: pos_of[v]}
            for u in graph.inn(v):
                for cid, p in exit_[u].items():
                    cur = acc.get(cid)
                    if cur is None or p > cur:
                        acc[cid] = p
            exit_[v] = acc
            stored += 2 * len(acc)
            if stored > max_storage_ints:
                raise MemoryError(
                    f"3-hop exit contour exceeded {max_storage_ints} ints"
                )

        # Freeze into parallel sorted arrays for merge queries.
        self._ent_chains: List[List[int]] = []
        self._ent_pos: List[List[int]] = []
        self._ex_chains: List[List[int]] = []
        self._ex_pos: List[List[int]] = []
        for u in range(n):
            items = sorted(entry[u].items())
            self._ent_chains.append([c for c, _ in items])
            self._ent_pos.append([p for _, p in items])
            items = sorted(exit_[u].items())
            self._ex_chains.append([c for c, _ in items])
            self._ex_pos.append([p for _, p in items])

    def query(self, u: int, v: int) -> bool:
        ec, ep = self._ent_chains[u], self._ent_pos[u]
        xc, xp = self._ex_chains[v], self._ex_pos[v]
        i = j = 0
        ni, nj = len(ec), len(xc)
        while i < ni and j < nj:
            a, b = ec[i], xc[j]
            if a == b:
                if ep[i] <= xp[j]:
                    return True
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return False

    def index_size_ints(self) -> int:
        ints = sum(len(c) for c in self._ent_chains) * 2
        ints += sum(len(c) for c in self._ex_chains) * 2
        return ints + 2 * self.graph.n  # + (chain, pos) per vertex

    def stats(self) -> Dict[str, object]:
        base = super().stats()
        base.update({"chains": self._n_chains})
        return base
