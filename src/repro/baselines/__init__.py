"""Baselines from the paper's evaluation (§6.1) plus related-work extras."""

from .online import OnlineBFS, OnlineDFS
from .grail import Grail
from .intervals import IntervalSet
from .interval import NuutilaInterval
from .pathtree import PathTree
from .pwah import Pwah8, PwahBitVector
from .kreach import KReach
from .twohop import TwoHop
from .tflabel import TFLabel
from .pruned_landmark import PrunedLandmark
from .chain import ChainCompression
from .treecover import TreeCover
from .dual import DualLabeling
from .threehop import ThreeHop
from .islabel import ISLabel

__all__ = [
    "OnlineBFS",
    "OnlineDFS",
    "Grail",
    "IntervalSet",
    "NuutilaInterval",
    "PathTree",
    "Pwah8",
    "PwahBitVector",
    "KReach",
    "TwoHop",
    "TFLabel",
    "PrunedLandmark",
    "ChainCompression",
    "TreeCover",
    "DualLabeling",
    "ThreeHop",
    "ISLabel",
]
