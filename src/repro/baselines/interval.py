"""Nuutila's INT — interval-compressed transitive closure.

Nuutila (1995), re-benchmarked by van Schaik & de Moor (SIGMOD 2011) as
one of the fastest reachability methods.  Every vertex stores its full
closure ``TC(u)`` compressed into intervals over a DFS finishing-order
numbering; the numbering tends to make descendant sets contiguous, so
tree-ish graphs compress to a handful of intervals per vertex.

Construction is a single reverse-topological sweep with interval-set
unions; queries are one ``bisect``.  The weakness the paper exploits is
also visible here: on deep/dense DAGs the closure itself is large, the
interval lists stop being small, and both memory and per-query scan cost
grow — which is why INT loses to the oracles on the large-graph tables.
"""

from __future__ import annotations

from typing import List

from ..graph.digraph import DiGraph
from ..graph.topo import topological_order
from ..core.base import ReachabilityIndex, register_method
from .intervals import IntervalSet

__all__ = ["NuutilaInterval", "postorder_numbering"]


def postorder_numbering(graph: DiGraph) -> List[int]:
    """Deterministic DFS post-order numbers (children before parents).

    Descendants receive smaller numbers than their ancestors along tree
    edges, and sibling subtrees occupy contiguous ranges — the property
    interval compression feeds on.
    """
    n = graph.n
    number = [-1] * n
    state = bytearray(n)
    counter = 0
    out = graph.out_adj
    for root in range(n):
        if state[root]:
            continue
        stack = [(root, False)]
        while stack:
            v, exiting = stack.pop()
            if exiting:
                number[v] = counter
                counter += 1
                continue
            if state[v]:
                continue
            state[v] = 1
            stack.append((v, True))
            for w in reversed(out[v]):
                if not state[w]:
                    stack.append((w, False))
    return number


@register_method
class NuutilaInterval(ReachabilityIndex):
    """Interval-compressed transitive closure (abbreviation ``INT``).

    Examples
    --------
    >>> from repro.graph.generators import path_dag
    >>> idx = NuutilaInterval(path_dag(4))
    >>> idx.query(0, 3), idx.query(3, 0)
    (True, False)
    """

    short_name = "INT"
    full_name = "Nuutila interval TC"

    def _build(self, graph: DiGraph, max_storage_ints: int = 80_000_000) -> None:
        order = topological_order(graph)
        if order is None:
            raise ValueError("INT requires a DAG; condense first")
        self._number = postorder_numbering(graph)
        closures: List[IntervalSet] = [None] * graph.n  # type: ignore[list-item]
        stored = 0
        for u in reversed(order):
            succ_sets = [closures[w] for w in graph.out(u)]
            if succ_sets:
                merged = IntervalSet.union_merge(succ_sets)
            else:
                merged = IntervalSet()
            merged.add_point(self._number[u])
            closures[u] = merged
            stored += merged.storage_ints()
            if stored > max_storage_ints:
                raise MemoryError(
                    f"INT interval storage exceeded {max_storage_ints} ints; "
                    "closure does not compress on this graph"
                )
        self._closures = closures

    def compile(self):
        """Interval-closure artifact over the postorder numbering."""
        from ..core.compiled import CompiledIntervalClosure

        return CompiledIntervalClosure.from_index(self)

    def query(self, u: int, v: int) -> bool:
        return self._number[v] in self._closures[u]

    def index_size_ints(self) -> int:
        # Interval endpoints plus the numbering itself.
        return sum(c.storage_ints() for c in self._closures) + self.graph.n

    def intervals_of(self, u: int) -> IntervalSet:
        """The compressed closure of ``u`` (for inspection and tests)."""
        return self._closures[u]
