"""PathTree (PT) — path-decomposition-driven TC compression.

Jin, Xiang, Ruan & Wang (SIGMOD 2008 / TODS 2011): decompose the DAG
into vertex-disjoint paths, organise the paths into a tree (the
*path-tree*), and number vertices so that both within-path suffixes and
path-subtree regions are contiguous; each vertex's transitive closure
then compresses into very few intervals, and queries are a constant-time
same-path comparison or an interval lookup.

Reproduction scope: we implement the load-bearing pipeline —

1. greedy minimal path decomposition along the topological order,
2. a maximum-weight branching over the (acyclified) path graph, weighted
   by cross-edge counts, giving the path-tree,
3. pre-order numbering over the path-tree with consecutive within-path
   positions,
4. interval-list closures over that numbering (reverse-topological
   union-merge), with an O(1) same-path fast path at query time.

The original paper adds further per-vertex tree coordinates to elide
more intervals; those engineering refinements change constants, not the
evaluation signature the reproduction targets (fastest small-graph
queries; index size blows up on large dense graphs — Tables 2-7).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graph.digraph import DiGraph
from ..graph.topo import topological_order
from ..core.base import ReachabilityIndex, register_method
from .intervals import IntervalSet

__all__ = ["PathTree", "greedy_path_decomposition"]


def greedy_path_decomposition(graph: DiGraph, order: Optional[List[int]] = None) -> List[List[int]]:
    """Split the DAG into vertex-disjoint paths.

    Walk the topological order; every unassigned vertex starts a path,
    which is extended greedily through unassigned out-neighbours
    (preferring the neighbour with the fewest unassigned in-edges, a
    cheap heuristic that keeps later paths long).
    """
    if order is None:
        order = topological_order(graph)
        if order is None:
            raise ValueError("path decomposition requires a DAG")
    n = graph.n
    assigned = bytearray(n)
    paths: List[List[int]] = []
    for v in order:
        if assigned[v]:
            continue
        path = [v]
        assigned[v] = 1
        cur = v
        while True:
            best = None
            best_key = None
            for w in graph.out(cur):
                if assigned[w]:
                    continue
                free_in = sum(1 for x in graph.inn(w) if not assigned[x])
                key = (free_in, w)
                if best is None or key < best_key:
                    best, best_key = w, key
            if best is None:
                break
            path.append(best)
            assigned[best] = 1
            cur = best
        paths.append(path)
    return paths


def _build_path_tree(graph: DiGraph, paths: List[List[int]], path_of: List[int]):
    """Maximum-weight branching over the path graph.

    Path nodes are ordered by the topological position of their first
    vertex; a path may only choose a parent with a smaller position,
    which acyclifies the (possibly cyclic) path graph.  Each path then
    keeps its heaviest allowed in-edge — a maximum branching, i.e. the
    path-tree (a forest in general).
    """
    first_pos: Dict[int, int] = {}
    order = topological_order(graph)
    pos = [0] * graph.n
    for i, v in enumerate(order):
        pos[v] = i
    for pid, path in enumerate(paths):
        first_pos[pid] = pos[path[0]]

    weight: Dict[Tuple[int, int], int] = {}
    for u, v in graph.edges():
        pu, pv = path_of[u], path_of[v]
        if pu != pv and first_pos[pu] < first_pos[pv]:
            weight[(pu, pv)] = weight.get((pu, pv), 0) + 1

    parent = [-1] * len(paths)
    best_w = [0] * len(paths)
    for (pu, pv), w in weight.items():
        if w > best_w[pv] or (w == best_w[pv] and parent[pv] > pu >= 0):
            parent[pv] = pu
            best_w[pv] = w
    children: List[List[int]] = [[] for _ in paths]
    roots: List[int] = []
    for pid, par in enumerate(parent):
        if par < 0:
            roots.append(pid)
        else:
            children[par].append(pid)
    return roots, children


@register_method
class PathTree(ReachabilityIndex):
    """PathTree reachability index (abbreviation ``PT``).

    Examples
    --------
    >>> from repro.graph.generators import path_dag
    >>> pt = PathTree(path_dag(5))
    >>> pt.query(0, 4), pt.query(4, 2)
    (True, False)
    """

    short_name = "PT"
    full_name = "PathTree"

    def _build(self, graph: DiGraph, max_storage_ints: int = 80_000_000) -> None:
        order = topological_order(graph)
        if order is None:
            raise ValueError("PathTree requires a DAG; condense first")
        paths = greedy_path_decomposition(graph, order)
        n = graph.n
        path_of = [0] * n
        pos_in_path = [0] * n
        for pid, path in enumerate(paths):
            for i, v in enumerate(path):
                path_of[v] = pid
                pos_in_path[v] = i
        self._path_of = path_of
        self._pos_in_path = pos_in_path
        self._n_paths = len(paths)

        roots, children = _build_path_tree(graph, paths, path_of)

        # Pre-order numbering over the path-tree; vertices of a path get
        # consecutive numbers in chain order, so a within-path suffix is
        # a single interval.
        number = [0] * n
        counter = 0
        for root in roots:
            stack = [root]
            while stack:
                pid = stack.pop()
                for v in paths[pid]:
                    number[v] = counter
                    counter += 1
                # Reverse to preserve child order under LIFO popping.
                stack.extend(reversed(children[pid]))
        self._number = number

        # Interval closures over the path-tree numbering.
        closures: List[IntervalSet] = [None] * n  # type: ignore[list-item]
        stored = 0
        for u in reversed(order):
            succ = [closures[w] for w in graph.out(u)]
            merged = IntervalSet.union_merge(succ) if succ else IntervalSet()
            merged.add_point(number[u])
            closures[u] = merged
            stored += merged.storage_ints()
            if stored > max_storage_ints:
                raise MemoryError(
                    f"PathTree interval storage exceeded {max_storage_ints} ints; "
                    "closure does not compress on this graph"
                )
        self._closures = closures

    def compile(self):
        """Interval-closure artifact with the same-path fast path."""
        from ..core.compiled import CompiledIntervalClosure

        return CompiledIntervalClosure.from_index(self)

    def query(self, u: int, v: int) -> bool:
        # O(1) fast path: same path => position comparison decides.
        if self._path_of[u] == self._path_of[v]:
            return self._pos_in_path[u] <= self._pos_in_path[v]
        return self._number[v] in self._closures[u]

    def index_size_ints(self) -> int:
        # Interval endpoints + numbering + (path id, position) per vertex.
        return sum(c.storage_ints() for c in self._closures) + 3 * self.graph.n

    def stats(self):
        base = super().stats()
        base.update(
            {
                "paths": self._n_paths,
                "avg_intervals": round(
                    sum(len(c) for c in self._closures) / max(1, self.graph.n), 2
                ),
            }
        )
        return base
