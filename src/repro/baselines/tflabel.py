"""TF-label — topological-folding labeling (Cheng et al., SIGMOD 2013).

The paper's §2.4 relates TF-label to its own contribution precisely:
"it can be considered a special case of HL where ε = 1.  The hierarchy
being constructed in [11] is based on iteratively extracting a
reachability backbone with ε = 1, inspired by independent sets."

We implement TF-label through that identification: the hierarchy is the
ε = 1 decomposition (each level keeps a vertex cover of the previous —
equivalently, folds away an independent set), and labels are the HL
level-wise merges.  This keeps the comparison honest: TF shares HL's
machinery but uses the weaker 1-hop locality, which is why the paper
finds both HL and DL producing smaller labels (Figure 3/4) and faster
queries (Tables 2-6) than TF.
"""

from __future__ import annotations

from ..graph.digraph import DiGraph
from ..core.base import register_method
from ..core.hierarchical import HierarchicalLabeling

__all__ = ["TFLabel"]


@register_method
class TFLabel(HierarchicalLabeling):
    """TF-label baseline (abbreviation ``TF``): HL with ε = 1 folding."""

    short_name = "TF"
    full_name = "TF-label (topological folding)"

    def _build(
        self,
        graph: DiGraph,
        core_limit: int = 64,
        max_levels: int = 24,
        order: str = "degree_product",
        seed: int = 0,
        **_ignored,
    ) -> None:
        super()._build(
            graph,
            eps=1,
            core_limit=core_limit,
            max_levels=max_levels,
            order=order,
            seed=seed,
        )
