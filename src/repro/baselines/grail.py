"""GRAIL — scalable online search with random interval labels.

Yildirim, Chaoji & Zaki (PVLDB 2010), the paper's representative of the
fast-online-search family (§2.1).  Each of ``k`` rounds performs a random
post-order DFS over the DAG; vertex ``v`` receives the interval
``[low_i(v), post_i(v)]`` where ``post_i`` is its post-order number and
``low_i`` the minimum post-order in its reachable subtree.  If ``u``
reaches ``v`` then ``L_i(v) ⊆ L_i(u)`` in every round — so any violated
containment proves non-reachability in O(k).  Containment in all rounds
is *necessary but not sufficient*; GRAIL then falls back to a DFS that
expands only children whose intervals still contain ``v``'s.

The paper runs GRAIL with 5 traversals (§6.1); we default to the same.

Construction is light (k DFS passes), the index is ``2kn`` integers, and
query time degrades on large dense graphs — exactly the trade-off Tables
2-7 show.
"""

from __future__ import annotations

import random
from typing import List

from ..graph.digraph import DiGraph
from ..graph.topo import topological_levels
from ..core.base import ReachabilityIndex, register_method

__all__ = ["Grail"]


@register_method
class Grail(ReachabilityIndex):
    """GRAIL index (abbreviation ``GL``).

    Parameters
    ----------
    graph:
        The DAG to index.
    k:
        Number of random interval labelings (paper setting: 5).
    seed:
        Seed for the random traversal orders.
    """

    short_name = "GL"
    full_name = "GRAIL"

    def _build(self, graph: DiGraph, k: int = 5, seed: int = 0) -> None:
        self.k = k
        n = graph.n
        self._out = graph.out_adj
        self._levels = topological_levels(graph)
        rng = random.Random(seed)
        # lows[i][v], posts[i][v] per labeling round i.
        self._lows: List[List[int]] = []
        self._posts: List[List[int]] = []
        roots = graph.sources()
        for _ in range(k):
            low, post = self._random_interval_labeling(graph, roots, rng)
            self._lows.append(low)
            self._posts.append(post)
        # Rounds zipped once so queries iterate (low, post) pairs without
        # rebuilding the zip per containment test.
        self._ivals = list(zip(self._lows, self._posts))
        # Stamped visited marks for the fallback DFS (no reset pass).
        self._vis = [-1] * n
        self._stamp = -1

    def _random_interval_labeling(self, graph: DiGraph, roots, rng):
        """One random post-order DFS pass over the whole DAG.

        ``post[v]`` is the post-order number; ``low[v]`` is the minimum
        post-order number over everything reachable from ``v`` (itself
        included).  In a DAG every out-neighbour is finished when ``v``
        exits, so ``low`` is a simple min over neighbours at exit time.
        """
        n = graph.n
        low = [0] * n
        post = [0] * n
        state = bytearray(n)  # 0 unvisited / 1 discovered / 2 finished
        counter = 0
        out = graph.out_adj
        root_order = list(roots)
        rng.shuffle(root_order)
        for root in root_order:
            if state[root]:
                continue
            stack = [(root, False)]
            while stack:
                v, exiting = stack.pop()
                if exiting:
                    low_v = counter
                    for w in out[v]:
                        if low[w] < low_v:
                            low_v = low[w]
                    post[v] = counter
                    low[v] = low_v
                    counter += 1
                    state[v] = 2
                    continue
                if state[v]:
                    continue
                state[v] = 1
                stack.append((v, True))
                children = [w for w in out[v] if not state[w]]
                rng.shuffle(children)
                for w in children:
                    stack.append((w, False))
        return low, post

    # ------------------------------------------------------------------
    def _contained(self, u: int, v: int) -> bool:
        """Necessary condition: v's interval inside u's in all rounds.

        Reference implementation of the containment test; :meth:`query`
        inlines the same comparisons (a per-child method call dominated
        its DFS loop), and tests exercise this method as the spec the
        inlined copies must match.
        """
        for low, post in self._ivals:
            if low[v] < low[u] or post[v] > post[u]:
                return False
        return True

    def query(self, u: int, v: int) -> bool:
        if u == v:
            return True
        if self._levels[u] >= self._levels[v]:
            return False
        ivals = self._ivals
        for low, post in ivals:
            if low[v] < low[u] or post[v] > post[u]:
                return False
        # Pruned DFS: expand only children whose intervals may contain v.
        # Containment is inlined — a per-child method call dominated this
        # loop — and visited marks are stamped instead of reset.
        out = self._out
        vis = self._vis
        self._stamp += 1
        stamp = self._stamp
        stack = [u]
        push = stack.append
        vis[u] = stamp
        while stack:
            x = stack.pop()
            for w in out[x]:
                if w == v:
                    return True
                if vis[w] != stamp:
                    vis[w] = stamp
                    for low, post in ivals:
                        if low[v] < low[w] or post[v] > post[w]:
                            break
                    else:
                        push(w)
        return False

    def index_size_ints(self) -> int:
        return 2 * self.k * self.graph.n + self.graph.n  # intervals + levels
