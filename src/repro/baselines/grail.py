"""GRAIL — scalable online search with random interval labels.

Yildirim, Chaoji & Zaki (PVLDB 2010), the paper's representative of the
fast-online-search family (§2.1).  Each of ``k`` rounds labels vertex
``v`` with the interval ``[low_i(v), post_i(v)]`` where ``post_i`` is a
randomized post-order number and ``low_i`` the minimum post-order over
everything reachable from ``v``.  If ``u`` reaches ``v`` then
``L_i(v) ⊆ L_i(u)`` in every round — so any violated containment proves
non-reachability in O(k).  Containment in all rounds is *necessary but
not sufficient*; GRAIL then falls back to a DFS that expands only
children whose intervals still contain ``v``'s.

The original builds each round with a randomized post-order DFS; this
implementation draws the post-orders by **sorting on (height, random
key)** instead (:mod:`repro.kernels.grail`), which provides the same
two properties the guarantees rest on — ``post[v] < post[u]`` for every
edge and ``low`` a reachable-set minimum — while turning the per-round
cost into one sort, identical across the scalar and numpy backends and
vectorizable in the latter.  The random key per round plays the DFS's
shuffled-children role, keeping the ``k`` rounds independent filters.

The paper runs GRAIL with 5 traversals (§6.1); we default to the same.

Construction is light (k sorting passes), the index is ``2kn``
integers, and query time degrades on large dense graphs — exactly the
trade-off Tables 2-7 show.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..graph.digraph import DiGraph
from ..core.base import ReachabilityIndex, register_method

__all__ = ["Grail"]


@register_method
class Grail(ReachabilityIndex):
    """GRAIL index (abbreviation ``GL``).

    Parameters
    ----------
    graph:
        The DAG to index.
    k:
        Number of random interval labelings (paper setting: 5).
    seed:
        Seed for the random interval rounds.
    backend:
        ``"python"`` / ``"numpy"`` / ``"auto"`` (``None`` defers to
        ``REPRO_BACKEND``).  Both backends draw the same random keys
        and produce bit-identical intervals.
    """

    short_name = "GL"
    full_name = "GRAIL"

    def _build(
        self,
        graph: DiGraph,
        k: int = 5,
        seed: int = 0,
        backend: Optional[str] = None,
    ) -> None:
        from ..kernels import numpy_or_none, resolve_backend
        from ..kernels.grail import (
            compute_heights,
            interval_round_python,
            interval_rounds_numpy,
        )

        self.k = k
        n = graph.n
        self._out = graph.out_adj
        rng = random.Random(seed)
        # lows[i][v], posts[i][v] per labeling round i.
        self._lows: List[List[int]] = []
        self._posts: List[List[int]] = []
        if resolve_backend(backend, n) == "numpy":
            np = numpy_or_none()
            from ..kernels.frontier import HeightLevels, compute_heights_numpy

            csr_np = graph.csr().as_numpy()
            height_arr = compute_heights_numpy(np, csr_np)
            levels = HeightLevels(height_arr)
            for low, post in interval_rounds_numpy(np, csr_np, levels, rng, k):
                self._lows.append(low)
                self._posts.append(post)
            height = height_arr.tolist()
        else:
            height = compute_heights(graph)
            for _ in range(k):
                low, post = interval_round_python(graph, height, rng)
                self._lows.append(low)
                self._posts.append(post)
        # Height filter: u -> v forces height(u) > height(v), replacing
        # the former topological-levels pre-check (same exactness, and
        # the heights are already computed for the interval rounds).
        self._heights = height
        # Rounds zipped once so queries iterate (low, post) pairs without
        # rebuilding the zip per containment test.
        self._ivals = list(zip(self._lows, self._posts))
        # Stamped visited marks for the fallback DFS (no reset pass).
        self._vis = [-1] * n
        self._stamp = -1

    # ------------------------------------------------------------------
    def _contained(self, u: int, v: int) -> bool:
        """Necessary condition: v's interval inside u's in all rounds.

        Reference implementation of the containment test; :meth:`query`
        inlines the same comparisons (a per-child method call dominated
        its DFS loop), and tests exercise this method as the spec the
        inlined copies must match.
        """
        for low, post in self._ivals:
            if low[v] < low[u] or post[v] > post[u]:
                return False
        return True

    def query(self, u: int, v: int) -> bool:
        if u == v:
            return True
        if self._heights[u] <= self._heights[v]:
            return False
        ivals = self._ivals
        for low, post in ivals:
            if low[v] < low[u] or post[v] > post[u]:
                return False
        # Pruned DFS: expand only children whose intervals may contain v.
        # Containment is inlined — a per-child method call dominated this
        # loop — and visited marks are stamped instead of reset.
        out = self._out
        vis = self._vis
        self._stamp += 1
        stamp = self._stamp
        stack = [u]
        push = stack.append
        vis[u] = stamp
        while stack:
            x = stack.pop()
            for w in out[x]:
                if w == v:
                    return True
                if vis[w] != stamp:
                    vis[w] = stamp
                    for low, post in ivals:
                        if low[v] < low[w] or post[v] > post[w]:
                            break
                    else:
                        push(w)
        return False

    def compile(self):
        """Interval tables + forward-CSR snapshot (the pruned-DFS
        fallback is part of GRAIL's exactness, so the flat adjacency
        arrays travel with the artifact)."""
        from ..core.compiled import CompiledGrail

        return CompiledGrail.from_index(self)

    def index_size_ints(self) -> int:
        return 2 * self.k * self.graph.n + self.graph.n  # intervals + heights
