"""Chaos harness: a TCP proxy that misbehaves on command.

:class:`ChaosProxy` sits between a client (router, shipper, bench) and
a real server, forwarding byte streams — until told not to.  Modes,
switchable at runtime with :meth:`set_mode`:

* ``pass`` — faithful forwarding (the control condition).
* ``delay`` — every forwarded chunk sleeps ``delay_s`` first: a slow
  link / overloaded peer.  This is what exercises the router's hedged
  dispatch (the primary copy is *alive but late*).
* ``blackhole`` — bytes are read and silently dropped in both
  directions; connections stay open.  The cruellest failure: no error,
  no EOF, just silence — only a deadline can detect it.
* ``reset`` — every existing and future connection dies with an RST
  (``SO_LINGER`` zero-timeout close), the "server crashed" signature.
* ``half_write`` — forward exactly ``half_write_bytes`` of the next
  server→client chunk, then RST: a reply cut mid-frame, which clients
  must surface as a retryable stream error (``ProtocolError``), never
  parse garbage.

The proxy listens on an ephemeral port (see :attr:`address`); point
the client at the proxy and the real server stays unmodified.  Used
with :class:`~repro.cluster.replicate.ReplicaProcess.kill` /
``restart()`` — the process-level chaos primitives — this covers the
failure matrix the README documents.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import List, Optional, Tuple

__all__ = ["ChaosProxy", "MODES"]

MODES = ("pass", "delay", "blackhole", "reset", "half_write")

_LINGER_RST = struct.pack("ii", 1, 0)  # close() becomes RST, not FIN


def _rst_close(sock) -> None:
    """Close with an RST so the peer sees ECONNRESET, not clean EOF.

    The ``shutdown(SHUT_RD)`` in the middle matters: a pump thread
    blocked in ``recv()`` on this socket holds a kernel reference to
    the open file description, so a bare ``close()`` would neither
    wake it nor send anything on the wire until that ``recv`` returned
    on its own (i.e. never, for an idle peer).  ``SHUT_RD`` wakes the
    reader without emitting a FIN, and once it releases its reference
    the lingering zero-timeout ``close()`` delivers the RST.
    """
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, _LINGER_RST)
    except OSError:  # pragma: no cover
        pass
    try:
        sock.shutdown(socket.SHUT_RD)
    except OSError:
        pass  # never connected, or already shut down
    try:
        sock.close()
    except OSError:  # pragma: no cover
        pass


class ChaosProxy:
    """A misbehaving-on-command TCP proxy in front of one server."""

    def __init__(
        self,
        target_host: str,
        target_port: int,
        *,
        listen_host: str = "127.0.0.1",
        mode: str = "pass",
        delay_s: float = 0.05,
        half_write_bytes: int = 7,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.target_host = target_host
        self.target_port = target_port
        self.delay_s = delay_s
        self.half_write_bytes = half_write_bytes
        self._mode = mode
        self._mode_lock = threading.Lock()
        self._conn_lock = threading.Lock()
        self._socket_pairs: List[Tuple[socket.socket, socket.socket]] = []
        self._closed = False
        self._connections_total = 0
        self._bytes_forwarded = 0
        self._resets = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((listen_host, 0))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-chaos-accept", daemon=True
        )
        self._accept_thread.start()

    # -- control -------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def mode(self) -> str:
        with self._mode_lock:
            return self._mode

    def set_mode(
        self,
        mode: str,
        *,
        delay_s: Optional[float] = None,
        half_write_bytes: Optional[int] = None,
    ) -> None:
        """Switch failure modes at runtime (takes effect immediately —
        ``reset`` also kills every connection already open)."""
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        with self._mode_lock:
            self._mode = mode
            if delay_s is not None:
                self.delay_s = delay_s
            if half_write_bytes is not None:
                self.half_write_bytes = half_write_bytes
        if mode == "reset":
            self._reset_all()

    def _reset_all(self) -> None:
        with self._conn_lock:
            pairs, self._socket_pairs = self._socket_pairs, []
        for a, b in pairs:
            self._resets += 1
            _rst_close(a)
            _rst_close(b)

    # -- data path -----------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                downstream, _addr = self._listener.accept()
            except OSError:  # listener closed
                return
            with self._mode_lock:
                mode = self._mode
            if mode == "reset":
                self._resets += 1
                _rst_close(downstream)
                continue
            try:
                upstream = socket.create_connection(
                    (self.target_host, self.target_port), timeout=5.0
                )
            except OSError:
                _rst_close(downstream)
                continue
            with self._conn_lock:
                if self._closed:
                    _rst_close(downstream)
                    _rst_close(upstream)
                    return
                self._socket_pairs.append((downstream, upstream))
                self._connections_total += 1
            for src, dst, tag in (
                (downstream, upstream, "c2s"),
                (upstream, downstream, "s2c"),
            ):
                threading.Thread(
                    target=self._pump,
                    args=(src, dst, tag),
                    name=f"repro-chaos-{tag}",
                    daemon=True,
                ).start()

    def _pump(self, src, dst, tag: str) -> None:
        try:
            while True:
                try:
                    chunk = src.recv(1 << 16)
                except OSError:
                    break
                if not chunk:
                    break
                with self._mode_lock:
                    mode = self._mode
                    delay = self.delay_s
                    half = self.half_write_bytes
                if mode == "blackhole":
                    continue  # keep reading; the bytes just vanish
                if mode == "reset":
                    break
                if mode == "half_write" and tag == "s2c":
                    # Leak a frame fragment, then cut the stream: the
                    # client's parser must flag it, not misparse it.
                    try:
                        dst.sendall(chunk[:half])
                    except OSError:
                        pass
                    break
                if mode == "delay":
                    import time

                    time.sleep(delay)
                try:
                    dst.sendall(chunk)
                    self._bytes_forwarded += len(chunk)
                except OSError:
                    break
        finally:
            self._drop_pair(src, dst)

    def _drop_pair(self, src, dst) -> None:
        with self._conn_lock:
            self._socket_pairs = [
                pair
                for pair in self._socket_pairs
                if src not in pair and dst not in pair
            ]
        self._resets += 1
        _rst_close(src)
        _rst_close(dst)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        with self._conn_lock:
            if self._closed:
                return
            self._closed = True
            pairs, self._socket_pairs = self._socket_pairs, []
        try:
            # Wake the accept() the thread is blocked in; closing the
            # fd alone leaves it blocked (the syscall pins the open
            # file description).
            self._listener.shutdown(socket.SHUT_RD)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        for a, b in pairs:
            _rst_close(a)
            _rst_close(b)
        self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        with self._conn_lock:
            open_pairs = len(self._socket_pairs)
        return {
            "mode": self.mode,
            "address": f"{self.host}:{self.port}",
            "target": f"{self.target_host}:{self.target_port}",
            "connections_total": self._connections_total,
            "open_connections": open_pairs,
            "bytes_forwarded": self._bytes_forwarded,
            "resets": self._resets,
        }

    def __repr__(self) -> str:
        return f"ChaosProxy({self.host}:{self.port} -> " \
               f"{self.target_host}:{self.target_port}, mode={self.mode})"
