"""Chaos harness: a TCP proxy that misbehaves on command.

:class:`ChaosProxy` sits between a client (router, shipper, bench) and
a real server, forwarding byte streams — until told not to.  Modes,
switchable at runtime with :meth:`set_mode`:

* ``pass`` — faithful forwarding (the control condition).
* ``delay`` — every forwarded chunk sleeps ``delay_s`` first: a slow
  link / overloaded peer.  This is what exercises the router's hedged
  dispatch (the primary copy is *alive but late*).
* ``blackhole`` — bytes are read and silently dropped in both
  directions; connections stay open.  The cruellest failure: no error,
  no EOF, just silence — only a deadline can detect it.
* ``reset`` — every existing and future connection dies with an RST
  (``SO_LINGER`` zero-timeout close), the "server crashed" signature.
* ``half_write`` — forward exactly ``half_write_bytes`` of the next
  server→client chunk, then RST: a reply cut mid-frame, which clients
  must surface as a retryable stream error (``ProtocolError``), never
  parse garbage.

The proxy listens on an ephemeral port (see :attr:`address`); point
the client at the proxy and the real server stays unmodified.  Used
with :class:`~repro.cluster.replicate.ReplicaProcess.kill` /
``restart()`` — the process-level chaos primitives — this covers the
failure matrix the README documents.

:func:`primary_crash_drill` is the durability acceptance test in
function form: SIGKILL a journaled primary with an update batch in
flight, restart it on the same data dir, and prove (a) every acked
update survived, (b) the in-flight batch applied entirely or not at
all, (c) a client re-send of any batch is idempotent, and (d) the
replicas re-converge to the recovered primary through epoch shipping.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import List, Optional, Tuple

__all__ = ["ChaosProxy", "MODES", "primary_crash_drill"]

MODES = ("pass", "delay", "blackhole", "reset", "half_write")

_LINGER_RST = struct.pack("ii", 1, 0)  # close() becomes RST, not FIN


def _rst_close(sock) -> None:
    """Close with an RST so the peer sees ECONNRESET, not clean EOF.

    The ``shutdown(SHUT_RD)`` in the middle matters: a pump thread
    blocked in ``recv()`` on this socket holds a kernel reference to
    the open file description, so a bare ``close()`` would neither
    wake it nor send anything on the wire until that ``recv`` returned
    on its own (i.e. never, for an idle peer).  ``SHUT_RD`` wakes the
    reader without emitting a FIN, and once it releases its reference
    the lingering zero-timeout ``close()`` delivers the RST.
    """
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, _LINGER_RST)
    except OSError:  # pragma: no cover
        pass
    try:
        sock.shutdown(socket.SHUT_RD)
    except OSError:
        pass  # never connected, or already shut down
    try:
        sock.close()
    except OSError:  # pragma: no cover
        pass


class ChaosProxy:
    """A misbehaving-on-command TCP proxy in front of one server."""

    def __init__(
        self,
        target_host: str,
        target_port: int,
        *,
        listen_host: str = "127.0.0.1",
        mode: str = "pass",
        delay_s: float = 0.05,
        half_write_bytes: int = 7,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.target_host = target_host
        self.target_port = target_port
        self.delay_s = delay_s
        self.half_write_bytes = half_write_bytes
        self._mode = mode
        self._mode_lock = threading.Lock()
        self._conn_lock = threading.Lock()
        self._socket_pairs: List[Tuple[socket.socket, socket.socket]] = []
        self._closed = False
        self._connections_total = 0
        self._bytes_forwarded = 0
        self._resets = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((listen_host, 0))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-chaos-accept", daemon=True
        )
        self._accept_thread.start()

    # -- control -------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def mode(self) -> str:
        with self._mode_lock:
            return self._mode

    def set_mode(
        self,
        mode: str,
        *,
        delay_s: Optional[float] = None,
        half_write_bytes: Optional[int] = None,
    ) -> None:
        """Switch failure modes at runtime (takes effect immediately —
        ``reset`` also kills every connection already open)."""
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        with self._mode_lock:
            self._mode = mode
            if delay_s is not None:
                self.delay_s = delay_s
            if half_write_bytes is not None:
                self.half_write_bytes = half_write_bytes
        if mode == "reset":
            self._reset_all()

    def _reset_all(self) -> None:
        with self._conn_lock:
            pairs, self._socket_pairs = self._socket_pairs, []
        for a, b in pairs:
            self._resets += 1
            _rst_close(a)
            _rst_close(b)

    # -- data path -----------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                downstream, _addr = self._listener.accept()
            except OSError:  # listener closed
                return
            with self._mode_lock:
                mode = self._mode
            if mode == "reset":
                self._resets += 1
                _rst_close(downstream)
                continue
            try:
                upstream = socket.create_connection(
                    (self.target_host, self.target_port), timeout=5.0
                )
            except OSError:
                _rst_close(downstream)
                continue
            with self._conn_lock:
                if self._closed:
                    _rst_close(downstream)
                    _rst_close(upstream)
                    return
                self._socket_pairs.append((downstream, upstream))
                self._connections_total += 1
            for src, dst, tag in (
                (downstream, upstream, "c2s"),
                (upstream, downstream, "s2c"),
            ):
                threading.Thread(
                    target=self._pump,
                    args=(src, dst, tag),
                    name=f"repro-chaos-{tag}",
                    daemon=True,
                ).start()

    def _pump(self, src, dst, tag: str) -> None:
        try:
            while True:
                try:
                    chunk = src.recv(1 << 16)
                except OSError:
                    break
                if not chunk:
                    break
                with self._mode_lock:
                    mode = self._mode
                    delay = self.delay_s
                    half = self.half_write_bytes
                if mode == "blackhole":
                    continue  # keep reading; the bytes just vanish
                if mode == "reset":
                    break
                if mode == "half_write" and tag == "s2c":
                    # Leak a frame fragment, then cut the stream: the
                    # client's parser must flag it, not misparse it.
                    try:
                        dst.sendall(chunk[:half])
                    except OSError:
                        pass
                    break
                if mode == "delay":
                    import time

                    time.sleep(delay)
                try:
                    dst.sendall(chunk)
                    self._bytes_forwarded += len(chunk)
                except OSError:
                    break
        finally:
            self._drop_pair(src, dst)

    def _drop_pair(self, src, dst) -> None:
        with self._conn_lock:
            self._socket_pairs = [
                pair
                for pair in self._socket_pairs
                if src not in pair and dst not in pair
            ]
        self._resets += 1
        _rst_close(src)
        _rst_close(dst)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        with self._conn_lock:
            if self._closed:
                return
            self._closed = True
            pairs, self._socket_pairs = self._socket_pairs, []
        try:
            # Wake the accept() the thread is blocked in; closing the
            # fd alone leaves it blocked (the syscall pins the open
            # file description).
            self._listener.shutdown(socket.SHUT_RD)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        for a, b in pairs:
            _rst_close(a)
            _rst_close(b)
        self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        with self._conn_lock:
            open_pairs = len(self._socket_pairs)
        return {
            "mode": self.mode,
            "address": f"{self.host}:{self.port}",
            "target": f"{self.target_host}:{self.target_port}",
            "connections_total": self._connections_total,
            "open_connections": open_pairs,
            "bytes_forwarded": self._bytes_forwarded,
            "resets": self._resets,
        }

    def __repr__(self) -> str:
        return f"ChaosProxy({self.host}:{self.port} -> " \
               f"{self.target_host}:{self.target_port}, mode={self.mode})"


# ----------------------------------------------------------------------
# The durability acceptance drill
# ----------------------------------------------------------------------
def _bfs_answers(graph, pairs: List[Tuple[int, int]]) -> List[bool]:
    """Ground-truth reachability for ``pairs``, by plain BFS."""
    from collections import deque

    reach: dict = {}
    out: List[bool] = []
    adj = graph.out_adj
    for u, v in pairs:
        seen = reach.get(u)
        if seen is None:
            seen = {u}
            dq = deque((u,))
            while dq:
                x = dq.popleft()
                for y in adj[x]:
                    if y not in seen:
                        seen.add(y)
                        dq.append(y)
            reach[u] = seen
        out.append(v in seen)
    return out


def primary_crash_drill(
    data_dir: str,
    *,
    n: int = 300,
    replicas: int = 1,
    batches: int = 20,
    edges_per_batch: int = 3,
    kill_at_batch: Optional[int] = None,
    kill_delay_s: float = 0.01,
    sync: str = "interval",
    seed: int = 7,
    query_pairs: int = 400,
    converge_timeout_s: float = 60.0,
) -> dict:
    """SIGKILL a journaled primary mid-update-load and audit recovery.

    The script: build a base DAG in ``data_dir`` behind a
    :class:`~repro.cluster.replicate.PrimaryProcess` shipping to
    ``replicas`` blank replicas; stream sequenced update batches from
    one client, recording which were *acked*; with batch
    ``kill_at_batch`` in flight, SIGKILL the primary (no flush, no
    checkpoint); restart it on the same data dir; then assert, against
    BFS ground truth over the known edge stream:

    * **no acked update lost** — the recovered server's answers equal a
      fresh build of base + acked batches (+ the in-flight batch iff
      its journal append won the race), bit-for-bit over
      ``query_pairs`` sampled pairs;
    * **all-or-nothing** — the in-flight batch is entirely present or
      entirely absent, never partial;
    * **idempotent re-send** — re-sending the in-flight sequence
      completes it exactly once (``deduped`` true iff it had already
      landed), and re-sending an *acked* sequence answers
      ``deduped: true`` from the recovered dedupe window without
      re-applying;
    * **replicas converge** — every replica reaches the recovered
      primary's epoch via epoch shipping and serves identical answers.

    Returns a report dict; ``report["ok"]`` is the verdict and
    ``report["checks"]`` itemises it.  Raises nothing on a failed
    check — the caller (test / smoke script) asserts.
    """
    import time

    from ..graph.generators import novel_acyclic_edges, sparse_dag
    from ..graph.digraph import DiGraph
    from ..server.client import ReachClient
    from .replicate import PrimaryProcess, ReplicaProcess

    if batches < 3:
        raise ValueError(f"the drill needs >= 3 batches, got {batches}")
    if kill_at_batch is None:
        kill_at_batch = batches // 2
    if not 1 <= kill_at_batch < batches:
        raise ValueError(
            f"kill_at_batch must be in [1, {batches}), got {kill_at_batch}"
        )

    import random

    base = sparse_dag(n, seed=seed)
    edges, _shadow = novel_acyclic_edges(
        base, batches * edges_per_batch, seed=seed
    )
    batch_edges = [
        edges[i * edges_per_batch:(i + 1) * edges_per_batch]
        for i in range(batches)
    ]
    rng = random.Random(seed + 1)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(query_pairs)]

    def truth(extra_batches) -> List[bool]:
        g = DiGraph.from_edges(
            n, list(base.edges()) + [e for b in extra_batches for e in b]
        )
        return _bfs_answers(g, pairs)

    client_id = f"drill-{seed}"
    report: dict = {
        "batches": batches,
        "edges_per_batch": edges_per_batch,
        "kill_at_batch": kill_at_batch,
        "sync": sync,
        "checks": {},
    }
    checks = report["checks"]

    replica_procs = [ReplicaProcess() for _ in range(replicas)]
    primary = None
    try:
        addresses = [("127.0.0.1", proc.start()) for proc in replica_procs]
        primary = PrimaryProcess(
            data_dir, base, replicas=addresses, sync=sync
        )
        primary.start()

        # Phase 1: ack batches up to the kill point.
        acked = []
        with ReachClient(primary.host, primary.port) as client:
            for i in range(kill_at_batch):
                client.update(batch_edges[i], seq=i + 1, client=client_id)
                acked.append(batch_edges[i])

        # Phase 2: SIGKILL with one batch in flight.  The sender uses
        # its own connection with retries off, so the kill surfaces as
        # one clean ConnectionError instead of a retry storm.
        inflight_seq = kill_at_batch + 1
        inflight: dict = {}

        def _send_inflight() -> None:
            try:
                c = ReachClient(
                    primary.host, primary.port,
                    timeout=30.0, reconnect_attempts=0,
                )
                try:
                    inflight["summary"] = c.update(
                        batch_edges[kill_at_batch],
                        seq=inflight_seq,
                        client=client_id,
                    )
                finally:
                    c.close()
            except Exception as exc:
                inflight["error"] = repr(exc)

        sender = threading.Thread(target=_send_inflight, daemon=True)
        sender.start()
        time.sleep(kill_delay_s)
        primary.kill()
        sender.join(timeout=60.0)
        inflight_acked = "summary" in inflight
        report["inflight_acked"] = inflight_acked
        report["inflight_error"] = inflight.get("error", "")

        # Phase 3: restart on the same data dir → crash recovery.
        t0 = time.perf_counter()
        primary.restart()
        report["restart_s"] = time.perf_counter() - t0
        report["recovery_info"] = dict(primary.recovery_info)

        expect_acked = truth(acked)
        expect_with_inflight = truth(acked + [batch_edges[kill_at_batch]])
        with ReachClient(primary.host, primary.port) as client:
            recovered = client.query_batch(pairs)
            inflight_applied = recovered == expect_with_inflight
            report["inflight_applied_on_recovery"] = inflight_applied
            # An acked in-flight batch MUST have survived; an unacked
            # one may land either way (journaled-then-killed is legal),
            # but only entirely (all-or-nothing).
            if inflight_acked:
                checks["acked_inflight_survived"] = inflight_applied
            checks["no_acked_update_lost"] = (
                recovered == expect_with_inflight or recovered == expect_acked
            )

            # Phase 4: idempotent re-sends against the *recovered*
            # dedupe window.  The window records each client's latest
            # sequence, so probe that one first (an older seq would —
            # correctly — be rejected as stale): whether it was an
            # acked checkpointed batch or a journal-replayed one, the
            # re-send must dedupe without re-applying anything.
            latest_seq = inflight_seq if inflight_applied else kill_at_batch
            recovered_truth = (
                expect_with_inflight if inflight_applied else expect_acked
            )
            re_latest = client.update(
                batch_edges[latest_seq - 1], seq=latest_seq, client=client_id
            )
            checks["recorded_resend_deduped"] = bool(re_latest.get("deduped"))
            checks["recorded_resend_changed_nothing"] = (
                client.query_batch(pairs) == recovered_truth
            )

            # The reconnecting client completes its unacked batch —
            # exactly once (deduped iff the journal got it pre-kill).
            resend = client.update(
                batch_edges[kill_at_batch], seq=inflight_seq, client=client_id
            )
            checks["inflight_resend_deduped_iff_applied"] = (
                bool(resend.get("deduped")) == inflight_applied
            )
            checks["state_after_resend"] = (
                client.query_batch(pairs) == expect_with_inflight
            )

            # Phase 5: finish the stream; final state must equal a
            # fresh build of every batch.
            for i in range(kill_at_batch + 1, batches):
                client.update(batch_edges[i], seq=i + 1, client=client_id)
            final_truth = truth(batch_edges)
            checks["final_state_exact"] = (
                client.query_batch(pairs) == final_truth
            )
            primary_epoch = client.epoch()
        report["primary_epoch"] = primary_epoch

        # Phase 6: replicas re-converge through epoch shipping.
        deadline = time.monotonic() + converge_timeout_s
        converged = True
        for rhost, rport in addresses:
            with ReachClient(rhost, rport) as rc:
                while rc.epoch() < primary_epoch:
                    if time.monotonic() > deadline:
                        converged = False
                        break
                    time.sleep(0.05)
                else:
                    converged = converged and (
                        rc.query_batch(pairs) == final_truth
                    )
        checks["replicas_converged"] = converged

        report["ok"] = all(checks.values())
        return report
    finally:
        if primary is not None:
            primary.stop()
        for proc in replica_procs:
            proc.stop()
