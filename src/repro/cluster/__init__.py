"""Fault-tolerant replica tier: router, health, replication, chaos.

A single reachability server (:mod:`repro.server`) dies with its host.
This package turns N of them into a tier that survives any one of them:

* :mod:`repro.cluster.router` — :class:`ReplicaRouter` fans query
  batches over replicas with per-replica timeouts, retries on another
  replica (jittered exponential backoff), hedged dispatch for tail
  requests, and explicit overload shedding.  It duck-types
  :class:`~repro.server.service.QueryService`, so a plain
  :class:`~repro.server.service.ReachServer` is the tier's front end.
* :mod:`repro.cluster.health` — :class:`HealthMonitor` heartbeats
  every replica (``OP_EPOCH``), ejects after consecutive failures,
  re-admits through half-open probation, and flags epoch-lagging
  replicas stale (still serving, visibly degraded).
* :mod:`repro.cluster.replicate` — :class:`EpochShipper` pushes each
  published epoch from the primary's
  :class:`~repro.live.VersionedArtifactStore` to every replica over
  the wire (``OP_SHIP``); replicas apply via ``publish_snapshot`` with
  the primary's epoch number, so epochs stay monotone and comparable
  cluster-wide, and a blank or rejoining replica bootstraps from the
  newest epoch automatically.
* :mod:`repro.cluster.chaos` — :class:`ChaosProxy` (delay, blackhole,
  reset, half-write) plus :class:`ReplicaProcess` kill/restart: the
  harness that proves the above under fire.

The headline guarantee, enforced by the chaos tests: SIGKILL a replica
under mixed read/update load and **zero client requests fail** — the
router retries the dead replica's slices elsewhere, the health monitor
ejects it, and when it comes back blank the shipper re-fills it and
probation re-admits it.
"""

from .chaos import ChaosProxy
from .health import HealthMonitor
from .replicate import (
    EpochShipper,
    PrimaryProcess,
    ReplicaProcess,
    install_ship_handler,
)
from .router import ReplicaLink, ReplicaRouter, ReplicaUnavailable

__all__ = [
    "ChaosProxy",
    "HealthMonitor",
    "EpochShipper",
    "PrimaryProcess",
    "ReplicaProcess",
    "install_ship_handler",
    "ReplicaLink",
    "ReplicaRouter",
    "ReplicaUnavailable",
    "serve_replicated",
]


def serve_replicated(
    artifact_path: str = None,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    replicas: int = 2,
    allow_shutdown=None,
    sync_interval_s: float = 0.5,
    data_dir: str = None,
    graph=None,
    sync: str = "interval",
    bootstrap_timeout_s: float = 60.0,
    **router_kwargs,
):
    """One-call replica tier; returns the front-end server.

    Two modes, selected by which source argument is given:

    * ``artifact_path`` — the static tier: ``replicas`` seeded
      :class:`ReplicaProcess`es, an in-process
      :class:`~repro.live.VersionedArtifactStore` + :class:`EpochShipper`
      (which re-fills any replica that restarts blank), a
      :class:`ReplicaRouter` over them, and a
      :class:`~repro.server.service.ReachServer` front end speaking the
      ordinary wire protocol.
    * ``data_dir`` (+ ``graph`` for the first boot, ``sync`` for the
      journal's fsync policy) — the **durable** tier: a killable
      :class:`PrimaryProcess` (journaled primary, recovered from
      ``data_dir`` when it already has a manifest) ships epochs to
      ``replicas`` *blank* replicas, the router serves reads over the
      replicas, and sequenced updates through the front end are
      forwarded to the primary — whose ack means the batch is on disk.
      The call returns once every replica has bootstrapped to the
      primary's epoch (bounded by ``bootstrap_timeout_s``).

    ``server.close()`` tears the whole tier down.  The running pieces
    hang off the returned server as ``server.router``,
    ``server.replicas`` and ``server.shipper`` (static mode) or
    ``server.primary`` (durable mode) — which is exactly what a chaos
    harness needs to reach in and kill things.

    Extra keyword arguments go to :class:`ReplicaRouter` (timeouts,
    hedging, health knobs).
    """
    from ..live.store import VersionedArtifactStore
    from ..server.service import ReachServer

    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if (artifact_path is None) == (data_dir is None):
        raise ValueError("pass exactly one of artifact_path / data_dir")
    if data_dir is not None:
        return _serve_replicated_durable(
            data_dir,
            graph,
            host,
            port,
            replicas=replicas,
            allow_shutdown=allow_shutdown,
            sync=sync,
            bootstrap_timeout_s=bootstrap_timeout_s,
            **router_kwargs,
        )
    store = VersionedArtifactStore()
    procs = []
    shipper = None
    router = None
    try:
        store.publish_snapshot(artifact_path)
        addresses = []
        for _ in range(replicas):
            proc = ReplicaProcess(seed_path=artifact_path)
            procs.append(proc)
            addresses.append(("127.0.0.1", proc.start()))
        shipper = EpochShipper(
            store, addresses, sync_interval_s=sync_interval_s
        ).start()
        router = ReplicaRouter(addresses, **router_kwargs).start()
        server = ReachServer(
            router, host, port, allow_shutdown=allow_shutdown, owns_service=True
        )
        server.cleanup_callbacks.append(shipper.close)
        server.cleanup_callbacks.extend(proc.stop for proc in procs)
        server.cleanup_callbacks.append(store.close)
        server.router = router
        server.replicas = procs
        server.shipper = shipper
        server.store = store
        return server.start()
    except BaseException:
        if shipper is not None:
            shipper.close()
        if router is not None:
            router.close()
        for proc in procs:
            proc.stop()
        store.close()
        raise


def _serve_replicated_durable(
    data_dir,
    graph,
    host,
    port,
    *,
    replicas,
    allow_shutdown,
    sync,
    bootstrap_timeout_s,
    **router_kwargs,
):
    """The durable tier: journaled PrimaryProcess + blank replicas.

    Reads fan over the replicas through the router; updates forward to
    the primary over a sequenced :class:`~repro.server.ReachClient`
    connection (the caller's ``(client, seq)`` ride through verbatim,
    so end-to-end idempotency is the primary's dedupe window, not
    anything this layer invents).
    """
    import threading
    import time

    from ..server.client import ReachClient
    from ..server.service import ReachServer
    from .replicate import PrimaryProcess, ReplicaProcess

    procs = []
    primary = None
    router = None
    try:
        addresses = []
        for _ in range(replicas):
            proc = ReplicaProcess()  # blank: bootstrapped by the shipper
            procs.append(proc)
            addresses.append(("127.0.0.1", proc.start()))
        primary = PrimaryProcess(
            data_dir, graph, replicas=addresses, sync=sync
        )
        primary.start()
        with ReachClient("127.0.0.1", primary.port) as pc:
            target_epoch = pc.epoch()
        # Block until every replica holds the primary's epoch: fronting
        # blank replicas would serve "no published epoch" errors for
        # the first shipper pass.
        deadline = time.monotonic() + bootstrap_timeout_s
        for rhost, rport in addresses:
            with ReachClient(rhost, rport) as rc:
                while rc.epoch() < target_epoch:
                    if time.monotonic() > deadline:
                        raise RuntimeError(
                            f"replica {rhost}:{rport} did not bootstrap to "
                            f"epoch {target_epoch} in {bootstrap_timeout_s}s"
                        )
                    time.sleep(0.05)
        router = ReplicaRouter(addresses, **router_kwargs).start()

        # One cached forwarding connection, rebuilt after any failure
        # (e.g. across a primary restart — the port survives, the TCP
        # connection does not).
        fwd_lock = threading.Lock()
        fwd = {"client": None}

        def _forward_client():
            with fwd_lock:
                if fwd["client"] is None:
                    fwd["client"] = ReachClient(primary.host, primary.port)
                return fwd["client"]

        def _drop_forward_client():
            with fwd_lock:
                client, fwd["client"] = fwd["client"], None
            if client is not None:
                client.close()

        def updater(edges, *, client=None, seq=None):
            conn = _forward_client()
            try:
                if client is None:
                    # Legacy un-sequenced update: not safe to retry, so
                    # it forwards exactly once.
                    return conn.update(edges, idempotent=False)
                return conn.update(edges, client=client, seq=seq)
            except Exception:
                _drop_forward_client()
                raise

        router.updater = updater
        server = ReachServer(
            router, host, port, allow_shutdown=allow_shutdown, owns_service=True
        )
        server.cleanup_callbacks.append(_drop_forward_client)
        server.cleanup_callbacks.append(primary.stop)
        server.cleanup_callbacks.extend(proc.stop for proc in procs)
        server.router = router
        server.replicas = procs
        server.primary = primary
        return server.start()
    except BaseException:
        if router is not None:
            router.close()
        if primary is not None:
            primary.stop()
        for proc in procs:
            proc.stop()
        raise
