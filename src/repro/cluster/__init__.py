"""Fault-tolerant replica tier: router, health, replication, chaos.

A single reachability server (:mod:`repro.server`) dies with its host.
This package turns N of them into a tier that survives any one of them:

* :mod:`repro.cluster.router` — :class:`ReplicaRouter` fans query
  batches over replicas with per-replica timeouts, retries on another
  replica (jittered exponential backoff), hedged dispatch for tail
  requests, and explicit overload shedding.  It duck-types
  :class:`~repro.server.service.QueryService`, so a plain
  :class:`~repro.server.service.ReachServer` is the tier's front end.
* :mod:`repro.cluster.health` — :class:`HealthMonitor` heartbeats
  every replica (``OP_EPOCH``), ejects after consecutive failures,
  re-admits through half-open probation, and flags epoch-lagging
  replicas stale (still serving, visibly degraded).
* :mod:`repro.cluster.replicate` — :class:`EpochShipper` pushes each
  published epoch from the primary's
  :class:`~repro.live.VersionedArtifactStore` to every replica over
  the wire (``OP_SHIP``); replicas apply via ``publish_snapshot`` with
  the primary's epoch number, so epochs stay monotone and comparable
  cluster-wide, and a blank or rejoining replica bootstraps from the
  newest epoch automatically.
* :mod:`repro.cluster.chaos` — :class:`ChaosProxy` (delay, blackhole,
  reset, half-write) plus :class:`ReplicaProcess` kill/restart: the
  harness that proves the above under fire.

The headline guarantee, enforced by the chaos tests: SIGKILL a replica
under mixed read/update load and **zero client requests fail** — the
router retries the dead replica's slices elsewhere, the health monitor
ejects it, and when it comes back blank the shipper re-fills it and
probation re-admits it.
"""

from .chaos import ChaosProxy
from .health import HealthMonitor
from .replicate import EpochShipper, ReplicaProcess, install_ship_handler
from .router import ReplicaLink, ReplicaRouter, ReplicaUnavailable

__all__ = [
    "ChaosProxy",
    "HealthMonitor",
    "EpochShipper",
    "ReplicaProcess",
    "install_ship_handler",
    "ReplicaLink",
    "ReplicaRouter",
    "ReplicaUnavailable",
    "serve_replicated",
]


def serve_replicated(
    artifact_path: str,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    replicas: int = 2,
    allow_shutdown=None,
    sync_interval_s: float = 0.5,
    **router_kwargs,
):
    """One-call replica tier over a saved artifact; returns the front end.

    Spawns ``replicas`` seeded :class:`ReplicaProcess`es, a primary
    :class:`~repro.live.VersionedArtifactStore` + :class:`EpochShipper`
    (which re-fills any replica that restarts blank), a
    :class:`ReplicaRouter` over them, and a
    :class:`~repro.server.service.ReachServer` front end speaking the
    ordinary wire protocol.  ``server.close()`` tears the whole tier
    down.  The running pieces hang off the returned server as
    ``server.router``, ``server.replicas`` and ``server.shipper`` —
    which is exactly what a chaos harness needs to reach in and kill
    things.

    Extra keyword arguments go to :class:`ReplicaRouter` (timeouts,
    hedging, health knobs).
    """
    from ..live.store import VersionedArtifactStore
    from ..server.service import ReachServer

    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    store = VersionedArtifactStore()
    procs = []
    shipper = None
    router = None
    try:
        store.publish_snapshot(artifact_path)
        addresses = []
        for _ in range(replicas):
            proc = ReplicaProcess(seed_path=artifact_path)
            procs.append(proc)
            addresses.append(("127.0.0.1", proc.start()))
        shipper = EpochShipper(
            store, addresses, sync_interval_s=sync_interval_s
        ).start()
        router = ReplicaRouter(addresses, **router_kwargs).start()
        server = ReachServer(
            router, host, port, allow_shutdown=allow_shutdown, owns_service=True
        )
        server.cleanup_callbacks.append(shipper.close)
        server.cleanup_callbacks.extend(proc.stop for proc in procs)
        server.cleanup_callbacks.append(store.close)
        server.router = router
        server.replicas = procs
        server.shipper = shipper
        server.store = store
        return server.start()
    except BaseException:
        if shipper is not None:
            shipper.close()
        if router is not None:
            router.close()
        for proc in procs:
            proc.stop()
        store.close()
        raise
