"""Epoch replication: primary → replicas, snapshot by snapshot.

Three pieces:

* :func:`make_ship_handler` / :func:`install_ship_handler` — the
  replica side of ``OP_SHIP``: payload bytes land in a temp file and
  enter the replica's :class:`~repro.live.VersionedArtifactStore` via
  ``publish_snapshot(path, epoch=primary_epoch)``, so the replica's
  epoch numbers ARE the primary's (a router comparing epochs across
  replicas compares the same clock).  A ship at or below the replica's
  current epoch answers ``{"applied": false}`` instead of regressing —
  the monotone-epoch invariant is enforced where the data lives, which
  makes shipping idempotent and ship retries safe.
* :class:`EpochShipper` — the primary side: a publish hook on the
  store wakes the shipping loop the moment an epoch flips, and a
  periodic sync pass compares each replica's ``OP_EPOCH`` against the
  primary's current epoch and ships the newest snapshot to whoever is
  behind.  One mechanism covers all three cases — steady-state
  replication, a blank replica bootstrapping from nothing, and a
  restarted replica rejoining after missed flips — because "behind" is
  the only state the loop ever has to fix.  The artifact's bytes are
  read under an epoch lease, so a concurrent flip can never unlink the
  file mid-read.
* :class:`ReplicaProcess` — a replica as a child process (blank or
  seeded store + ``QueryService`` + ``ReachServer`` with the ship
  handler mounted), with ``kill()`` (SIGKILL, the chaos primitive) and
  ``restart()`` (same port, blank store — it re-bootstraps through the
  shipper) helpers.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..server import protocol as proto
from ..server.client import ReachClient

__all__ = [
    "make_ship_handler",
    "install_ship_handler",
    "EpochShipper",
    "ReplicaProcess",
    "PrimaryProcess",
]


# ----------------------------------------------------------------------
# Replica side: the OP_SHIP handler
# ----------------------------------------------------------------------
def make_ship_handler(store) -> Callable[[int, bytes, object], None]:
    """A ``handlers[OP_SHIP]`` callable applying ships into ``store``.

    Replies ``OP_SHIP_REPLY`` with ``{"applied", "epoch", "reason"}``;
    ``epoch`` is the replica's epoch *after* the call either way.
    Decode errors propagate to the server's per-request catch-all
    (which answers ``OP_ERROR``), so a corrupt frame costs one request,
    never the replica.
    """

    def handle_ship(request_id: int, payload: bytes, writer) -> None:
        epoch, data = proto.decode_ship(payload)
        current = store.current_epoch or 0
        if epoch <= current:
            doc = {
                "applied": False,
                "epoch": current,
                "reason": (
                    f"stale ship: replica already at epoch {current}, "
                    f"offered {epoch} (epochs are monotone)"
                ),
            }
        else:
            fd, tmp = tempfile.mkstemp(prefix="repro-ship-", suffix=".rpro")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                try:
                    store.publish_snapshot(tmp, epoch=epoch)
                except ValueError as exc:
                    # Lost a publish race after the pre-check (two
                    # shippers, or a local publish): still monotone,
                    # still not an error.
                    doc = {
                        "applied": False,
                        "epoch": store.current_epoch or 0,
                        "reason": str(exc),
                    }
                else:
                    doc = {"applied": True, "epoch": epoch, "reason": ""}
            finally:
                try:
                    os.unlink(tmp)  # publish_snapshot pinned its own link
                except OSError:  # pragma: no cover
                    pass
        writer.send_now(
            proto.OP_SHIP_REPLY, request_id, json.dumps(doc).encode("utf-8")
        )

    return handle_ship


def install_ship_handler(server, store) -> None:
    """Mount ``OP_SHIP`` on a :class:`ReachServer` serving ``store``."""
    server.handlers[proto.OP_SHIP] = make_ship_handler(store)


# ----------------------------------------------------------------------
# Primary side: the shipper
# ----------------------------------------------------------------------
class EpochShipper:
    """Keep every replica's store at the primary store's epoch.

    Event-driven with a periodic safety net: the store's publish hook
    wakes the loop instantly on each flip, and every
    ``sync_interval_s`` the loop re-checks all replicas anyway — that
    periodic pass is what bootstraps blank replicas and re-fills
    restarted ones without any extra protocol.  Only the *newest*
    epoch ever ships (a replica three flips behind catches up in one
    transfer); intermediate epochs it missed are simply skipped, which
    is sound because every snapshot is self-contained.
    """

    def __init__(
        self,
        store,
        replicas: Sequence[Tuple[str, int]],
        *,
        sync_interval_s: float = 0.5,
        connect_timeout_s: float = 2.0,
        request_timeout_s: float = 30.0,
    ) -> None:
        self.store = store
        self.sync_interval_s = sync_interval_s
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self._addresses: List[Tuple[str, int]] = [
            (host, int(port)) for host, port in replicas
        ]
        self._clients: Dict[str, Optional[ReachClient]] = {
            f"{host}:{port}": None for host, port in self._addresses
        }
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._ships_applied = 0
        self._ships_stale = 0
        self._ship_failures = 0
        self._last_shipped: Dict[str, int] = {}
        store.add_publish_hook(self._on_publish)

    def _on_publish(self, epoch: int, path: str) -> None:
        self._wake.set()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "EpochShipper":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-epoch-shipper", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        with self._lock:
            clients = [c for c in self._clients.values() if c is not None]
            self._clients = {name: None for name in self._clients}
        for client in clients:
            client.close()

    def __enter__(self) -> "EpochShipper":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _loop(self) -> None:
        while True:
            self._wake.wait(self.sync_interval_s)
            self._wake.clear()
            if self._stop.is_set():
                return
            try:
                self.sync_once()
            except Exception:  # pragma: no cover - loop must survive
                pass

    # -- shipping ------------------------------------------------------
    def _client(self, name: str, host: str, port: int) -> Optional[ReachClient]:
        with self._lock:
            client = self._clients.get(name)
        if client is not None:
            return client
        try:
            client = ReachClient(
                host,
                port,
                timeout=self.request_timeout_s,
                connect_timeout=self.connect_timeout_s,
            )
        except OSError:
            return None  # replica down; the next sync pass retries
        with self._lock:
            self._clients[name] = client
        return client

    def _drop_client(self, name: str) -> None:
        with self._lock:
            client, self._clients[name] = self._clients.get(name), None
        if client is not None:
            client.close()

    def sync_once(self) -> int:
        """One pass: ship the current epoch to every lagging replica.

        Returns how many ships were applied.  Callable directly (tests,
        or a caller that wants synchronous ship-on-publish); the
        background loop just invokes it on wake/interval.
        """
        try:
            lease = self.store.acquire()
        except RuntimeError:
            return 0  # nothing published yet, or store closed
        applied = 0
        try:
            epoch = lease.epoch
            data: Optional[bytes] = None
            for host, port in self._addresses:
                name = f"{host}:{port}"
                client = self._client(name, host, port)
                if client is None:
                    self._ship_failures += 1
                    continue
                try:
                    replica_epoch = client.epoch()
                    if replica_epoch >= epoch:
                        continue
                    if data is None:  # read once, under the lease
                        with open(lease.path, "rb") as fh:
                            data = fh.read()
                    verdict = client.ship(epoch, data)
                except (OSError, proto.ProtocolError, RuntimeError):
                    # RuntimeError covers a replica that answered
                    # OP_ERROR (e.g. mid-restart with no handler yet);
                    # drop the connection and retry next pass.
                    self._ship_failures += 1
                    self._drop_client(name)
                    continue
                if verdict.get("applied"):
                    applied += 1
                    self._ships_applied += 1
                    self._last_shipped[name] = epoch
                else:
                    self._ships_stale += 1
                    self._last_shipped[name] = int(verdict.get("epoch", 0))
        finally:
            lease.release()
        return applied

    def stats(self) -> dict:
        with self._lock:
            connected = sum(1 for c in self._clients.values() if c is not None)
        return {
            "replicas": len(self._addresses),
            "connected": connected,
            "ships_applied": self._ships_applied,
            "ships_stale": self._ships_stale,
            "ship_failures": self._ship_failures,
            "last_shipped": dict(self._last_shipped),
        }

    def __repr__(self) -> str:
        return (
            f"EpochShipper(replicas={len(self._addresses)}, "
            f"applied={self._ships_applied})"
        )


# ----------------------------------------------------------------------
# A replica as a child process
# ----------------------------------------------------------------------
def _replica_main(host: str, port: int, seed_path: Optional[str], ready) -> None:
    """Child entry point: blank-or-seeded store behind a ReachServer."""
    from ..live.store import VersionedArtifactStore
    from ..server.service import QueryService, ReachServer

    store = VersionedArtifactStore()
    try:
        if seed_path:
            store.publish_snapshot(seed_path)
        service = QueryService(
            store=store,
            workers=0,
            allow_empty_store=True,
            owns_store=True,
        )
        service.start()
        server = ReachServer(
            service, host, port, allow_shutdown=True, owns_service=True
        )
        install_ship_handler(server, store)
        server.start()
    except BaseException as exc:
        ready.put(("error", repr(exc)))
        return
    ready.put(("ok", server.port))
    server.wait()


class ReplicaProcess:
    """One replica in a child process, with chaos-grade lifecycle.

    ``start()`` forks the replica and blocks until its server is
    accepting (returning the bound port); ``kill()`` is a SIGKILL — no
    cleanup, no goodbye, exactly what the chaos tests need; ``stop()``
    is the polite SIGTERM; ``restart()`` brings a *blank* replica back
    up on the same port (state died with the process — rejoining and
    catching up is the :class:`EpochShipper`'s job, and proving that
    happens is the point of the chaos harness).

    ``seed_path`` pre-publishes an artifact so the replica serves from
    birth (epoch 1) instead of bootstrapping over the wire.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        seed_path: Optional[str] = None,
    ) -> None:
        import multiprocessing as mp

        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            self._ctx = mp.get_context("spawn")
        self.host = host
        self.port = port
        self.seed_path = seed_path
        self._proc = None
        self.restarts = 0

    # -- lifecycle -----------------------------------------------------
    def start(self, timeout: float = 30.0) -> int:
        if self._proc is not None and self._proc.is_alive():
            return self.port
        ready = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_replica_main,
            args=(self.host, self.port, self.seed_path, ready),
            daemon=True,
            name=f"repro-replica-{self.host}:{self.port or 'ephemeral'}",
        )
        proc.start()
        import queue as _queue

        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                proc.terminate()
                raise RuntimeError("replica did not come up in time")
            try:
                status, value = ready.get(timeout=min(0.25, remaining))
                break
            except _queue.Empty:
                if not proc.is_alive():
                    raise RuntimeError(
                        "replica process died during startup"
                    ) from None
        if status == "error":
            proc.join(timeout=5.0)
            raise RuntimeError(f"replica failed to start: {value}")
        self.port = int(value)
        self._proc = proc
        return self.port

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def pid(self) -> Optional[int]:
        return None if self._proc is None else self._proc.pid

    def is_alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def kill(self) -> None:
        """SIGKILL — the replica vanishes mid-whatever-it-was-doing."""
        if self._proc is not None:
            self._proc.kill()
            self._proc.join(timeout=10.0)

    def stop(self) -> None:
        """SIGTERM + join (the polite teardown for test cleanup)."""
        if self._proc is not None:
            if self._proc.is_alive():
                self._proc.terminate()
            self._proc.join(timeout=10.0)
            self._proc = None

    def restart(self, timeout: float = 30.0, *, seed: bool = False) -> int:
        """Bring the replica back up on the same port.

        ``seed=False`` (default) restarts *blank*: the old store died
        with the process, and the rejoin path under test is the shipper
        re-filling it from the primary's newest epoch.
        """
        if self.is_alive():
            self.stop()
        self._proc = None
        self.restarts += 1
        if seed:
            return self.start(timeout=timeout)
        keep, self.seed_path = self.seed_path, None
        try:
            return self.start(timeout=timeout)
        finally:
            self.seed_path = keep

    def __enter__(self) -> "ReplicaProcess":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "alive" if self.is_alive() else "down"
        return f"ReplicaProcess({self.host}:{self.port}, {state})"


# ----------------------------------------------------------------------
# A journaled primary as a child process
# ----------------------------------------------------------------------
def _primary_main(
    host: str,
    port: int,
    data_dir: str,
    graph_spec: Optional[Tuple[int, List[Tuple[int, int]]]],
    sync: str,
    replica_addrs: Sequence[Tuple[str, int]],
    ready,
) -> None:
    """Child entry point: a JournaledPrimary behind a ReachServer.

    The primary recovers from ``data_dir`` when a manifest exists (the
    restart-after-kill path) and builds fresh from ``graph_spec``
    otherwise; either way it serves queries, journals sequenced
    updates, and (when replicas are given) ships each published epoch
    to them.
    """
    from ..durability import JournaledPrimary
    from ..graph.digraph import DiGraph
    from ..server.service import QueryService, ReachServer

    graph = (
        DiGraph.from_edges(graph_spec[0], graph_spec[1])
        if graph_spec is not None
        else None
    )
    shipper = None
    try:
        primary = JournaledPrimary(data_dir, graph, sync=sync)
        service = QueryService(primary=primary, workers=0, owns_store=True)
        service.start()
        server = ReachServer(
            service, host, port, allow_shutdown=True, owns_service=True
        )
        install_ship_handler(server, primary.store)
        if replica_addrs:
            shipper = EpochShipper(primary.store, replica_addrs)
            shipper.start()
        server.start()
    except BaseException as exc:
        ready.put(("error", repr(exc)))
        return
    ready.put(("ok", (server.port, dict(primary.recovery_info))))
    server.wait()
    if shipper is not None:
        shipper.close()


class PrimaryProcess:
    """A journaled primary in a child process — the killable kind.

    The durable sibling of :class:`ReplicaProcess`: ``start()`` forks a
    child that mounts a :class:`~repro.durability.JournaledPrimary`
    over ``data_dir`` behind a :class:`~repro.server.ReachServer`
    (queries + sequenced updates + ``OP_SHIP`` source via an
    :class:`EpochShipper` when ``replicas`` are given), ``kill()`` is
    SIGKILL mid-whatever, and ``restart()`` brings it back *on the same
    data dir* — recovery (manifest + journal replay) is the child's
    startup path, and ``recovery_info`` from the latest start reports
    what it found.  The initial ``graph`` is only consulted when
    ``data_dir`` has no manifest yet; after that the disk is the truth.
    """

    def __init__(
        self,
        data_dir: str,
        graph=None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        replicas: Sequence[Tuple[str, int]] = (),
        sync: str = "interval",
    ) -> None:
        import multiprocessing as mp

        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            self._ctx = mp.get_context("spawn")
        self.data_dir = str(data_dir)
        # (n, edges) survives a spawn-context pickle; the child rebuilds.
        self._graph_spec = (
            None if graph is None else (graph.n, list(graph.edges()))
        )
        self.host = host
        self.port = port
        self.replicas = [(h, int(p)) for h, p in replicas]
        self.sync = sync
        self.recovery_info: dict = {}
        self._proc = None
        self.restarts = 0

    # -- lifecycle -----------------------------------------------------
    def start(self, timeout: float = 60.0) -> int:
        if self._proc is not None and self._proc.is_alive():
            return self.port
        ready = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_primary_main,
            args=(
                self.host,
                self.port,
                self.data_dir,
                self._graph_spec,
                self.sync,
                self.replicas,
                ready,
            ),
            daemon=True,
            name=f"repro-primary-{self.host}:{self.port or 'ephemeral'}",
        )
        proc.start()
        import queue as _queue

        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                proc.terminate()
                raise RuntimeError("primary did not come up in time")
            try:
                status, value = ready.get(timeout=min(0.25, remaining))
                break
            except _queue.Empty:
                if not proc.is_alive():
                    raise RuntimeError(
                        "primary process died during startup"
                    ) from None
        if status == "error":
            proc.join(timeout=5.0)
            raise RuntimeError(f"primary failed to start: {value}")
        self.port, self.recovery_info = int(value[0]), dict(value[1])
        self._proc = proc
        return self.port

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def pid(self) -> Optional[int]:
        return None if self._proc is None else self._proc.pid

    def is_alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def kill(self) -> None:
        """SIGKILL — no flush, no checkpoint, no goodbye."""
        if self._proc is not None:
            self._proc.kill()
            self._proc.join(timeout=10.0)

    def stop(self) -> None:
        """SIGTERM + join (test-cleanup teardown)."""
        if self._proc is not None:
            if self._proc.is_alive():
                self._proc.terminate()
            self._proc.join(timeout=10.0)
            self._proc = None

    def restart(self, timeout: float = 60.0) -> int:
        """Bring the primary back up on the same port and data dir.

        Unlike a replica restart this is *not* blank: the child finds
        the manifest in ``data_dir`` and runs crash recovery — every
        acked update is back before the port opens.
        """
        if self.is_alive():
            self.stop()
        self._proc = None
        self.restarts += 1
        return self.start(timeout=timeout)

    def __enter__(self) -> "PrimaryProcess":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "alive" if self.is_alive() else "down"
        return f"PrimaryProcess({self.host}:{self.port}, {state}, dir={self.data_dir})"
