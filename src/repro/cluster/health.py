"""Replica health: probe, eject, half-open probation, re-admit.

The state machine every replica record walks::

    HEALTHY ──(eject_after consecutive failures)──▶ EJECTED
    EJECTED ──(probation_delay_s elapsed)─────────▶ PROBATION
    PROBATION ──(one probe succeeds)──────────────▶ HEALTHY
    PROBATION ──(that probe fails)────────────────▶ EJECTED (timer resets)

Probes are ``OP_EPOCH`` round-trips (the cheapest op that proves the
whole serve path is up *and* reports how fresh the replica is), but the
data path feeds the same records: a query that fails on a replica
counts exactly like a failed probe, so a replica that dies between
heartbeats is ejected by the traffic it drops, not ``interval_s``
later.  ``PROBATION`` is half-open in the circuit-breaker sense — one
probe is allowed through, real traffic is not, so a still-sick replica
costs one heartbeat instead of a burst of retries.

Degradation is graceful and explicit:

* A replica whose epoch lags the cluster maximum is **stale** — still
  routable (reads are served from its older artifact), but flagged in
  every stats document so operators and the router's preference order
  can see it.
* A replica with no epoch at all (a blank just-joined node waiting for
  its first shipped snapshot) is healthy but **not routable**: it has
  nothing to answer queries with.

The monitor never sleeps holding its lock and exposes
:meth:`poll_once` so tests drive the clock deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = ["HEALTHY", "EJECTED", "PROBATION", "ReplicaHealth", "HealthMonitor"]

HEALTHY = "healthy"
EJECTED = "ejected"
PROBATION = "probation"


class ReplicaHealth:
    """One replica's health record (mutated only under the monitor's lock)."""

    __slots__ = (
        "name",
        "state",
        "consecutive_failures",
        "epoch",
        "ejected_at",
        "probes",
        "failures",
        "ejections",
        "readmissions",
        "last_error",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = HEALTHY
        self.consecutive_failures = 0
        self.epoch = 0  # 0 = nothing published/observed yet
        self.ejected_at = 0.0
        self.probes = 0
        self.failures = 0
        self.ejections = 0
        self.readmissions = 0
        self.last_error = ""

    def snapshot(self, cluster_epoch: int) -> Dict[str, object]:
        return {
            "name": self.name,
            "state": self.state,
            "epoch": self.epoch,
            "stale": self.state == HEALTHY and 0 < self.epoch < cluster_epoch,
            "consecutive_failures": self.consecutive_failures,
            "probes": self.probes,
            "failures": self.failures,
            "ejections": self.ejections,
            "readmissions": self.readmissions,
            "last_error": self.last_error,
        }


class HealthMonitor:
    """Heartbeats + ejection/probation over a set of named replicas.

    ``probes`` maps replica name → a zero-argument callable that runs
    one ``OP_EPOCH`` round-trip and returns the replica's epoch (any
    exception is a failed probe).  The router passes bound
    ``ReplicaLink.probe_epoch`` methods; tests pass plain lambdas.

    ``eject_after`` consecutive failures (probe or data-path, they
    share the counter) eject a replica; after ``probation_delay_s`` it
    becomes half-open and the next heartbeat decides: success re-admits
    (and resets the failure streak), failure re-ejects and restarts the
    probation timer.  ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        probes: Dict[str, Callable[[], int]],
        *,
        interval_s: float = 0.25,
        eject_after: int = 3,
        probation_delay_s: float = 1.0,
        on_change: Optional[Callable[[str, str, str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if eject_after < 1:
            raise ValueError(f"eject_after must be >= 1, got {eject_after}")
        self._probes = dict(probes)
        self.interval_s = interval_s
        self.eject_after = eject_after
        self.probation_delay_s = probation_delay_s
        self._on_change = on_change
        self._clock = clock
        self._lock = threading.Lock()
        self._replicas: Dict[str, ReplicaHealth] = {
            name: ReplicaHealth(name) for name in self._probes
        }
        self._cluster_epoch = 0  # running max; never decreases
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "HealthMonitor":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-cluster-health", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.poll_once()
            except Exception:  # pragma: no cover - probes must not kill us
                pass

    # -- probing -------------------------------------------------------
    def poll_once(self) -> None:
        """One heartbeat round across every replica (tests call this
        directly to step the state machine without a thread)."""
        now = self._clock()
        for name, probe in self._probes.items():
            change = None
            with self._lock:
                rec = self._replicas[name]
                if rec.state == EJECTED:
                    if now - rec.ejected_at < self.probation_delay_s:
                        continue  # still cooling off
                    change = (EJECTED, PROBATION)
                    rec.state = PROBATION
                rec.probes += 1
            # Notify after releasing the lock (like record_success /
            # record_failure): a callback that re-enters the monitor
            # must not deadlock.
            if change and self._on_change:
                self._notify(name, *change)
            try:
                epoch = int(probe())
            except Exception as exc:
                self.record_failure(name, exc)
            else:
                self.record_success(name, epoch)

    def record_success(self, name: str, epoch: Optional[int] = None) -> None:
        """A probe (or data-path request) on ``name`` succeeded.

        ``epoch`` is the replica's *authoritatively observed* epoch (a
        probe reply); it **sets** the record, even downward — a replica
        that crashed and restarted blank reports epoch 0 and must lose
        its routability until the shipper re-fills it.  Pass ``None``
        for data-path successes, which prove liveness but say nothing
        about freshness.  The cluster epoch is a separate running max
        and never decreases.
        """
        change = None
        with self._lock:
            rec = self._replicas.get(name)
            if rec is None:
                return
            rec.consecutive_failures = 0
            rec.last_error = ""
            if epoch is not None:
                rec.epoch = epoch
                if epoch > self._cluster_epoch:
                    self._cluster_epoch = epoch
            if rec.state in (PROBATION, EJECTED):
                # EJECTED here means a *data-path* success on a replica
                # the prober hadn't re-tried yet — alive is alive.
                rec.readmissions += 1
                change = (rec.state, HEALTHY)
                rec.state = HEALTHY
        if change and self._on_change:
            self._notify(name, *change)

    def record_failure(self, name: str, error: BaseException) -> None:
        """A probe (or data-path request) on ``name`` failed."""
        change = None
        with self._lock:
            rec = self._replicas.get(name)
            if rec is None:
                return
            rec.failures += 1
            rec.consecutive_failures += 1
            rec.last_error = repr(error)
            if rec.state == PROBATION:
                # The half-open probe failed: straight back out.
                rec.ejections += 1
                rec.ejected_at = self._clock()
                change = (PROBATION, EJECTED)
                rec.state = EJECTED
            elif (
                rec.state == HEALTHY
                and rec.consecutive_failures >= self.eject_after
            ):
                rec.ejections += 1
                rec.ejected_at = self._clock()
                change = (HEALTHY, EJECTED)
                rec.state = EJECTED
        if change and self._on_change:
            self._notify(name, *change)

    def _notify(self, name: str, old: str, new: str) -> None:
        try:
            self._on_change(name, old, new)
        except Exception:  # pragma: no cover - observer must not kill us
            pass

    # -- queries -------------------------------------------------------
    def routable(self) -> List[str]:
        """Replica names fit to serve queries, freshest epochs first.

        Healthy with at least one epoch; stale replicas are included
        (degraded reads beat no reads) but sort after fresh ones, so
        the router only reaches them when it has to.  Probation nodes
        are excluded: the heartbeat earns re-admission, traffic doesn't.

        The epoch requirement only bites once the cluster *has* epochs:
        a tier of plain static servers (every ``OP_EPOCH`` answers 0)
        has no epoch concept and every healthy member is routable,
        while in an epoch-versioned tier a replica reporting 0 is blank
        — restarted empty, waiting for its first shipped snapshot — and
        must not receive traffic it cannot answer.
        """
        with self._lock:
            fit = [
                rec
                for rec in self._replicas.values()
                if rec.state == HEALTHY
                and (rec.epoch >= 1 or self._cluster_epoch == 0)
            ]
            fit.sort(key=lambda rec: -rec.epoch)
            return [rec.name for rec in fit]

    def epochs(self) -> Dict[str, int]:
        """Last observed epoch per replica (0 = none yet), one
        consistent snapshot — the router keys its freshest-first pick
        on this without taking the lock once per candidate."""
        with self._lock:
            return {name: rec.epoch for name, rec in self._replicas.items()}

    def state_of(self, name: str) -> Dict[str, object]:
        with self._lock:
            return self._replicas[name].snapshot(self._cluster_epoch)

    @property
    def cluster_epoch(self) -> int:
        """Running max epoch observed anywhere (monotone)."""
        with self._lock:
            return self._cluster_epoch

    def stats(self) -> Dict[str, object]:
        with self._lock:
            cluster = self._cluster_epoch
            replicas = [
                rec.snapshot(cluster) for rec in self._replicas.values()
            ]
        return {
            "cluster_epoch": cluster,
            "eject_after": self.eject_after,
            "probation_delay_s": self.probation_delay_s,
            "replicas": replicas,
        }

    def __repr__(self) -> str:
        return (
            f"HealthMonitor(replicas={len(self._replicas)}, "
            f"routable={len(self.routable())})"
        )
