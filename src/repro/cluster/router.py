"""Epoch-shipping router: fan batches over replicas, retry, hedge, shed.

The router presents the same duck-typed surface as
:class:`~repro.server.service.QueryService` (``query_pairs_async`` /
``current_epoch`` / ``stats`` / ``updater``), so a plain
:class:`~repro.server.service.ReachServer` mounts it unchanged as the
cluster's TCP front end — clients speak the one wire protocol whether
they hit a single host or a replica set.

Failure semantics, precisely:

* **Retryable** — a transport failure (connect refused, RST, stream
  cut mid-frame, per-replica timeout) or an ``OP_OVERLOADED`` shed
  from a replica.  The sub-batch is re-dispatched to *another* replica
  after jittered exponential backoff (``backoff_base_s · 2^(k-1) ·
  U(0.5, 1.5)``, capped), up to ``max_attempts`` dispatches.  Transport
  failures also feed the health monitor, so the replica that ate a
  batch is ejected by the traffic it dropped, not a heartbeat later.
* **Not retryable** — a replica's ``OP_ERROR`` (bad pairs, server-side
  bug): replaying the same wrong request elsewhere cannot succeed, so
  it passes straight through to the client.
* **Hedged** — a dispatch quiet for ``hedge_after_s`` (tail latency,
  not yet a timeout) sends a duplicate to a second replica; the first
  ``OP_ANSWERS`` wins and the loser's late reply is dropped by id.
  Queries are read-only, so duplicates are always safe.
* **Shed** — more than ``max_inflight`` requests already routing makes
  admission fail *immediately* with
  :class:`~repro.server.protocol.OverloadedError` (the front end turns
  it into ``OP_OVERLOADED``): an explicit "back off" beats an unbounded
  queue that turns overload into timeouts for everyone.

Large requests are split into contiguous slices, one per routable
replica, answered in parallel and reassembled in order; each slice
carries its own retry/hedge lifecycle, so one slow replica delays only
its share and one dead replica costs one retryable slice.

The router's ``current_epoch`` is the running **max** over everything
its replicas have reported — monotone by construction, so a client
watching epochs through staggered replica flips never sees time move
backwards.
"""

from __future__ import annotations

import json
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..server import protocol as proto
from ..stats import merge_histograms
from ..telemetry import Telemetry
from .health import HealthMonitor

__all__ = ["ReplicaUnavailable", "ReplicaLink", "ReplicaRouter"]

Pair = Tuple[int, int]


def _shutdown_close(sock) -> None:
    """Shutdown, then close: the link's reader thread blocks in
    ``recv()`` on this socket, and a bare ``close()`` would leave it
    blocked forever — the syscall pins the open file description, so
    the kernel sends nothing until it returns.  ``shutdown`` acts
    immediately: the reader wakes, the replica sees the FIN."""
    import socket as _socket

    try:
        sock.shutdown(_socket.SHUT_RDWR)
    except OSError:
        pass  # already disconnected
    try:
        sock.close()
    except OSError:  # pragma: no cover
        pass


class ReplicaUnavailable(ConnectionError):
    """A transport-level replica failure; the request is safe to retry
    elsewhere (the replica never produced an answer)."""


class _Reply:
    """One in-flight request on a link; resolved by the reader thread."""

    __slots__ = ("event", "op", "payload", "error", "request_id")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.op = 0
        self.payload = b""
        self.error: Optional[BaseException] = None
        self.request_id: Optional[int] = None

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()

    def resolve(self, op: int, payload: bytes) -> None:
        self.op = op
        self.payload = payload
        self.event.set()


class ReplicaLink:
    """One replica's persistent connection + reader thread.

    Requests multiplex over a single socket (ids correlate the
    out-of-order responses); a broken connection fails every in-flight
    request as :class:`ReplicaUnavailable` — retryable, because the
    replica never answered — and the next :meth:`submit` reconnects.

    Writes are serialized by a dedicated send lock: many router
    threads (parallel slices, hedges, health probes) submit on the
    same socket, and ``sendall`` is not atomic — a partial write under
    a full send buffer would let two threads interleave frame bytes
    and corrupt the stream for every request after.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        connect_timeout_s: float = 2.0,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name or f"{host}:{port}"
        self.connect_timeout_s = connect_timeout_s
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._sock = None
        self._next_id = 0
        self._pending: Dict[int, _Reply] = {}
        self._closed = False

    # -- connection management -----------------------------------------
    def _connect_locked(self) -> None:
        import socket as _socket

        sock = _socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout_s
        )
        sock.settimeout(None)  # per-request deadlines live in the router
        sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
        self._sock = sock
        threading.Thread(
            target=self._read_loop,
            args=(sock,),
            name=f"repro-link-{self.name}",
            daemon=True,
        ).start()

    def _read_loop(self, sock) -> None:
        reader = proto.FrameReader(sock)
        try:
            while True:
                frame = reader.read_frame()
                if frame is None:
                    raise ConnectionError("replica closed the connection")
                op, request_id, payload = frame
                if (
                    op == proto.OP_ERROR
                    and request_id == proto.CONNECTION_ERROR_ID
                ):
                    raise ConnectionError(
                        f"replica connection-level error: "
                        f"{payload.decode('utf-8', 'replace')}"
                    )
                with self._lock:
                    reply = self._pending.pop(request_id, None)
                if reply is not None:  # late replies (hedge losers) drop
                    reply.resolve(op, payload)
        except (OSError, ConnectionError, proto.ProtocolError) as exc:
            self._drop_connection(sock, exc)

    def _drop_connection(self, sock, exc: BaseException) -> None:
        with self._lock:
            if self._sock is not sock:
                return  # a newer connection already replaced this one
            self._sock = None
            doomed = list(self._pending.values())
            self._pending.clear()
        _shutdown_close(sock)
        failure = ReplicaUnavailable(
            f"replica {self.name} connection failed: {exc!r}"
        )
        for reply in doomed:
            reply.fail(failure)

    # -- requests ------------------------------------------------------
    def submit(self, op: int, payload: bytes = b"") -> _Reply:
        """Fire one frame; the returned reply resolves asynchronously.

        Never raises for transport failures — they land on the reply as
        :class:`ReplicaUnavailable`, so callers have one error path.
        """
        reply = _Reply()
        with self._lock:
            if self._closed:
                reply.fail(ReplicaUnavailable(f"link {self.name} is closed"))
                return reply
            try:
                if self._sock is None:
                    self._connect_locked()
            except OSError as exc:
                reply.fail(
                    ReplicaUnavailable(
                        f"replica {self.name} unreachable: {exc!r}"
                    )
                )
                return reply
            request_id = self._next_id
            self._next_id += 1
            reply.request_id = request_id
            self._pending[request_id] = reply
            sock = self._sock
        try:
            # One frame at a time on the wire: sendall can partially
            # write under backpressure, so concurrent senders would
            # interleave bytes mid-frame without this lock.
            with self._send_lock:
                sock.sendall(proto.pack_frame(op, request_id, payload))
        except OSError as exc:
            self._drop_connection(sock, exc)
        return reply

    def forget(self, reply: _Reply) -> None:
        """Abandon a submitted request that will never be waited on.

        Timeout paths must call this: against a blackholed replica the
        reply never arrives and the connection never drops, so without
        an explicit pop the pending entry would leak forever — growing
        memory and inflating :meth:`inflight`, which feeds the router's
        least-loaded pick.  A late reply for a forgotten id is dropped
        by the reader as unknown.
        """
        rid = reply.request_id
        if rid is None:
            return
        with self._lock:
            if self._pending.get(rid) is reply:
                del self._pending[rid]

    def request(
        self, op: int, payload: bytes = b"", timeout: Optional[float] = 5.0
    ) -> Tuple[int, bytes]:
        """Blocking submit + wait; raises instead of returning errors."""
        reply = self.submit(op, payload)
        if not reply.event.wait(timeout):
            self.forget(reply)
            raise ReplicaUnavailable(
                f"replica {self.name} did not answer within {timeout}s"
            )
        if reply.error is not None:
            raise reply.error
        if reply.op == proto.OP_ERROR:
            raise RuntimeError(
                f"replica {self.name} error: "
                f"{reply.payload.decode('utf-8', 'replace')}"
            )
        if reply.op == proto.OP_OVERLOADED:
            raise proto.OverloadedError(
                reply.payload.decode("utf-8", "replace") or "replica overloaded"
            )
        return reply.op, reply.payload

    def probe_epoch(self, timeout: float = 2.0) -> int:
        """One ``OP_EPOCH`` round-trip (the health monitor's heartbeat)."""
        _, payload = self.request(proto.OP_EPOCH, timeout=timeout)
        return proto.decode_epoch(payload)

    def inflight(self) -> int:
        with self._lock:
            return len(self._pending)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sock, self._sock = self._sock, None
            doomed = list(self._pending.values())
            self._pending.clear()
        if sock is not None:
            _shutdown_close(sock)
        for reply in doomed:
            reply.fail(ReplicaUnavailable(f"link {self.name} is closed"))

    def __repr__(self) -> str:
        return f"ReplicaLink({self.name}, inflight={self.inflight()})"


class ReplicaRouter:
    """Route query batches over N replicas with retries and hedging.

    ``replicas`` is a sequence of ``(host, port)`` addresses.  The
    router exposes the :class:`QueryService` surface, so::

        router = ReplicaRouter([(h1, p1), (h2, p2)]).start()
        front = ReachServer(router, owns_service=True).start()

    is a complete fault-tolerant tier.  See the module docstring for
    the retry/hedge/shed semantics each knob controls.
    """

    #: Routers have no local update path; writes go to the primary.
    updater = None

    def __init__(
        self,
        replicas: Sequence[Tuple[str, int]],
        *,
        max_attempts: int = 4,
        backoff_base_s: float = 0.02,
        backoff_cap_s: float = 0.5,
        hedge_after_s: Optional[float] = 0.1,
        request_timeout_s: float = 5.0,
        connect_timeout_s: float = 2.0,
        max_inflight: int = 1024,
        min_slice: int = 1024,
        health_interval_s: float = 0.25,
        eject_after: int = 3,
        probation_delay_s: float = 1.0,
        executor_workers: int = 32,
        seed: int = 0,
    ) -> None:
        if not replicas:
            raise ValueError("a router needs at least one replica")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.hedge_after_s = hedge_after_s
        self.request_timeout_s = request_timeout_s
        self.max_inflight = max_inflight
        self.min_slice = max(1, min_slice)
        self._links: Dict[str, ReplicaLink] = {}
        for host, port in replicas:
            link = ReplicaLink(
                host, port, connect_timeout_s=connect_timeout_s
            )
            if link.name in self._links:
                raise ValueError(f"duplicate replica address {link.name}")
            self._links[link.name] = link
        self.telemetry = Telemetry()
        registry = self.telemetry.registry
        self._attempt_hist = registry.histogram(
            "repro_router_attempt_seconds",
            "wall time of one slice dispatch (its hedge included)",
        )
        self._attempts_hist = registry.histogram(
            "repro_router_attempts_per_slice",
            "dispatch attempts one answered slice needed",
            unit="attempts",
        )
        self._retry_counter = registry.counter(
            "repro_router_retries_total", "slice re-dispatches after a failure"
        )
        self._hedge_counter = registry.counter(
            "repro_router_hedges_total", "duplicate dispatches for tail latency"
        )
        self._ejection_counter = registry.counter(
            "repro_router_ejections_total",
            "replica transitions into the ejected state",
        )
        self._readmission_counter = registry.counter(
            "repro_router_readmissions_total",
            "replica transitions back to healthy",
        )
        self.health = HealthMonitor(
            {name: link.probe_epoch for name, link in self._links.items()},
            interval_s=health_interval_s,
            eject_after=eject_after,
            probation_delay_s=probation_delay_s,
            on_change=self._on_health_change,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-router"
        )
        self._rng = random.Random(seed)
        self._stat_lock = threading.Lock()
        self._inflight = 0
        self._requests = 0
        self._slices = 0
        self._retries = 0
        self._hedges = 0
        self._hedge_wins = 0
        self._shed = 0
        self._failed = 0
        self._started = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ReplicaRouter":
        if self._started:
            return self
        self._started = True
        # Learn the replicas' epochs before serving: an immediate
        # heartbeat round means the first query routes on real health
        # instead of waiting out the first interval.
        self.health.poll_once()
        self.health.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.health.close()
        self._executor.shutdown(wait=False)
        for link in self._links.values():
            link.close()

    def __enter__(self) -> "ReplicaRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _on_health_change(self, name: str, old: str, new: str) -> None:
        """Mirror health transitions into scrapeable counters."""
        if new == "ejected":
            self._ejection_counter.inc()
        elif new == "healthy":
            self._readmission_counter.inc()

    # -- QueryService surface ------------------------------------------
    @property
    def current_epoch(self) -> int:
        """Max epoch reported by any replica, ever (monotone)."""
        return self.health.cluster_epoch

    def query_pairs_async(
        self,
        pairs: Sequence[Pair],
        callback: Callable[[Optional[List[bool]], Optional[BaseException]], None],
        trace=None,
    ) -> None:
        if not self._started:
            raise RuntimeError("ReplicaRouter.start() has not been called")
        flush = getattr(callback, "flush_writer", None)
        if trace is None and self.telemetry.should_sample():
            trace = self.telemetry.new_trace(origin="router")
        if trace is not None:
            trace.meta["pairs"] = len(pairs)

        def finish(answers, error) -> None:
            callback(answers, error)
            if flush is not None:
                flush()
            if trace is not None:
                trace.finish()
                self.telemetry.offer(trace)

        pairs = list(pairs)
        if not pairs:
            finish([], None)
            return
        with self._stat_lock:
            if self._inflight >= self.max_inflight:
                self._shed += 1
                shed = True
            else:
                shed = False
                self._inflight += 1
                self._requests += 1
        if shed:
            finish(
                None,
                proto.OverloadedError(
                    f"router at max_inflight={self.max_inflight}; "
                    "back off and retry"
                ),
            )
            return

        slices = self._slice(pairs)
        with self._stat_lock:
            self._slices += len(slices)
        state_lock = threading.Lock()
        results: List[Optional[List[bool]]] = [None] * len(slices)
        state = {"remaining": len(slices), "fired": False}

        def run(idx: int, chunk: List[Pair]) -> None:
            answers: Optional[List[bool]] = None
            error: Optional[BaseException] = None
            t0 = time.perf_counter_ns()
            try:
                answers = self._run_slice(chunk, trace=trace, slice_idx=idx)
            except BaseException as exc:
                error = exc
            if trace is not None:
                trace.add_span(f"slice{idx}", t0, time.perf_counter_ns())
            fire = None
            with state_lock:
                state["remaining"] -= 1
                drained = state["remaining"] == 0
                if error is not None:
                    if not state["fired"]:
                        state["fired"] = True
                        fire = (None, error)
                else:
                    results[idx] = answers
                    if drained and not state["fired"]:
                        state["fired"] = True
                        flat: List[bool] = []
                        for part in results:
                            flat.extend(part)
                        fire = (flat, None)
            if drained:
                with self._stat_lock:
                    self._inflight -= 1
            if fire is not None:
                if fire[1] is not None:
                    with self._stat_lock:
                        self._failed += 1
                finish(*fire)

        if len(slices) == 1:
            self._executor.submit(run, 0, slices[0])
        else:
            for idx, chunk in enumerate(slices):
                self._executor.submit(run, idx, chunk)

    def query_pairs(self, pairs: Sequence[Pair]) -> List[bool]:
        """Blocking :meth:`query_pairs_async`."""
        done = threading.Event()
        box: List[object] = [None, None]

        def callback(answers, error) -> None:
            box[0], box[1] = answers, error
            done.set()

        self.query_pairs_async(pairs, callback)
        done.wait()
        if box[1] is not None:
            raise box[1]
        return box[0]

    def query(self, u: int, v: int) -> bool:
        return self.query_pairs([(u, v)])[0]

    # -- routing internals ---------------------------------------------
    def _slice(self, pairs: List[Pair]) -> List[List[Pair]]:
        """Contiguous slices, at most one per routable replica.

        Small requests stay whole (splitting would add round-trips, not
        parallelism); large ones spread so each replica answers a
        share.  With no routable replicas the request rides one slice
        into the retry loop, which reports the real error.
        """
        fanout = max(1, len(self.health.routable()))
        if fanout == 1 or len(pairs) <= self.min_slice:
            return [pairs]
        per = max(self.min_slice, -(-len(pairs) // fanout))
        return [pairs[i:i + per] for i in range(0, len(pairs), per)]

    def _pick(self, exclude: Sequence[str]) -> Optional[str]:
        """One replica to dispatch to: freshest epoch, then least load.

        ``exclude`` lists replicas already tried for this slice (or
        already carrying its hedge); when *every* routable replica is
        excluded the exclusion is waived — retrying the same replica
        beats failing a request outright.
        """
        routable = self.health.routable()
        if not routable:
            return None
        candidates = [n for n in routable if n not in exclude] or routable
        # Freshness outranks load: a stale replica with a shorter queue
        # must not beat a fresh one, or clients get answers from an old
        # artifact while the front end advertises the cluster max epoch.
        # Load (then a random tiebreak) only splits equally-fresh peers.
        epochs = self.health.epochs()
        best = min(
            candidates,
            key=lambda n: (
                -epochs.get(n, 0),
                self._links[n].inflight(),
                self._rng.random(),
            ),
        )
        return best

    def _abandon(
        self,
        waiters: Sequence[Tuple[str, _Reply]],
        keep: Optional[_Reply] = None,
    ) -> None:
        """Forget every still-unanswered waiter except ``keep``.

        Called when a dispatch settles (a winner answered, or the
        request is non-retryably dead) while hedge copies are still
        outstanding on other replicas: their replies — which may never
        come — must not pin pending entries.
        """
        for wname, wreply in waiters:
            if wreply is not keep and not wreply.event.is_set():
                self._links[wname].forget(wreply)

    def _backoff(self, attempt: int) -> float:
        raw = self.backoff_base_s * (1 << (attempt - 1))
        return min(self.backoff_cap_s, raw) * self._rng.uniform(0.5, 1.5)

    def _run_slice(
        self, chunk: List[Pair], trace=None, slice_idx: int = 0
    ) -> List[bool]:
        payload = proto.encode_pairs(chunk)
        tried: List[str] = []
        last_exc: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            if attempt > 1:
                with self._stat_lock:
                    self._retries += 1
                self._retry_counter.inc()
                time.sleep(self._backoff(attempt - 1))
            name = self._pick(tried)
            if name is None:
                break  # nothing routable right now; maybe after backoff
            tried.append(name)
            t0 = time.perf_counter_ns()
            try:
                answers = self._dispatch(name, payload)
            except (ReplicaUnavailable, proto.OverloadedError) as exc:
                last_exc = exc
                end = time.perf_counter_ns()
                self._attempt_hist.observe_ns(end - t0)
                if trace is not None:
                    trace.add_span(
                        f"slice{slice_idx}:attempt{attempt}:{name}", t0, end
                    )
                continue
            end = time.perf_counter_ns()
            self._attempt_hist.observe_ns(end - t0)
            self._attempts_hist.observe_ns(attempt)
            if trace is not None:
                trace.add_span(
                    f"slice{slice_idx}:attempt{attempt}:{name}", t0, end
                )
            return answers
        if last_exc is not None:
            raise last_exc
        raise proto.OverloadedError(
            "no routable replicas (all ejected or blank)"
        )

    def _dispatch(self, primary: str, payload: bytes) -> List[bool]:
        """One dispatch (plus its hedge) of a slice to ``primary``.

        Returns answers from whichever copy replies first; raises
        :class:`ReplicaUnavailable` / ``OverloadedError`` for the
        retry loop, ``RuntimeError`` straight through for replica-
        reported request errors.
        """
        waiters: List[Tuple[str, _Reply]] = [
            (primary, self._links[primary].submit(proto.OP_QUERY, payload))
        ]
        deadline = time.monotonic() + self.request_timeout_s
        hedge_at: Optional[float] = None
        if self.hedge_after_s and self.hedge_after_s < self.request_timeout_s:
            hedge_at = time.monotonic() + self.hedge_after_s
        last_exc: Optional[BaseException] = None
        while waiters:
            now = time.monotonic()
            if now >= deadline:
                timeout_exc = ReplicaUnavailable(
                    f"no answer from {[n for n, _ in waiters]} within "
                    f"{self.request_timeout_s}s"
                )
                # A replica too slow for the deadline is suspect: feed
                # the health monitor so repeated stalls eject it.  The
                # abandoned replies are forgotten so a blackholed
                # replica (open connection, no answers) cannot leak a
                # pending entry per attempt.
                for wname, wreply in waiters:
                    self.health.record_failure(wname, timeout_exc)
                    self._links[wname].forget(wreply)
                raise timeout_exc
            if hedge_at is not None and now >= hedge_at:
                hedge_at = None
                alt = self._pick([n for n, _ in waiters])
                if alt is not None and all(alt != n for n, _ in waiters):
                    with self._stat_lock:
                        self._hedges += 1
                    self._hedge_counter.inc()
                    waiters.append(
                        (alt, self._links[alt].submit(proto.OP_QUERY, payload))
                    )
            step = min(0.005, max(0.0005, deadline - now))
            done_any = waiters[0][1].event.wait(step) or any(
                reply.event.is_set() for _, reply in waiters
            )
            if not done_any:
                continue
            still: List[Tuple[str, _Reply]] = []
            for wname, reply in waiters:
                if not reply.event.is_set():
                    still.append((wname, reply))
                    continue
                if reply.error is not None:
                    self.health.record_failure(wname, reply.error)
                    last_exc = reply.error
                    continue
                if reply.op == proto.OP_ANSWERS:
                    # Liveness only — a data-path reply says nothing
                    # about the replica's epoch, so don't touch it.
                    self.health.record_success(wname)
                    if wname != primary:
                        with self._stat_lock:
                            self._hedge_wins += 1
                    self._abandon(waiters, keep=reply)
                    return proto.decode_answers(reply.payload)
                if reply.op == proto.OP_OVERLOADED:
                    last_exc = proto.OverloadedError(
                        reply.payload.decode("utf-8", "replace")
                        or f"replica {wname} overloaded"
                    )
                    continue
                if reply.op == proto.OP_ERROR:
                    # The replica understood the request and rejected
                    # it: not retryable anywhere.
                    self._abandon(waiters, keep=reply)
                    raise RuntimeError(
                        f"replica {wname} error: "
                        f"{reply.payload.decode('utf-8', 'replace')}"
                    )
                last_exc = ReplicaUnavailable(
                    f"replica {wname} sent unexpected opcode {reply.op}"
                )
            waiters = still
        raise last_exc or ReplicaUnavailable("every dispatched copy failed")

    # -- stats ---------------------------------------------------------
    def stats(self) -> dict:
        with self._stat_lock:
            doc = {
                "replicas": len(self._links),
                "epoch": self.current_epoch,
                "requests": self._requests,
                "slices": self._slices,
                "inflight": self._inflight,
                "retries": self._retries,
                "hedges": self._hedges,
                "hedge_wins": self._hedge_wins,
                "shed": self._shed,
                "failed": self._failed,
            }
        doc["health"] = self.health.stats()
        doc["links"] = {
            name: link.inflight() for name, link in self._links.items()
        }
        doc["telemetry"] = self.telemetry.snapshot()
        return doc

    # -- cluster scrape ------------------------------------------------
    def scrape(self, timeout: float = 2.0) -> dict:
        """Poll every replica's ``OP_STATS`` and merge into one view.

        Returns ``{"replicas", "cluster", "router"}``: ``replicas``
        maps each name to its raw stats document (or ``{"error": ...}``
        for members that failed the poll — a dead replica degrades the
        scrape, it does not fail it), ``cluster`` sums the replicas'
        telemetry counters and **exactly** merges their latency
        histograms bucket-wise (see
        :func:`repro.stats.merge_histograms`), so cluster-wide
        percentiles come from the true combined distribution, not an
        average of per-replica summaries.  Ejected replicas are polled
        too: scraping is diagnostics, not traffic.
        """
        per: Dict[str, dict] = {}
        hists: Dict[str, dict] = {}
        counters: Dict[str, int] = {}
        polled = failed = 0
        for name, link in self._links.items():
            polled += 1
            try:
                _, payload = link.request(proto.OP_STATS, timeout=timeout)
                doc = json.loads(payload.decode("utf-8"))
            except Exception as exc:
                failed += 1
                per[name] = {"error": repr(exc)}
                continue
            per[name] = doc
            tel = doc.get("telemetry") or {}
            for hname, snap in (tel.get("histograms") or {}).items():
                if hname in hists:
                    try:
                        hists[hname] = merge_histograms(hists[hname], snap)
                    except ValueError:
                        pass  # unit clash across versions: keep the first
                else:
                    hists[hname] = merge_histograms(snap)
            for cname, value in (tel.get("counters") or {}).items():
                counters[cname] = counters.get(cname, 0) + int(value)
        return {
            "replicas": per,
            "cluster": {
                "polled": polled,
                "failed": failed,
                "counters": counters,
                "histograms": hists,
            },
            "router": self.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"ReplicaRouter(replicas={len(self._links)}, "
            f"epoch={self.current_epoch})"
        )
