"""Dataset stand-ins for the paper's Table 1 and query workloads."""

from .catalog import DATASETS, LARGE_SUITE, SMALL_SUITE, Dataset, dataset_names, load
from .workloads import Workload, equal_workload, random_workload

__all__ = [
    "DATASETS",
    "LARGE_SUITE",
    "SMALL_SUITE",
    "Dataset",
    "dataset_names",
    "load",
    "Workload",
    "equal_workload",
    "random_workload",
]
