"""Query workload generation (paper §6.1).

Two workloads are used throughout the evaluation:

* **equal** — "about 50% positive (reachable pairs) and about 50%
  negative (unreachable pairs) queries.  Positive queries are generated
  by sampling the transitive closure."
* **random** — uniformly random vertex pairs (on sparse graphs almost
  all of these are negative, which is why oracle queries must scan whole
  labels and get slightly slower — Table 3 vs Table 2).

For small graphs the positive pairs are sampled from the exact TC
bitsets, as in the paper.  For large graphs TC materialisation is the
very cost the paper avoids, so positives are sampled by bounded forward
BFS from random sources (documented substitution; the sampled
distribution is per-source-uniform either way).  Negative pairs are
rejection-sampled and verified with a Distribution-Labeling oracle
(property-tested against BFS elsewhere in this repository).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..graph.digraph import DiGraph
from ..graph.closure import sample_reachable_pair, transitive_closure_bits
from ..core.distribution import DistributionLabeling

__all__ = ["random_workload", "equal_workload", "Workload"]

Pair = Tuple[int, int]


class Workload:
    """A named batch of query pairs with its positive-rate metadata."""

    __slots__ = ("name", "pairs", "positives")

    def __init__(self, name: str, pairs: List[Pair], positives: Optional[int] = None) -> None:
        self.name = name
        self.pairs = pairs
        self.positives = positives

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def __repr__(self) -> str:
        pos = "?" if self.positives is None else self.positives
        return f"Workload({self.name}, n={len(self.pairs)}, positives={pos})"


def random_workload(graph: DiGraph, count: int, seed: int = 0) -> Workload:
    """Uniformly random pairs (the paper's "random query" load)."""
    if graph.n == 0:
        return Workload("random", [])
    rng = random.Random(seed)
    n = graph.n
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]
    return Workload("random", pairs)


def equal_workload(
    graph: DiGraph,
    count: int,
    seed: int = 0,
    exact_tc_threshold: int = 4000,
    oracle: Optional[DistributionLabeling] = None,
) -> Workload:
    """~50/50 positive/negative pairs (the paper's "equal query" load).

    Parameters
    ----------
    graph:
        The DAG being queried.
    count:
        Total number of query pairs.
    exact_tc_threshold:
        Use exact TC sampling for positives when ``n`` is at most this.
    oracle:
        Optional prebuilt DL oracle for negative verification (built on
        demand otherwise).
    """
    if graph.n == 0:
        return Workload("equal", [], positives=0)
    rng = random.Random(seed)
    n = graph.n
    half = count // 2

    if oracle is None:
        oracle = DistributionLabeling(graph)

    positives: List[Pair] = []
    if n <= exact_tc_threshold:
        tc = transitive_closure_bits(graph)
        for _ in range(half):
            pair = sample_reachable_pair(tc, rng, n)
            if pair is None:
                break
            positives.append(pair)
    else:
        positives = _bfs_positive_sample(graph, half, rng)

    negatives: List[Pair] = []
    attempts = 0
    limit = 50 * (count - len(positives)) + 100
    while len(negatives) < count - len(positives) and attempts < limit:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not oracle.query(u, v):
            negatives.append((u, v))

    pairs = positives + negatives
    rng.shuffle(pairs)
    return Workload("equal", pairs, positives=len(positives))


def _bfs_positive_sample(
    graph: DiGraph, want: int, rng: random.Random, cap: int = 2000, max_tries_factor: int = 40
) -> List[Pair]:
    """Positive pairs via bounded forward BFS from random sources."""
    out_adj = graph.out_adj
    n = graph.n
    positives: List[Pair] = []
    tries = 0
    limit = max_tries_factor * want + 100
    while len(positives) < want and tries < limit:
        tries += 1
        u = rng.randrange(n)
        reach: List[int] = []
        seen = {u}
        frontier = [u]
        qi = 0
        while qi < len(frontier) and len(reach) < cap:
            x = frontier[qi]
            qi += 1
            for w in out_adj[x]:
                if w not in seen:
                    seen.add(w)
                    reach.append(w)
                    frontier.append(w)
        if reach:
            positives.append((u, reach[rng.randrange(len(reach))]))
    return positives
