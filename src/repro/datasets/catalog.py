"""Named synthetic stand-ins for every dataset in the paper's Table 1.

The paper evaluates 14 "small" and 13 "large" real graphs.  The raw
files are not available offline, so each entry here pairs the paper's
dataset (name, |V|, |E| of its DAG) with a generator stand-in chosen to
match the dataset's *structural family* — the property that drives index
behaviour — at a scale pure Python can build quickly:

========  ===========================  ===============================
family    paper datasets               generator
========  ===========================  ===============================
metabolic agrocyc anthra ecoo hpycyc   ``sparse_dag`` (m ≈ n, shallow,
          human kegg mtbrv vchocyc      forest-like with shortcuts)
          amaze xmark nasa reactome
citation  arxiv citeseer citeseerx     ``citation_dag`` (preferential
          cit-Patents                   attachment, deep, heavy tail)
web/soc   email p2p lj web wiki        ``powerlaw_digraph`` (cyclic;
                                        condensed to a bow-tie DAG)
RDF/onto  go_uniprot uniprotenc_*      ``ontology_dag`` (child->parent
          mapped_*                      taxonomy; tiny ancestor sets)
                                        / ``chain_forest_dag``
========  ===========================  ===============================

Scaling: the small suite is ~1/8 of paper scale and the large suite is
~1/100 to ~1/1000, but the *ordering* of sizes inside each suite follows
the paper, so "harder" datasets stay comparatively harder.  The same
structural drivers (density, depth, degree skew) are preserved, which is
what the paper's qualitative conclusions rest on.  See DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

from ..graph.digraph import DiGraph
from ..graph.scc import condense
from ..graph.topo import is_dag
from ..graph import generators as gen

__all__ = ["Dataset", "DATASETS", "SMALL_SUITE", "LARGE_SUITE", "load", "dataset_names"]


@dataclass(frozen=True)
class Dataset:
    """A catalog entry: a paper dataset and its synthetic stand-in."""

    name: str
    suite: str  # "small" | "large"
    paper_n: int
    paper_m: int
    family: str
    builder: Callable[[], DiGraph] = field(compare=False)
    cyclic: bool = False  # stand-in generator may emit cycles; condense on load

    def build(self) -> DiGraph:
        """Instantiate the stand-in DAG (condensing cyclic generators)."""
        g = self.builder()
        if self.cyclic:
            g = condense(g).dag
        if not is_dag(g):
            raise AssertionError(f"stand-in for {self.name} is not a DAG")
        return g


def _d(name, suite, paper_n, paper_m, family, builder, cyclic=False) -> Dataset:
    return Dataset(
        name=name,
        suite=suite,
        paper_n=paper_n,
        paper_m=paper_m,
        family=family,
        builder=builder,
        cyclic=cyclic,
    )


DATASETS: Dict[str, Dataset] = {
    d.name: d
    for d in [
        # ---------------- small suite (paper Table 1, left) ----------------
        _d("agrocyc", "small", 12_684, 13_408, "metabolic",
           lambda: gen.sparse_dag(1600, extra_edge_ratio=0.06, seed=101)),
        _d("amaze", "small", 3_710, 3_600, "metabolic",
           lambda: gen.sparse_dag(930, extra_edge_ratio=0.02, seed=102)),
        _d("anthra", "small", 12_499, 13_104, "metabolic",
           lambda: gen.sparse_dag(1560, extra_edge_ratio=0.05, seed=103)),
        _d("arxiv", "small", 21_608, 116_805, "citation",
           lambda: gen.citation_dag(2200, out_per_vertex=5.4, seed=104)),
        _d("ecoo", "small", 12_620, 13_350, "metabolic",
           lambda: gen.sparse_dag(1580, extra_edge_ratio=0.06, seed=105)),
        _d("hpycyc", "small", 4_771, 5_859, "metabolic",
           lambda: gen.sparse_dag(1190, extra_edge_ratio=0.23, seed=106)),
        _d("human", "small", 38_811, 39_576, "metabolic",
           lambda: gen.sparse_dag(3900, extra_edge_ratio=0.02, seed=107)),
        _d("kegg", "small", 3_617, 3_908, "metabolic",
           lambda: gen.sparse_dag(920, extra_edge_ratio=0.08, seed=108)),
        _d("mtbrv", "small", 9_602, 10_245, "metabolic",
           lambda: gen.sparse_dag(1400, extra_edge_ratio=0.07, seed=109)),
        _d("nasa", "small", 5_605, 7_735, "metabolic",
           lambda: gen.sparse_dag(1300, extra_edge_ratio=0.38, seed=110)),
        _d("p2p", "small", 48_438, 55_349, "web",
           lambda: gen.random_dag(4100, 4700, seed=111)),
        _d("reactome", "small", 901, 846, "metabolic",
           lambda: gen.sparse_dag(901, extra_edge_ratio=0.0, seed=112)),
        _d("vchocyc", "small", 9_491, 10_143, "metabolic",
           lambda: gen.sparse_dag(1350, extra_edge_ratio=0.07, seed=113)),
        _d("xmark", "small", 6_080, 7_028, "metabolic",
           lambda: gen.sparse_dag(1250, extra_edge_ratio=0.16, seed=114)),
        # ---------------- large suite (paper Table 1, right) ---------------
        _d("citeseer", "large", 693_947, 312_282, "citation",
           lambda: gen.citation_dag(7000, out_per_vertex=0.5, min_cites=0, seed=201)),
        _d("citeseerx", "large", 6_540_399, 15_011_259, "citation",
           lambda: gen.citation_dag(16000, out_per_vertex=2.3, min_cites=0, seed=202)),
        _d("cit-Patents", "large", 3_774_768, 16_518_947, "citation",
           lambda: gen.citation_dag(12000, out_per_vertex=4.4, min_cites=0, seed=203)),
        _d("email", "large", 231_000, 223_004, "web",
           lambda: gen.powerlaw_digraph(10500, 10200, seed=204), cyclic=True),
        _d("go_uniprot", "large", 6_967_956, 34_770_235, "ontology",
           lambda: gen.ontology_dag(15000, extra_parent_ratio=1.5, roots=40, seed=205)),
        _d("lj", "large", 971_232, 1_024_140, "web",
           lambda: gen.powerlaw_digraph(13000, 13800, seed=206), cyclic=True),
        _d("mapped_100K", "large", 2_658_702, 2_660_628, "rdf",
           lambda: gen.chain_forest_dag(9000, chain_len=60, merge_ratio=0.001, seed=207)),
        _d("mapped_1M", "large", 9_387_448, 9_440_404, "rdf",
           lambda: gen.chain_forest_dag(20000, chain_len=80, merge_ratio=0.002, seed=208)),
        _d("uniprotenc_100m", "large", 16_087_295, 16_087_293, "ontology",
           lambda: gen.ontology_dag(22000, extra_parent_ratio=0.0, roots=2, seed=209)),
        _d("uniprotenc_150m", "large", 25_037_600, 25_037_598, "ontology",
           lambda: gen.ontology_dag(26000, extra_parent_ratio=0.0, roots=2, seed=210)),
        _d("uniprotenc_22m", "large", 1_595_444, 1_595_442, "ontology",
           lambda: gen.ontology_dag(12000, extra_parent_ratio=0.0, roots=2, seed=211)),
        _d("web", "large", 371_764, 517_805, "web",
           lambda: gen.powerlaw_digraph(12000, 16700, seed=212), cyclic=True),
        _d("wiki", "large", 2_281_879, 2_311_570, "web",
           lambda: gen.powerlaw_digraph(18000, 18300, seed=213), cyclic=True),
    ]
}

SMALL_SUITE: List[str] = [d.name for d in DATASETS.values() if d.suite == "small"]
LARGE_SUITE: List[str] = [d.name for d in DATASETS.values() if d.suite == "large"]


@lru_cache(maxsize=None)
def load(name: str) -> DiGraph:
    """Build (and memoise) the stand-in DAG for a named dataset."""
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    return spec.build()


def dataset_names(suite: Optional[str] = None) -> List[str]:
    """All dataset names, optionally filtered by suite."""
    if suite is None:
        return list(DATASETS)
    return [d.name for d in DATASETS.values() if d.suite == suite]


def table1_rows() -> List[Tuple[str, str, int, int, int, int]]:
    """Rows for the Table-1 reproduction: paper sizes vs stand-in sizes."""
    rows = []
    for name, spec in DATASETS.items():
        g = load(name)
        rows.append((name, spec.suite, spec.paper_n, spec.paper_m, g.n, g.m))
    return rows
