"""JournaledPrimary: a live update path whose acks survive kill -9.

This is the durable assembly of the pieces this package provides::

    data_dir/
      base.edges            the graph the first build compiled (n m header)
      manifest.json         epoch -> artifact binding (atomic commits)
      epochs/epoch-NNNNNN.rpro   published artifact files
      journal/journal-NNNNNNNN.seg   the write-ahead update journal

Update protocol (``apply_update``), in the only order that makes
"ack => durable" true:

1. dedupe — a re-sent ``(client, seq)`` returns its original summary,
2. validate the whole edge stream (a rejected stream journals nothing
   and applies nothing: all-or-nothing holds at the batch level),
3. **journal append** — blocks until durable per the sync policy;
   this is the ack barrier,
4. apply through the :class:`~repro.live.IncrementalCompiler` and
   publish the next epoch,
5. checkpoint (every ``checkpoint_every`` updates): commit the
   manifest binding the new epoch to its artifact + watermark LSN +
   dedupe snapshot, then compact journal segments and prune stale
   artifact files — both only *after* the commit, so a crash at any
   byte of this sequence recovers.

Recovery (``__init__`` on a dir with a manifest):

1. reopen the journal (torn tail truncated — a torn record is one
   whose append never returned, so nothing acked is lost),
2. rebuild the base graph from ``base.edges`` plus every journal
   record ``lsn <= watermark`` (those ops are already *in* the
   manifest's artifact; the graph needs them because artifacts carry
   labels, not edges).  Removals fold in physically — recovery's
   graph is the *compacted* view, which answers identically to the
   tombstoned artifact it resumes serving from,
3. publish the manifest's artifact at its recorded epoch — serving
   resumes immediately, before any recompilation,
4. replay records ``lsn > watermark`` into the compiler, compile once,
   publish epoch N+1, checkpoint.

Crash-window audit: a record journaled but not yet applied (crash
between 3 and 4) is replayed — the client never got its ack, but
re-sending the same ``(client, seq)`` dedupes against the replayed
window, so the retry acks without double-applying.  A torn tail is a
batch that was never acked and is dropped whole.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.digraph import DiGraph
from ..graph.io import read_edge_list, write_edge_list
from ..live.compiler import IncrementalCompiler, normalize_ops
from ..live.index import LiveIndex
from ..live.store import VersionedArtifactStore
from .dedupe import DedupeWindow
from .journal import UpdateJournal, _fsync_path
from .manifest import EpochManifest

__all__ = ["JournaledPrimary"]

Edge = Tuple[int, int]

BASE_EDGES_NAME = "base.edges"
EPOCHS_DIR_NAME = "epochs"
JOURNAL_DIR_NAME = "journal"


class JournaledPrimary:
    """A :class:`~repro.live.LiveIndex` wrapped in WAL + manifest.

    Construct over an empty ``data_dir`` with a ``graph`` (or a
    prebuilt ``compiler``) to initialise; construct over a dir holding
    a manifest to **recover** — the graph argument is then ignored,
    the durable state wins.  ``recovery_info`` reports what happened.

    ``checkpoint_every=1`` (default) commits the manifest after every
    published epoch: restart replays nothing and recovery time is
    journal-independent.  Larger values trade restart replay work for
    fewer manifest fsyncs; ``checkpoint_every=0`` never checkpoints
    automatically (call :meth:`checkpoint` yourself — mostly a test
    and benchmark knob for growing long replay tails on purpose).
    """

    def __init__(
        self,
        data_dir: str,
        graph: Optional[DiGraph] = None,
        *,
        compiler: Optional[IncrementalCompiler] = None,
        sync: str = "interval",
        sync_interval_s: float = 0.005,
        segment_bytes: int = 8 * 1024 * 1024,
        checkpoint_every: int = 1,
        order: str = "degree_product",
        dedupe_clients: int = 4096,
        keep_artifacts: int = 2,
        dirt_threshold: float = 0.25,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if keep_artifacts < 2:
            raise ValueError(
                f"keep_artifacts must be >= 2 (current + draining), "
                f"got {keep_artifacts}"
            )
        self.data_dir = str(data_dir)
        self._sync = sync
        self._checkpoint_every = checkpoint_every
        self._keep_artifacts = keep_artifacts
        self._epochs_dir = os.path.join(self.data_dir, EPOCHS_DIR_NAME)
        self._base_path = os.path.join(self.data_dir, BASE_EDGES_NAME)
        os.makedirs(self._epochs_dir, exist_ok=True)
        self._manifest = EpochManifest(self.data_dir)
        self._lock = threading.Lock()
        self._closed = False
        self._updates = 0
        self._deduped = 0
        self._update_hist = None
        self._checkpoints = 0
        self._since_checkpoint = 0
        self.recovery_info: Dict[str, object] = {"recovered": False}

        doc = self._manifest.load()
        journal_dir = os.path.join(self.data_dir, JOURNAL_DIR_NAME)
        if doc is None:
            if compiler is None:
                if graph is None:
                    raise ValueError(
                        f"data dir {self.data_dir!r} holds no manifest: "
                        "initialising a fresh primary needs graph= (or "
                        "compiler=)"
                    )
                compiler = IncrementalCompiler(graph, order=order)
            # The artifact holds labels, not edges; recovery needs the
            # graph itself, so persist it once, durably, before the
            # journal can accept anything that builds on it.
            write_edge_list(compiler.original, self._base_path)
            _fsync_path(self._base_path)
            _fsync_path(self.data_dir)
            self._journal = UpdateJournal(
                journal_dir,
                sync=sync,
                sync_interval_s=sync_interval_s,
                segment_bytes=segment_bytes,
            )
            self._dedupe = DedupeWindow(max_clients=dedupe_clients)
            try:
                self.live = LiveIndex(
                    compiler,
                    artifact_dir=self._epochs_dir,
                    own_files=False,
                    dirt_threshold=dirt_threshold,
                )
                self._checkpoint_locked(watermark=0)
            except BaseException:
                self._journal.close()
                raise
        else:
            t0 = time.perf_counter()
            self._journal = UpdateJournal(
                journal_dir,
                sync=sync,
                sync_interval_s=sync_interval_s,
                segment_bytes=segment_bytes,
            )
            epoch = int(doc["epoch"])
            watermark = int(doc["watermark"])
            artifact = os.path.join(self._epochs_dir, str(doc["artifact"]))
            if not os.path.exists(artifact):
                raise RuntimeError(
                    f"manifest names artifact {artifact!r} but the file is "
                    "gone: the data dir was tampered with below the "
                    "manifest's commit protocol"
                )
            # read_edge_list freezes; the replay below mutates.
            base = read_edge_list(self._base_path).copy()
            # Records at or below the watermark are already inside the
            # manifest's artifact; fold them into the graph so the
            # compiler's view matches what the artifact serves.
            applied_below = 0
            replayed: List = []
            for rec in self._journal.replay():
                if rec.lsn <= watermark:
                    for op, u, v in rec.ops:
                        if op == "-":
                            base.remove_edge(u, v)
                        else:
                            base.add_edge(u, v)
                    applied_below += 1
                else:
                    replayed.append(rec)
            compiler = IncrementalCompiler(base, order=order)
            self._dedupe = DedupeWindow.from_snapshot(
                doc.get("dedupe"), max_clients=dedupe_clients
            )
            # Serving resumes from the recovered artifact immediately —
            # the store holds epoch N before any replay compile runs.
            store = VersionedArtifactStore()
            try:
                store.publish(artifact, owns_file=False, epoch=epoch)
                last = watermark
                for rec in replayed:
                    compiler.apply_ops(list(rec.ops))
                    if rec.client is not None:
                        self._dedupe.record(
                            rec.client,
                            rec.seq,
                            {
                                "lsn": rec.lsn,
                                "replayed": True,
                                "changed": None,
                                "published": True,
                            },
                        )
                    last = rec.lsn
                # One compile covers the whole replayed tail: the
                # LiveIndex constructor publishes epoch N+1 from the
                # compiler's (replayed) state.
                self.live = LiveIndex(
                    compiler,
                    artifact_dir=self._epochs_dir,
                    store=store,
                    own_files=False,
                    seq_start=epoch,
                    dirt_threshold=dirt_threshold,
                )
            except BaseException:
                store.close()
                self._journal.close()
                raise
            self._checkpoint_locked(watermark=last)
            self.recovery_info = {
                "recovered": True,
                "manifest_epoch": epoch,
                "watermark": watermark,
                "records_in_artifact": applied_below,
                "records_replayed": len(replayed),
                "journal_truncated_bytes": self._journal.recovery[
                    "truncated_bytes"
                ],
                "recovery_s": time.perf_counter() - t0,
            }

    # ------------------------------------------------------------------
    @property
    def store(self) -> VersionedArtifactStore:
        return self.live.store

    @property
    def current_epoch(self) -> Optional[int]:
        return self.live.current_epoch

    @property
    def journal(self) -> UpdateJournal:
        return self._journal

    @property
    def dedupe(self) -> DedupeWindow:
        return self._dedupe

    # -- telemetry -----------------------------------------------------
    def bind_metrics(self, registry) -> None:
        """Instrument the durable update path end to end.

        One histogram covers the whole ``apply_update`` (validate +
        journal + compile + publish + checkpoint); the journal and the
        live index each bind their own finer-grained instruments so a
        slow update can be attributed to fsync vs. recompilation.
        """
        self._update_hist = registry.histogram(
            "repro_update_apply_seconds",
            "wall time of one durable apply_update (ack latency)",
        )
        self._journal.bind_metrics(registry)
        bind_live = getattr(self.live, "bind_metrics", None)
        if bind_live is not None:
            bind_live(registry)

    # -- the durable update path ---------------------------------------
    def apply_update(
        self,
        edges: Sequence[Edge],
        *,
        client: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> Dict[str, object]:
        """Durably apply one update batch; the returned summary is the ack.

        ``edges`` is an op stream: ``(u, v)`` pairs insert, and
        ``('+', u, v)`` / ``('-', u, v)`` triples insert or remove.
        Mixed batches journal as churn records (kind 2).

        Ordering is the contract: the summary is returned only after
        the batch's journal record is durable under the sync policy,
        so an acked update survives SIGKILL.  A duplicate
        ``(client, seq)`` returns its original summary with
        ``deduped: true``.  A stream with any invalid op raises
        before journaling — nothing of it is applied (all-or-nothing).
        """
        ops = normalize_ops(edges)
        sequenced = client is not None and seq is not None
        hist = self._update_hist
        t0 = time.perf_counter_ns() if hist is not None else 0
        with self._lock:
            if self._closed:
                raise RuntimeError("journaled primary is closed")
            if sequenced:
                cached = self._dedupe.check(client, int(seq))
                if cached is not None:
                    self._deduped += 1
                    return dict(cached, deduped=True)
            for _, u, v in ops:
                self.live.compiler.validate_edge(u, v)
            lsn = self._journal.append(
                ops, client=client if sequenced else None,
                seq=int(seq) if sequenced else None,
            )
            summary = self.live.apply_ops(ops)
            summary["lsn"] = lsn
            summary["sync"] = self._sync
            summary["deduped"] = False
            if sequenced:
                summary["client"] = client
                summary["seq"] = int(seq)
                self._dedupe.record(client, int(seq), summary)
            self._updates += 1
            self._since_checkpoint += 1
            if (
                self._checkpoint_every
                and self._since_checkpoint >= self._checkpoint_every
            ):
                self._checkpoint_locked(watermark=lsn)
            if hist is not None:
                hist.observe_ns(time.perf_counter_ns() - t0)
            return dict(summary)

    # -- checkpointing -------------------------------------------------
    def checkpoint(self) -> Dict[str, object]:
        """Commit the manifest at the journal's current tip explicitly."""
        with self._lock:
            if self._closed:
                raise RuntimeError("journaled primary is closed")
            return self._checkpoint_locked(watermark=self._journal.last_lsn)

    def _checkpoint_locked(self, watermark: int) -> Dict[str, object]:
        current_path = self.store.current_path
        doc = {
            "epoch": self.store.current_epoch,
            "artifact": os.path.basename(current_path),
            "watermark": int(watermark),
            "dedupe": self._dedupe.snapshot(),
            "sync": self._sync,
        }
        # Compaction below is unlink-only, and the base-graph rebuild
        # on recovery folds journal records <= watermark on top of
        # base.edges — so before a checkpoint may delete any of those
        # records, the base snapshot must absorb them.  Rewriting is
        # atomic (tmp + rename) and happens *before* the commit: a
        # crash in between leaves base.edges ahead of the manifest's
        # watermark, which recovery tolerates (re-replaying an op onto
        # a graph that already reflects it is a no-op per edge).
        if self._journal.compactable(watermark):
            self._rewrite_base_locked()
        self._manifest.commit(doc)
        # Only after the commit is anything below it garbage: journal
        # records <= watermark are folded into the manifest's artifact,
        # and artifact files older than the retention window can no
        # longer be named by any manifest a crash could resurrect.
        self._journal.compact(watermark)
        self._prune_artifacts(keep_from=os.path.basename(current_path))
        self._checkpoints += 1
        self._since_checkpoint = 0
        return doc

    def _rewrite_base_locked(self) -> None:
        """Atomically replace ``base.edges`` with the current live graph."""
        tmp = self._base_path + ".tmp"
        write_edge_list(self.live.compiler.original, tmp)
        _fsync_path(tmp)
        os.replace(tmp, self._base_path)
        _fsync_path(self.data_dir)

    def _prune_artifacts(self, keep_from: str) -> None:
        """Unlink epoch files older than the retention window.

        ``own_files=False`` means nobody else deletes them.  The newest
        ``keep_artifacts`` files always survive: the current epoch plus
        recent predecessors that a worker holding an old lease may not
        have mapped yet (the store's lease pins the *path*, not the
        inode, until the worker opens it).
        """
        try:
            names = sorted(
                n for n in os.listdir(self._epochs_dir) if n.endswith(".rpro")
            )
        except OSError:  # pragma: no cover - dir vanished under us
            return
        if keep_from in names:
            names = names[: names.index(keep_from)]
        # ``names`` is now strictly older than the current epoch's file;
        # keep the newest (keep_artifacts - 1) of those.
        for name in names[: -(self._keep_artifacts - 1)]:
            try:
                os.unlink(os.path.join(self._epochs_dir, name))
            except OSError:  # pragma: no cover - already gone
                pass

    # -- introspection / lifecycle -------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            doc = {
                "sync": self._sync,
                "updates": self._updates,
                "deduped": self._deduped,
                "checkpoints": self._checkpoints,
                "since_checkpoint": self._since_checkpoint,
                "dedupe_clients": len(self._dedupe),
                "recovery": dict(self.recovery_info),
            }
        doc["journal"] = self._journal.stats()
        doc["live"] = self.live.stats()
        return doc

    def close(self) -> None:
        """Checkpoint, then close the journal and the live index."""
        with self._lock:
            if self._closed:
                return
            try:
                self._checkpoint_locked(watermark=self._journal.last_lsn)
            except Exception:  # pragma: no cover - close must finish
                pass
            self._closed = True
        self._journal.close()
        self.live.close()

    def __enter__(self) -> "JournaledPrimary":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"JournaledPrimary({self.data_dir!r}, epoch={self.current_epoch}, "
            f"sync={self._sync}, updates={self._updates})"
        )
