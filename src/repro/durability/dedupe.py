"""Per-client update idempotency window.

The wire contract (``OP_UPDATE_SEQ``): a client stamps each update
batch with its client id and a monotonically increasing sequence
number.  A re-send of an already-applied ``(client, seq)`` — the
reconnect-after-lost-ack case — must return the original summary with
``deduped: true`` instead of applying the edges twice.

The window keeps the *latest* sequence per client (plus its cached
reply), which is exactly enough for a client that keeps one update in
flight — the only shape :class:`~repro.server.client.ReachClient`
produces.  A sequence *below* the recorded one is a protocol violation
(the client went backwards) and is rejected loudly rather than guessed
at.  Clients are capped LRU-style so an open server cannot be grown
without bound by throwaway client ids.

A journaled primary persists the window (snapshot in the manifest,
per-record ids in the journal), so dedupe survives the same crashes
the data does; a plain live server holds it in memory only.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["DedupeWindow", "StaleSequenceError"]


class StaleSequenceError(ValueError):
    """A client re-used a sequence number below its latest one."""


class DedupeWindow:
    """Latest ``(seq, cached summary)`` per client, LRU-capped."""

    def __init__(self, max_clients: int = 4096) -> None:
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.max_clients = max_clients
        self._entries: "OrderedDict[str, Tuple[int, dict]]" = OrderedDict()

    def check(self, client: str, seq: int) -> Optional[dict]:
        """The cached summary for a duplicate, None for a fresh seq.

        Raises :class:`StaleSequenceError` when ``seq`` is below the
        client's recorded latest — re-applying it could double-apply
        and re-acking it would ack the wrong batch.
        """
        entry = self._entries.get(client)
        if entry is None:
            return None
        last_seq, summary = entry
        if seq == last_seq:
            self._entries.move_to_end(client)
            return summary
        if seq < last_seq:
            raise StaleSequenceError(
                f"client {client!r} sent seq {seq} after {last_seq}: "
                "sequence numbers must not go backwards"
            )
        return None

    def record(self, client: str, seq: int, summary: dict) -> None:
        self._entries[client] = (int(seq), dict(summary))
        self._entries.move_to_end(client)
        while len(self._entries) > self.max_clients:
            self._entries.popitem(last=False)

    # -- persistence ---------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state for the manifest."""
        return {
            client: {"seq": seq, "summary": summary}
            for client, (seq, summary) in self._entries.items()
        }

    @classmethod
    def from_snapshot(
        cls, doc: Optional[Dict[str, object]], max_clients: int = 4096
    ) -> "DedupeWindow":
        window = cls(max_clients=max_clients)
        for client, entry in (doc or {}).items():
            window.record(client, int(entry["seq"]), dict(entry["summary"]))
        return window

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"DedupeWindow(clients={len(self._entries)}/{self.max_clients})"
