"""The write-ahead update journal: what makes an ack mean something.

A live primary that acknowledges ``OP_UPDATE`` from memory is lying
the moment anyone believes it — a SIGKILL loses every update since the
original build.  :class:`UpdateJournal` is the durability barrier the
ack waits behind: each update batch is appended as one checksummed
record, and :meth:`append` returns only once the record is durable
under the configured fsync policy.

On-disk layout (``<dir>/journal-NNNNNNNN.seg``, rotated by size)::

    segment  := header record*
    header   := magic "RPROWAL1" (8 bytes) | base_lsn u64 LE
    record   := payload_len u32 LE | crc32(payload) u32 LE | payload
    payload  := kind u8 | lsn u64 | client_len u16 | client utf-8
              | client_seq u64 | edge_count u32 | edge_count x (u32, u32)
              | [removal bitmap, kind 2 only]

Record kinds: ``1`` is an insert-only batch (the original format,
byte-identical to pre-churn journals); ``2`` is a mixed churn batch —
the same payload plus a trailing LSB-first removal bitmap of
``ceil(edge_count / 8)`` bytes (bit *i* set = edge *i* is a removal),
mirroring the ``OP_UPDATE`` wire encoding.  Old journals replay
unchanged; a journal holding kind-2 records simply refuses to open
under a build that predates removals (unknown-kind error) instead of
silently dropping deletes.

LSNs (log sequence numbers) are assigned per record, start at 1, and
are strictly sequential across segments — each segment header carries
the LSN its first record will have, which is what lets replay order
segments and :meth:`compact` delete whole files below a watermark
without reading them.

Fsync policies (see the README's durability matrix for the honest
version):

* ``always``   — fsync per append.  Survives power loss.
* ``interval`` — group commit: appends block until a background
  syncer's next fsync covers their bytes (many appends share one
  fsync).  Bounded loss on power failure, none on SIGKILL.
* ``off``      — write + flush only.  Survives SIGKILL (the OS page
  cache outlives the process) but not power loss.

Torn-tail rule, applied when a journal directory is reopened: a record
in the **last** segment that is incomplete or fails its CRC is the
signature of a crash mid-append — a record whose ack never happened —
and everything from its offset on is truncated away.  The same damage
in any *earlier* segment means acked records are gone, which is never
silently repairable: :class:`JournalError`.
"""

from __future__ import annotations

import os
import re
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "UpdateJournal",
    "JournalRecord",
    "JournalError",
    "SYNC_POLICIES",
    "SEGMENT_MAGIC",
]

Edge = Tuple[int, int]

SYNC_POLICIES = ("always", "interval", "off")

SEGMENT_MAGIC = b"RPROWAL1"
_SEG_HEADER = struct.Struct("<8sQ")   # magic, base_lsn
_REC_HEADER = struct.Struct("<II")    # payload_len, crc32
_REC_PREFIX = struct.Struct("<BQ")    # kind, lsn
_CLIENT_LEN = struct.Struct("<H")
_SEQ = struct.Struct("<Q")
_COUNT = struct.Struct("<I")
_PAIR = struct.Struct("<II")

_KIND_UPDATE = 1
_KIND_CHURN = 2

#: Hard cap on one record's payload — mirrors the wire frame cap, so a
#: garbage length field fails fast instead of allocating gigabytes.
MAX_RECORD = 64 * 1024 * 1024

_SEGMENT_RE = re.compile(r"^journal-(\d{8})\.seg$")


class JournalError(RuntimeError):
    """Unrecoverable journal damage (mid-stream corruption, bad use)."""


@dataclass(frozen=True)
class JournalRecord:
    """One replayable update batch, exactly as it was acked.

    ``edges`` are the batch's ``(u, v)`` pairs in stream order;
    ``removed`` marks which of them are removals (empty = insert-only,
    the shape of every pre-churn record).  :attr:`ops` is the canonical
    ``('+'|'-', u, v)`` view the apply/replay paths consume.
    """

    lsn: int
    edges: Tuple[Edge, ...]
    client: Optional[str] = None
    seq: Optional[int] = None
    removed: Tuple[bool, ...] = ()

    @property
    def ops(self) -> Tuple[Tuple[str, int, int], ...]:
        """The batch as canonical ``('+'|'-', u, v)`` triples."""
        if not self.removed:
            return tuple(("+", u, v) for u, v in self.edges)
        return tuple(
            ("-" if r else "+", u, v)
            for (u, v), r in zip(self.edges, self.removed)
        )


def _fsync_path(path: str) -> None:
    """fsync a file (or directory) by path — directory entries need it
    too, or a crash can lose the *name* of a perfectly synced file."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _normalize_items(items: Sequence) -> Tuple[List[Edge], List[bool]]:
    """Split ``(u, v)`` pairs / ``('+'|'-', u, v)`` triples into
    ``(pairs, removal_flags)``."""
    pairs: List[Edge] = []
    flags: List[bool] = []
    for item in items:
        fields = tuple(item)
        if len(fields) == 2:
            pairs.append((fields[0], fields[1]))
            flags.append(False)
        elif len(fields) == 3:
            op, u, v = fields
            if op == "+":
                flags.append(False)
            elif op == "-":
                flags.append(True)
            else:
                raise JournalError(f"unknown update op {op!r}")
            pairs.append((u, v))
        else:
            raise JournalError(f"malformed update item {item!r}")
    return pairs, flags


def _encode_payload(
    lsn: int, edges: Sequence, client: Optional[str], seq: Optional[int]
) -> bytes:
    cb = (client or "").encode("utf-8")
    if len(cb) > 0xFFFF:
        raise JournalError(f"client id of {len(cb)} bytes exceeds u16 cap")
    pairs, flags = _normalize_items(edges)
    churn = any(flags)
    out = bytearray(
        _REC_PREFIX.pack(_KIND_CHURN if churn else _KIND_UPDATE, lsn)
    )
    out += _CLIENT_LEN.pack(len(cb))
    out += cb
    out += _SEQ.pack(0 if seq is None else int(seq))
    out += _COUNT.pack(len(pairs))
    pack = _PAIR.pack
    try:
        for u, v in pairs:
            out += pack(u, v)
    except struct.error as exc:
        raise JournalError(f"vertex id out of u32 range: {exc}") from None
    if churn:
        bitmap = bytearray((len(flags) + 7) // 8)
        for i, removal in enumerate(flags):
            if removal:
                bitmap[i >> 3] |= 1 << (i & 7)
        out += bitmap
    return bytes(out)


def _decode_payload(payload: bytes) -> JournalRecord:
    """Parse one record payload; raises ``ValueError`` on any mismatch
    (callers decide whether that means *torn* or *corrupt*)."""
    view = memoryview(payload)
    kind, lsn = _REC_PREFIX.unpack_from(view, 0)
    if kind not in (_KIND_UPDATE, _KIND_CHURN):
        raise ValueError(f"unknown record kind {kind}")
    off = _REC_PREFIX.size
    (client_len,) = _CLIENT_LEN.unpack_from(view, off)
    off += _CLIENT_LEN.size
    client = bytes(view[off:off + client_len]).decode("utf-8") or None
    off += client_len
    (seq,) = _SEQ.unpack_from(view, off)
    off += _SEQ.size
    (count,) = _COUNT.unpack_from(view, off)
    off += _COUNT.size
    bitmap_len = (count + 7) // 8 if kind == _KIND_CHURN else 0
    if len(view) - off != count * _PAIR.size + bitmap_len:
        raise ValueError(
            f"record announces {count} edges but carries {len(view) - off} bytes"
        )
    pairs_end = off + count * _PAIR.size
    edges = tuple(_PAIR.iter_unpack(view[off:pairs_end]))
    removed: Tuple[bool, ...] = ()
    if kind == _KIND_CHURN:
        bitmap = view[pairs_end:]
        removed = tuple(
            bool(bitmap[i >> 3] & (1 << (i & 7))) for i in range(count)
        )
        if not any(removed):
            raise ValueError("churn record carries no removal")
    return JournalRecord(
        lsn=lsn,
        edges=edges,
        client=client,
        seq=seq if client is not None else None,
        removed=removed,
    )


def _scan_segment(path: str) -> Tuple[Optional[int], List[JournalRecord], int, str]:
    """Scan one segment file.

    Returns ``(base_lsn, records, valid_end, reason)`` where
    ``valid_end`` is the byte offset after the last intact record and
    ``reason`` is non-empty when the scan stopped before EOF (the torn
    suffix starts at ``valid_end``).  ``base_lsn`` is None when even
    the segment header is damaged (``valid_end`` is then 0).
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < _SEG_HEADER.size:
        return None, [], 0, "incomplete segment header"
    magic, base_lsn = _SEG_HEADER.unpack_from(data, 0)
    if magic != SEGMENT_MAGIC:
        return None, [], 0, f"bad segment magic {magic!r}"
    records: List[JournalRecord] = []
    off = _SEG_HEADER.size
    while off < len(data):
        if len(data) - off < _REC_HEADER.size:
            return base_lsn, records, off, "incomplete record header"
        length, crc = _REC_HEADER.unpack_from(data, off)
        if length > MAX_RECORD:
            return base_lsn, records, off, f"record length {length} exceeds cap"
        body_start = off + _REC_HEADER.size
        if len(data) - body_start < length:
            return base_lsn, records, off, "incomplete record body"
        payload = data[body_start:body_start + length]
        if zlib.crc32(payload) != crc:
            return base_lsn, records, off, "record CRC mismatch"
        try:
            records.append(_decode_payload(payload))
        except (ValueError, struct.error) as exc:
            return base_lsn, records, off, f"undecodable record: {exc}"
        off = body_start + length
    return base_lsn, records, off, ""


class _Segment:
    __slots__ = ("index", "path", "base_lsn")

    def __init__(self, index: int, path: str, base_lsn: int) -> None:
        self.index = index
        self.path = path
        self.base_lsn = base_lsn


class UpdateJournal:
    """Checksummed, segment-rotated write-ahead log of update batches.

    ``append`` is the durability barrier: it returns the record's LSN
    only once the record is durable under ``sync`` (see the module
    docstring for the policy matrix).  Reopening a directory replays
    the torn-tail rule — a partial record at the very end (the crash
    signature) is truncated away and reported in :attr:`recovery`;
    damage anywhere else raises :class:`JournalError`.

    Thread safety: appends serialise on an internal lock; group-commit
    waiting happens outside it, so concurrent appenders share fsyncs
    instead of queueing behind them.
    """

    def __init__(
        self,
        directory: str,
        *,
        sync: str = "interval",
        sync_interval_s: float = 0.005,
        segment_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        if sync not in SYNC_POLICIES:
            raise ValueError(f"sync must be one of {SYNC_POLICIES}, got {sync!r}")
        if segment_bytes < 1024:
            raise ValueError(f"segment_bytes must be >= 1024, got {segment_bytes}")
        self.directory = str(directory)
        self.sync = sync
        self.sync_interval_s = sync_interval_s
        self.segment_bytes = segment_bytes
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._closed = False
        self._appended = 0
        self._fsyncs = 0
        self._written = 0   # bytes appended under the interval policy
        self._synced = 0    # bytes covered by a completed fsync
        self._wake = threading.Event()
        self._syncer: Optional[threading.Thread] = None
        self._segments: List[_Segment] = []
        self._file = None
        self._append_hist = None
        self._fsync_hist = None
        self.recovery: Dict[str, object] = {
            "segments": 0,
            "records": 0,
            "truncated_bytes": 0,
            "truncated_reason": "",
        }
        self._open_or_recover()
        if self.sync == "interval":
            self._syncer = threading.Thread(
                target=self._sync_loop, name="repro-journal-sync", daemon=True
            )
            self._syncer.start()

    # -- recovery ------------------------------------------------------
    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, f"journal-{index:08d}.seg")

    def _open_or_recover(self) -> None:
        found = []
        for name in os.listdir(self.directory):
            match = _SEGMENT_RE.match(name)
            if match:
                found.append((int(match.group(1)), os.path.join(self.directory, name)))
        found.sort()
        if not found:
            self._next_lsn = 1
            self._create_segment(1, base_lsn=1)
            return
        next_lsn: Optional[int] = None
        total_records = 0
        for pos, (index, path) in enumerate(found):
            last = pos == len(found) - 1
            base_lsn, records, valid_end, reason = _scan_segment(path)
            if reason and not last:
                raise JournalError(
                    f"journal segment {path} is damaged mid-stream "
                    f"({reason}): acked records may be lost; refusing "
                    "to repair silently"
                )
            if base_lsn is None:
                # Last segment, header never made it to disk whole: the
                # file carries no acked record.  Drop it and continue
                # appending to the previous segment.
                self.recovery["truncated_bytes"] = os.path.getsize(path)
                self.recovery["truncated_reason"] = reason
                os.unlink(path)
                _fsync_path(self.directory)
                break
            if next_lsn is not None and base_lsn != next_lsn:
                raise JournalError(
                    f"journal segment {path} starts at LSN {base_lsn}, "
                    f"expected {next_lsn}: a segment is missing or reordered"
                )
            for i, rec in enumerate(records):
                if rec.lsn != base_lsn + i:
                    raise JournalError(
                        f"non-sequential LSN {rec.lsn} at position {i} of "
                        f"{path} (expected {base_lsn + i})"
                    )
            if reason:  # torn tail of the last segment: truncate it away
                torn = os.path.getsize(path) - valid_end
                with open(path, "r+b") as fh:
                    fh.truncate(valid_end)
                    fh.flush()
                    os.fsync(fh.fileno())
                self.recovery["truncated_bytes"] = torn
                self.recovery["truncated_reason"] = reason
            self._segments.append(_Segment(index, path, base_lsn))
            next_lsn = base_lsn + len(records)
            total_records += len(records)
        self.recovery["segments"] = len(self._segments)
        self.recovery["records"] = total_records
        if not self._segments:
            # The only segment on disk had a damaged header.
            self._next_lsn = 1
            self._create_segment(1, base_lsn=1)
            return
        self._next_lsn = next_lsn
        self._file = open(self._segments[-1].path, "ab")

    def _create_segment(self, index: int, base_lsn: int) -> None:
        path = self._segment_path(index)
        fh = open(path, "wb")
        fh.write(_SEG_HEADER.pack(SEGMENT_MAGIC, base_lsn))
        fh.flush()
        if self.sync != "off":
            os.fsync(fh.fileno())
            _fsync_path(self.directory)
        self._file = fh
        self._segments.append(_Segment(index, path, base_lsn))

    # -- telemetry -----------------------------------------------------
    def bind_metrics(self, registry) -> None:
        """Record append/fsync latency and fsync lag into a registry.

        ``repro_journal_append_seconds`` times the full ack barrier
        (encode + write + whatever the sync policy waits on), so its
        tail *is* the durability cost an update client observes.
        ``repro_journal_fsync_seconds`` times the fsync syscalls
        themselves, and the lag gauge is the group-commit backlog —
        bytes written but not yet covered by a completed fsync.
        """
        self._append_hist = registry.histogram(
            "repro_journal_append_seconds",
            "durable append latency (returns only once the record is "
            "durable under the sync policy)",
        )
        self._fsync_hist = registry.histogram(
            "repro_journal_fsync_seconds", "fsync syscall latency"
        )
        registry.gauge(
            "repro_journal_fsync_lag_bytes",
            "bytes appended but not yet covered by a completed fsync",
            fn=lambda: max(0, self._written - self._synced),
        )

    def _fsync_file(self, fh) -> None:
        """fsync with optional latency recording (hot on ``always``)."""
        hist = self._fsync_hist
        if hist is None:
            os.fsync(fh.fileno())
        else:
            t0 = time.perf_counter_ns()
            os.fsync(fh.fileno())
            hist.observe_ns(time.perf_counter_ns() - t0)
        self._fsyncs += 1

    # -- append (the ack barrier) --------------------------------------
    def append(
        self,
        edges: Sequence,
        *,
        client: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> int:
        """Durably append one update batch; returns its LSN.

        ``edges`` takes plain ``(u, v)`` pairs (insertions) and/or
        ``('+'|'-', u, v)`` triples — any removal switches the record
        to the kind-2 churn encoding.  Blocks until the record is
        durable per the sync policy — ``always`` fsyncs inline,
        ``interval`` waits for the group commit that covers it, ``off``
        returns after the buffered write reaches the kernel.
        """
        hist = self._append_hist
        t0 = time.perf_counter_ns() if hist is not None else 0
        with self._lock:
            if self._closed:
                raise JournalError("journal is closed")
            lsn = self._next_lsn
            payload = _encode_payload(lsn, edges, client, seq)
            record = _REC_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
            if (
                self._file.tell() + len(record) > self.segment_bytes
                and self._file.tell() > _SEG_HEADER.size
            ):
                self._rotate(next_base=lsn)
            self._file.write(record)
            self._file.flush()
            self._next_lsn += 1
            self._appended += 1
            if self.sync == "always":
                self._fsync_file(self._file)
                if hist is not None:
                    hist.observe_ns(time.perf_counter_ns() - t0)
                return lsn
            if self.sync == "off":
                if hist is not None:
                    hist.observe_ns(time.perf_counter_ns() - t0)
                return lsn
            self._written += len(record)
            target = self._written
        # Group commit: wait outside the append lock so concurrent
        # appends pile in behind one fsync instead of serialising.
        self._wake.set()
        with self._cond:
            while self._synced < target and not self._closed:
                self._cond.wait(timeout=1.0)
            if self._synced < target:
                raise JournalError("journal closed before the record synced")
        if hist is not None:
            hist.observe_ns(time.perf_counter_ns() - t0)
        return lsn

    def _rotate(self, next_base: int) -> None:
        """Seal the active segment and open the next (lock held)."""
        if self.sync != "off":
            self._fsync_file(self._file)
        # Everything in the sealed file is now durable; release any
        # group-commit waiters parked on those bytes.
        self._synced = self._written
        self._cond.notify_all()
        self._file.close()
        self._create_segment(self._segments[-1].index + 1, base_lsn=next_base)

    def _sync_loop(self) -> None:
        while True:
            self._wake.wait(self.sync_interval_s)
            self._wake.clear()
            with self._lock:
                if self._closed:
                    return
                if self._written == self._synced:
                    continue
                fh = self._file
                target = self._written
            try:
                self._fsync_file(fh)
            except (OSError, ValueError):
                # The file rotated (and was fsynced) under us; those
                # bytes are already durable.
                pass
            with self._cond:
                if target > self._synced:
                    self._synced = target
                self._cond.notify_all()

    # -- replay / compaction -------------------------------------------
    @property
    def last_lsn(self) -> int:
        """LSN of the newest record (0 when the journal is empty)."""
        with self._lock:
            return self._next_lsn - 1

    def replay(self, after: int = 0) -> Iterator[JournalRecord]:
        """Yield records with ``lsn > after`` in LSN order.

        Reads the segment files back; call before serving traffic (the
        recovery path does) or accept that records appended during the
        iteration may be missed.
        """
        with self._lock:
            if self._file is not None:
                self._file.flush()
            segments = list(self._segments)
        for seg in segments:
            _base, records, _end, reason = _scan_segment(seg.path)
            if reason:
                raise JournalError(
                    f"segment {seg.path} damaged during replay: {reason}"
                )
            for rec in records:
                if rec.lsn > after:
                    yield rec

    def compactable(self, watermark: int) -> int:
        """How many segments :meth:`compact` would delete, without deleting.

        The durable primary asks this before committing a checkpoint:
        deleting a segment loses records the base-graph rebuild folds
        in, so the base snapshot must be rewritten first — but only
        when something is actually about to be deleted.
        """
        with self._lock:
            count = 0
            while count + 1 < len(self._segments):
                if self._segments[count + 1].base_lsn - 1 > watermark:
                    break
                count += 1
            return count

    def compact(self, watermark: int) -> int:
        """Delete whole segments whose records are all ``<= watermark``.

        The active segment always survives, as does any segment whose
        range straddles the watermark (records are never rewritten —
        compaction is unlink-only, which is what makes it safe to run
        right after a manifest commit).  Returns segments deleted.
        """
        deleted = 0
        with self._lock:
            while len(self._segments) > 1:
                # Segment i's records end where segment i+1's begin.
                if self._segments[1].base_lsn - 1 > watermark:
                    break
                seg = self._segments.pop(0)
                try:
                    os.unlink(seg.path)
                except OSError:  # pragma: no cover - already gone
                    pass
                deleted += 1
            if deleted:
                _fsync_path(self.directory)
        return deleted

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._file is not None:
                self._file.flush()
                if self.sync != "off":
                    try:
                        os.fsync(self._file.fileno())
                        self._fsyncs += 1
                    except OSError:  # pragma: no cover
                        pass
                self._synced = self._written
                self._file.close()
                self._file = None
            self._cond.notify_all()
        self._wake.set()
        if self._syncer is not None:
            self._syncer.join(timeout=5.0)
            self._syncer = None

    def __enter__(self) -> "UpdateJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "sync": self.sync,
                "segments": len(self._segments),
                "appended": self._appended,
                "fsyncs": self._fsyncs,
                "next_lsn": self._next_lsn,
                "active_segment_bytes": (
                    0 if self._file is None else self._file.tell()
                ),
                "recovery": dict(self.recovery),
            }

    def __repr__(self) -> str:
        return (
            f"UpdateJournal({self.directory!r}, sync={self.sync}, "
            f"next_lsn={self._next_lsn}, segments={len(self._segments)})"
        )
