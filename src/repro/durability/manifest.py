"""Crash-safe epoch manifest: epoch -> artifact, atomically.

The manifest is the single small file that binds a durable primary's
state together: which epoch is current, which artifact file in the
data dir holds it, the journal watermark (highest LSN whose effects
that artifact already contains), and the idempotency window snapshot.
Recovery trusts exactly one thing — the manifest it finds — so the
commit protocol must never leave a half-written one behind:

1. write the JSON to ``manifest.json.tmp`` and fsync it,
2. ``os.replace`` it over ``manifest.json`` (atomic on POSIX),
3. fsync the directory so the rename itself survives power loss.

A crash before step 2 leaves the old manifest intact (the ``.tmp`` is
garbage, ignored and overwritten next commit); a crash after leaves
the new one.  There is no in-between, which is the whole point.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

__all__ = ["EpochManifest", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1


class EpochManifest:
    """Atomic read/commit of the manifest file in one data dir."""

    def __init__(self, data_dir: str) -> None:
        self.data_dir = str(data_dir)
        self.path = os.path.join(self.data_dir, MANIFEST_NAME)
        self._tmp = self.path + ".tmp"

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> Optional[Dict[str, object]]:
        """The committed manifest, or None when none was ever committed.

        A corrupt manifest (impossible under the commit protocol short
        of disk damage) raises rather than silently starting fresh —
        starting fresh would orphan a journal full of acked records.
        """
        if not os.path.exists(self.path):
            return None
        with open(self.path, "r", encoding="utf-8") as fh:
            text = fh.read()
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise RuntimeError(
                f"manifest {self.path} is corrupt ({exc}); refusing to "
                "start fresh over a data dir that has acked state"
            ) from exc
        if doc.get("format") != MANIFEST_FORMAT:
            raise RuntimeError(
                f"manifest {self.path} has format {doc.get('format')!r}, "
                f"this build reads format {MANIFEST_FORMAT}"
            )
        return doc

    def commit(self, doc: Dict[str, object]) -> None:
        """Durably replace the manifest (temp + fsync + rename + fsync)."""
        payload = dict(doc)
        payload["format"] = MANIFEST_FORMAT
        data = json.dumps(payload, indent=2, sort_keys=True)
        fd = os.open(self._tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, data.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(self._tmp, self.path)
        dirfd = os.open(self.data_dir, os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)

    def __repr__(self) -> str:
        return f"EpochManifest({self.path!r}, exists={self.exists()})"
