"""Durability: the write-ahead journal + crash recovery layer.

PRs 5–6 made the reachability service *available* (live updates, a
replica tier that survives a replica SIGKILL); this package makes it
*durable* — an acknowledged update survives killing the primary.

* :mod:`repro.durability.journal` — :class:`UpdateJournal`: a
  checksummed, segment-rotated write-ahead log with ``always`` /
  ``interval`` (group commit) / ``off`` fsync policies and torn-tail
  truncation on reopen.
* :mod:`repro.durability.manifest` — :class:`EpochManifest`: the
  atomically-committed (temp + fsync + rename) binding of epoch →
  artifact file → journal watermark.
* :mod:`repro.durability.dedupe` — :class:`DedupeWindow`: the
  per-client sequence window behind ``OP_UPDATE_SEQ`` idempotency.
* :mod:`repro.durability.primary` — :class:`JournaledPrimary`: the
  assembly.  Ack ⇒ durable (journal append is the ack barrier),
  restart ⇒ recover (newest manifest epoch + journal replay past its
  watermark), checkpoint ⇒ compact.

The acceptance drill for all of it lives in
:func:`repro.cluster.chaos.primary_crash_drill`.
"""

from .dedupe import DedupeWindow, StaleSequenceError
from .journal import JournalError, JournalRecord, SYNC_POLICIES, UpdateJournal
from .manifest import EpochManifest
from .primary import JournaledPrimary

__all__ = [
    "DedupeWindow",
    "StaleSequenceError",
    "JournalError",
    "JournalRecord",
    "SYNC_POLICIES",
    "UpdateJournal",
    "EpochManifest",
    "JournaledPrimary",
]
