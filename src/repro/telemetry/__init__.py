"""`repro.telemetry`: dependency-free metrics + request tracing.

The observability layer for the whole serving stack, in three pieces:

* :mod:`repro.telemetry.metrics` — :class:`Counter`, :class:`Gauge`,
  log2-bucketed :class:`Histogram` (mergeable snapshots: a router adds
  every replica's buckets into one exact cluster distribution), a
  :class:`MetricsRegistry`, and the Prometheus text renderer behind
  ``GET /metrics``.
* :mod:`repro.telemetry.tracing` — wire-propagated trace IDs, span
  records for each pipeline stage (decode → cache → batch wait →
  dispatch → flush; journal append → fsync; compile stages; router
  attempts), and a :class:`TraceTailSampler` that keeps the slowest N
  exemplar traces for ``OP_TRACE`` to return.
* :class:`Telemetry` (here) — the per-service bundle: one registry,
  one tail sampler, and the 1-in-K auto-sampling policy that keeps
  exemplars flowing even when no client asks for a trace.

Everything is built to be *left on*: the per-request cost is one
unlocked counter tick — clocks, histogram locks, and trace allocation
only run for the sampled 1-in-K requests, whose observations carry
``weight=K`` so the recorded histograms still estimate the full
population (``BENCH_obs.json`` holds the measured overhead, budgeted
under 2%).  Components accept a registry via ``bind_metrics`` and
no-op when never bound, so library users who build a
:class:`QueryService` with ``telemetry=False`` pay nothing at all.
"""

from __future__ import annotations

from typing import Optional

from .metrics import (
    HIST_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from .tracing import TraceContext, TraceTailSampler, new_trace_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "HIST_BUCKETS",
    "TraceContext",
    "TraceTailSampler",
    "new_trace_id",
    "Telemetry",
]


def _pow2(k: int) -> int:
    """Round up to a power of two (minimum 1)."""
    k = max(1, k)
    return 1 << (k - 1).bit_length()


class Telemetry:
    """One service's observability bundle: registry + tail sampler.

    Two sampling rates hang off one shared tick:

    * ``sample_every`` — the auto-trace rate: every K-th request that
      arrives *without* a client trace id gets traced anyway, so the
      tail sampler fills with organic exemplars under any workload.
    * ``latency_every`` — the timing rate: only every J-th request
      pays for clocks and histogram observations; those observations
      carry ``weight=J`` (see :meth:`Histogram.observe_ns`) so the
      histograms still estimate every request.

    Both rates are rounded up to powers of two (and ``sample_every``
    to at least ``latency_every``), so a consumer can gate with a
    single ``n & (rate - 1)`` bitmask and nest the rarer trace check
    inside the latency check.  The tick is a plain unlocked increment
    — a raced bump skews *which* request is sampled, never
    correctness.
    """

    def __init__(
        self,
        sample_every: int = 256,
        keep_traces: int = 32,
        latency_every: int = 32,
    ) -> None:
        self.registry = MetricsRegistry()
        self.sampler = TraceTailSampler(keep=keep_traces)
        self.latency_every = _pow2(latency_every)
        self.sample_every = max(_pow2(sample_every), self.latency_every)
        self._auto_n = 0

    def tick(self) -> int:
        """Advance the shared sampling counter (unlocked; see above)."""
        n = self._auto_n = self._auto_n + 1
        return n

    def should_sample(self) -> bool:
        return self.tick() % self.sample_every == 0

    def new_trace(self, trace_id: Optional[int] = None, origin: str = "client") -> TraceContext:
        return TraceContext(trace_id or new_trace_id(), origin=origin)

    def offer(self, trace: TraceContext) -> None:
        self.sampler.offer(trace)

    def snapshot(self) -> dict:
        """The ``telemetry`` section of the ``OP_STATS`` v2 document."""
        doc = self.registry.snapshot()
        doc["traces"] = self.sampler.stats()
        return doc
