"""Dependency-free metrics primitives: counters, gauges, histograms.

Everything here is designed to sit on a serving hot path, so the cost
model is explicit:

* a :class:`Counter` increment is one lock acquire + one int add;
* a :class:`Histogram` observation is one ``int.bit_length()`` (the
  log-bucket index — no ``math.log``, no float) + one lock acquire +
  two int adds;
* a :class:`Gauge` can be *pull-based* (a callable sampled only at
  snapshot/render time), so steady-state serving pays nothing for it.

Histograms are **log-bucketed over integer nanoseconds**: an
observation ``v`` lands in bucket ``v.bit_length()``, i.e. bucket *i*
covers ``[2^(i-1), 2^i)`` ns (bucket 0 is exactly 0).  Sixty-four
buckets span the whole u64 range — from sub-nanosecond to five
centuries — so there is no clamping policy to tune and no dynamic
resizing.  The payoff is the snapshot algebra: a snapshot is a sparse
``{bucket_index: count}`` dict, and merging two snapshots is exact
integer addition per bucket (see :func:`repro.stats.merge_histograms`)
— which is what lets a router add up every replica's latency histogram
into one *lossless* cluster-wide distribution, something percentile
summaries can never do.

:class:`MetricsRegistry` is the per-process (or per-component) bag of
instruments with stable creation semantics (``counter(name)`` twice
returns the same object) plus the two export paths: a JSON-able
:meth:`~MetricsRegistry.snapshot` for the binary ``OP_STATS`` document
and :func:`render_prometheus` for the HTTP ``GET /metrics`` text
exposition.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "HIST_BUCKETS",
]

#: Number of log2 buckets a histogram carries (covers the u64 range).
HIST_BUCKETS = 65  # bucket 0 = value 0; bucket i = [2^(i-1), 2^i) for i >= 1


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value: either pushed via :meth:`set` or pulled.

    A pull gauge wraps a callable sampled only when a snapshot or a
    scrape asks — the natural shape for derived values like "journal
    bytes not yet fsynced" or "seconds since the last epoch publish"
    that already live in some component's state.  A sampling error
    yields ``None`` (rendered as absent), never an exception: a broken
    gauge must not break the scrape.
    """

    __slots__ = ("name", "help", "_value", "_fn")

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], Union[int, float]]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self._value: Union[int, float] = 0
        self._fn = fn

    def set(self, value: Union[int, float]) -> None:
        self._value = value

    @property
    def value(self) -> Optional[Union[int, float]]:
        if self._fn is not None:
            try:
                return self._fn()
            except Exception:
                return None
        return self._value

    def snapshot(self) -> Optional[Union[int, float]]:
        return self.value


class Histogram:
    """Log2-bucketed histogram over non-negative integers (usually ns).

    ``observe_ns(v)`` buckets by ``v.bit_length()`` — bucket *i* holds
    values in ``[2^(i-1), 2^i)``, bucket 0 holds exactly 0 — and keeps
    a running count and sum.  ``unit`` declares how the integer is to
    be read at render time: ``"ns"`` histograms render as Prometheus
    *seconds* histograms (the convention scrapers expect), anything
    else renders in its raw unit.
    """

    __slots__ = ("name", "help", "unit", "_lock", "_counts", "_count", "_sum")

    def __init__(self, name: str, help: str = "", unit: str = "ns") -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self._lock = threading.Lock()
        self._counts = [0] * HIST_BUCKETS
        self._count = 0
        self._sum = 0

    def observe_ns(self, value: int, weight: int = 1) -> None:
        """Record one observation (non-negative int; negatives clamp to 0).

        ``weight`` supports *sampled* instrumentation on hot paths: a
        call site that only times every K-th event observes with
        ``weight=K``, so counts and sums still estimate the full
        population (unbiased under uniform sampling) and downstream
        consumers — percentiles, merges, rate math — need no special
        casing.
        """
        if value < 0:
            value = 0
        idx = value.bit_length()
        if idx >= HIST_BUCKETS:  # pragma: no cover - > 5 centuries in ns
            idx = HIST_BUCKETS - 1
        with self._lock:
            self._counts[idx] += weight
            self._count += weight
            self._sum += value * weight

    def observe_s(self, seconds: float, weight: int = 1) -> None:
        """Record a duration given in (float) seconds."""
        self.observe_ns(int(seconds * 1e9), weight)

    def time(self):
        """``with hist.time():`` — observe the block's wall duration."""
        return _HistTimer(self)

    @property
    def count(self) -> int:
        return self._count

    def snapshot(self) -> dict:
        """``{"count", "sum", "unit", "buckets": {index: count}}``.

        Buckets are sparse (only non-empty indices), keyed by *string*
        indices so the dict survives a JSON round-trip unchanged.
        Merging two snapshots bucket-wise is exact — see
        :func:`repro.stats.merge_histograms`.
        """
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
        return {
            "count": count,
            "sum": total,
            "unit": self.unit,
            "buckets": {str(i): c for i, c in enumerate(counts) if c},
        }


class _HistTimer:
    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram) -> None:
        self._hist = hist
        self._t0 = 0

    def __enter__(self) -> "_HistTimer":
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe_ns(time.perf_counter_ns() - self._t0)


class MetricsRegistry:
    """A named bag of instruments with get-or-create semantics.

    Creation is idempotent: ``counter("x")`` twice returns the same
    :class:`Counter`, so components can bind lazily without
    coordinating.  Asking for an existing name with a *different*
    instrument kind raises — silently returning the wrong type would
    corrupt whichever caller loses the race.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, cls, name: str, *args, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            metric = cls(name, *args, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], Union[int, float]]] = None,
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, fn)

    def histogram(self, name: str, help: str = "", unit: str = "ns") -> Histogram:
        return self._get_or_create(Histogram, name, help, unit)

    def get(self, name: str):
        return self._metrics.get(name)

    def snapshot(self) -> dict:
        """JSON-able ``{"counters", "gauges", "histograms"}`` document.

        This is the ``telemetry`` section of the ``OP_STATS`` v2 reply;
        histogram values are the mergeable sparse-bucket snapshots.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        counters: Dict[str, int] = {}
        gauges: Dict[str, Union[int, float]] = {}
        histograms: Dict[str, dict] = {}
        for m in metrics:
            if isinstance(m, Counter):
                counters[m.name] = m.snapshot()
            elif isinstance(m, Histogram):
                histograms[m.name] = m.snapshot()
            elif isinstance(m, Gauge):
                value = m.snapshot()
                if value is not None:
                    gauges[m.name] = value
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _sanitize(name: str) -> str:
    """Coerce an arbitrary key into a legal Prometheus metric name."""
    out = []
    for ch in name:
        if ch.isalnum() or ch == "_" or ch == ":":
            out.append(ch)
        else:
            out.append("_")
    s = "".join(out)
    if not s or not (s[0].isalpha() or s[0] in "_:"):
        s = "_" + s
    return s


def _fmt(value: Union[int, float]) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _flatten_numeric(doc, prefix: str, out: List) -> None:
    """Collect ``(name, value)`` for every numeric leaf of a stats dict."""
    if isinstance(doc, dict):
        for key, value in doc.items():
            _flatten_numeric(value, f"{prefix}_{key}" if prefix else str(key), out)
    elif isinstance(doc, bool):
        out.append((prefix, 1 if doc else 0))
    elif isinstance(doc, (int, float)):
        out.append((prefix, doc))
    # strings / lists / None: not scrapeable scalars; skip.


def render_prometheus(
    registry: Optional[MetricsRegistry] = None,
    stats_doc: Optional[dict] = None,
    prefix: str = "repro",
) -> str:
    """The ``GET /metrics`` body: Prometheus text exposition v0.0.4.

    Registry counters/gauges render with their proper ``# TYPE``;
    ``ns``-unit histograms render as cumulative-bucket Prometheus
    histograms **in seconds** (``le`` edges are the log2 bucket upper
    bounds divided by 1e9), other units render with raw ``le`` edges.
    ``stats_doc`` — a service's legacy ``stats()`` dict — is flattened
    so every numeric leaf becomes a ``<prefix>_stats_*`` gauge: the
    whole pile of ad-hoc per-component stats becomes scrapeable without
    each component re-registering its counters.
    """
    lines: List[str] = []

    def emit(name: str, mtype: str, help_text: str) -> None:
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")

    if registry is not None:
        snap_metrics = registry.snapshot()
        for name, value in sorted(snap_metrics["counters"].items()):
            name = _sanitize(name)
            emit(name, "counter", "")
            lines.append(f"{name} {_fmt(value)}")
        for name, value in sorted(snap_metrics["gauges"].items()):
            name = _sanitize(name)
            emit(name, "gauge", "")
            lines.append(f"{name} {_fmt(value)}")
        for name, snap in sorted(snap_metrics["histograms"].items()):
            name = _sanitize(name)
            in_seconds = snap.get("unit") == "ns"
            emit(name, "histogram", "")
            cumulative = 0
            buckets = {int(k): v for k, v in snap["buckets"].items()}
            for idx in sorted(buckets):
                cumulative += buckets[idx]
                edge = float(1 << idx)
                if in_seconds:
                    edge /= 1e9
                lines.append(f'{name}_bucket{{le="{edge!r}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {snap["count"]}')
            total = snap["sum"] / 1e9 if in_seconds else snap["sum"]
            lines.append(f"{name}_sum {_fmt(total)}")
            lines.append(f"{name}_count {snap['count']}")
    if stats_doc is not None:
        leaves: List = []
        _flatten_numeric(stats_doc, "", leaves)
        seen = set()
        for key, value in sorted(leaves):
            name = _sanitize(f"{prefix}_stats_{key}")
            if name in seen:  # two keys sanitized to the same name
                continue
            seen.add(name)
            emit(name, "gauge", "")
            lines.append(f"{name} {_fmt(value)}")
    return "\n".join(lines) + "\n"
