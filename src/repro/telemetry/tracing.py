"""Request tracing: client-allocated trace IDs, spans, tail sampling.

A trace is born at whichever edge first decides to watch a request —
a client sending ``OP_QUERY_TRACED`` with an ID it allocated, or the
server's own 1-in-K auto-sampler — and rides the request object
through the pipeline.  Each stage appends a **span**: a
``(name, start_ns, duration_ns)`` triple on the shared
``perf_counter_ns`` clock of the process doing the work.  The standard
query spans are::

    decode → cache_lookup → batch_wait → dispatch → flush

(plus ``journal_append`` / ``fsync`` on the update path and per-stage
spans in the incremental compiler), so a finished trace answers the
only question that matters when a request is slow: *where did the
milliseconds go?*

Storage is a :class:`TraceTailSampler` — **tail** sampling, decided
after the request finishes, keeping only the slowest N traces ever
seen (a min-heap on total duration).  Head sampling keeps a uniform
slice of mostly-boring requests; the tail sampler keeps exactly the
exemplars worth reading.  ``OP_TRACE`` returns them slowest-first.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from typing import List, Optional

__all__ = ["new_trace_id", "TraceContext", "TraceTailSampler"]

_id_counter = itertools.count(1)
_id_salt = int.from_bytes(os.urandom(8), "little") | 1


def new_trace_id() -> int:
    """A process-unique non-zero u64 trace id (0 means "untraced")."""
    # A multiplicative hash of a monotone counter: unique per process,
    # well-scattered across processes (the salt is random per import),
    # and far cheaper than urandom per request.
    return (next(_id_counter) * _id_salt * 0x9E3779B97F4A7C15) % (1 << 64) or 1


class TraceContext:
    """One request's spans, accumulated as the request flows through.

    ``add_span`` may be called from any thread (batcher, pool reader,
    resolver) — list appends are atomic under the GIL, and the span
    list is only *read* after :meth:`finish`, which the completion
    callback calls exactly once.
    """

    __slots__ = ("trace_id", "origin", "start_ns", "duration_ns", "spans", "meta")

    def __init__(self, trace_id: int, origin: str = "client") -> None:
        self.trace_id = trace_id
        self.origin = origin
        self.start_ns = time.perf_counter_ns()
        self.duration_ns: Optional[int] = None
        self.spans: List[tuple] = []
        self.meta: dict = {}

    def add_span(self, name: str, start_ns: int, end_ns: int) -> None:
        self.spans.append((name, start_ns, max(0, end_ns - start_ns)))

    def finish(self, end_ns: Optional[int] = None) -> int:
        if self.duration_ns is None:
            if end_ns is None:
                end_ns = time.perf_counter_ns()
            self.duration_ns = max(0, end_ns - self.start_ns)
        return self.duration_ns

    def to_doc(self) -> dict:
        """JSON-able exemplar: spans carry offsets *relative to* start."""
        return {
            "trace_id": self.trace_id,
            "origin": self.origin,
            "duration_ns": self.duration_ns,
            "meta": dict(self.meta),
            "spans": [
                {
                    "name": name,
                    "offset_ns": max(0, start - self.start_ns),
                    "duration_ns": dur,
                }
                for name, start, dur in self.spans
            ],
        }


class TraceTailSampler:
    """Keep the slowest ``keep`` finished traces ever offered.

    A min-heap on duration: offering a trace faster than the current
    floor is one comparison and no allocation, so the sampler stays
    cheap even when every request is traced.  ``snapshot()`` returns
    exemplar docs slowest-first.
    """

    def __init__(self, keep: int = 32) -> None:
        self.keep = max(1, keep)
        self._lock = threading.Lock()
        self._heap: List[tuple] = []  # (duration_ns, seq, trace)
        self._seq = 0
        self._offered = 0

    def offer(self, trace: TraceContext) -> None:
        duration = trace.duration_ns
        if duration is None:  # pragma: no cover - finish() guards this
            duration = trace.finish()
        with self._lock:
            self._offered += 1
            if len(self._heap) < self.keep:
                self._seq += 1
                heapq.heappush(self._heap, (duration, self._seq, trace))
            elif duration > self._heap[0][0]:
                self._seq += 1
                heapq.heapreplace(self._heap, (duration, self._seq, trace))

    def snapshot(self, limit: Optional[int] = None) -> List[dict]:
        with self._lock:
            entries = sorted(self._heap, key=lambda e: -e[0])
        if limit is not None:
            entries = entries[:limit]
        return [trace.to_doc() for _dur, _seq, trace in entries]

    def stats(self) -> dict:
        with self._lock:
            return {
                "kept": len(self._heap),
                "keep": self.keep,
                "offered": self._offered,
                "slowest_ns": self._heap and max(e[0] for e in self._heap) or 0,
            }
