"""Experiment definitions: one spec per table/figure of the paper's §6.

Each :class:`Experiment` names the datasets, methods, workloads, metric
and per-method budgets needed to regenerate one artifact.  The CLI
(:mod:`repro.cli`) and the pytest benchmarks both consume these specs,
so "what exactly does Table 5 run?" has a single answer in code.

Budgets encode the scaled-down equivalents of the paper's resource
limits (32 GB RAM, 24 h): methods whose memory footprint explodes at
scale get size budgets that trip on the same dataset families where the
paper reports "—".  See DESIGN.md §3 for the calibration rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..datasets.catalog import LARGE_SUITE, SMALL_SUITE
from .harness import BuildBudget

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "PAPER_METHODS"]

#: The method columns of the paper's Tables 2-7, in paper order.
PAPER_METHODS: List[str] = [
    "GL", "GL*", "PT", "PT*", "KR", "PW8", "INT", "2HOP", "PL", "TF", "HL", "DL",
]


@dataclass
class Experiment:
    """A reproducible experiment spec for one paper artifact."""

    exp_id: str
    title: str
    datasets: List[str]
    methods: List[str]
    metric: str  # "query" | "construction" | "index_size" | "datasets"
    workloads: List[str] = field(default_factory=lambda: ["equal"])
    queries: int = 10_000
    budgets: Dict[str, BuildBudget] = field(default_factory=dict)
    notes: str = ""


def _small_budgets() -> Dict[str, BuildBudget]:
    """Budgets for the small suite: only K-Reach's known failures trip."""
    return {
        # Paper Table 2: K-Reach reports "—" exactly on arxiv (cover TC
        # too dense) and p2p (cover itself too large); these two budgets
        # reproduce that pair.
        "KR": BuildBudget(
            params={
                "max_cover_closure_bits": 3_800_000,
                "max_cover_tc_entries": 60_000,
            }
        ),
        "2HOP": BuildBudget(time_s=300.0),
    }


def _large_budgets() -> Dict[str, BuildBudget]:
    """Budgets for the large suite (scaled 32 GB / 24 h equivalents)."""
    return {
        # K-Reach fails on every large graph in the paper.
        "KR": BuildBudget(params={"max_cover_closure_bits": 400_000}),
        # 2HOP materialises the full TC: bit budget + ground-set budget.
        "2HOP": BuildBudget(
            time_s=240.0,
            params={"max_tc_bits": 150_000_000, "max_tc_pairs": 1_000_000},
        ),
        # PT's interval closures blow up outside chain/tree families;
        # this budget reproduces the paper's completion set exactly
        # (citeseer, mapped_100K, mapped_1M, uniprotenc_22m).
        "PT": BuildBudget(params={"max_storage_ints": 200_000}),
        # INT survives everywhere except the densest citation closure.
        "INT": BuildBudget(params={"max_storage_ints": 1_200_000}),
    }


def _experiments() -> Dict[str, Experiment]:
    exps = [
        Experiment(
            exp_id="table1",
            title="Table 1: datasets (paper vs stand-in sizes)",
            datasets=SMALL_SUITE + LARGE_SUITE,
            methods=[],
            metric="datasets",
            workloads=[],
            notes="Prints paper |V|,|E| next to the synthetic stand-in sizes.",
        ),
        Experiment(
            exp_id="table2",
            title="Table 2: query time (ms) — equal workload, small graphs",
            datasets=list(SMALL_SUITE),
            methods=list(PAPER_METHODS),
            metric="query",
            workloads=["equal"],
            budgets=_small_budgets(),
        ),
        Experiment(
            exp_id="table3",
            title="Table 3: query time (ms) — random workload, small graphs",
            datasets=list(SMALL_SUITE),
            methods=list(PAPER_METHODS),
            metric="query",
            workloads=["random"],
            budgets=_small_budgets(),
        ),
        Experiment(
            exp_id="table4",
            title="Table 4: construction time (ms) — small graphs",
            datasets=list(SMALL_SUITE),
            methods=list(PAPER_METHODS),
            metric="construction",
            workloads=[],
            budgets=_small_budgets(),
        ),
        Experiment(
            exp_id="table5",
            title="Table 5: query time (ms) — equal workload, large graphs",
            datasets=list(LARGE_SUITE),
            methods=list(PAPER_METHODS),
            metric="query",
            workloads=["equal"],
            budgets=_large_budgets(),
        ),
        Experiment(
            exp_id="table6",
            title="Table 6: query time (ms) — random workload, large graphs",
            datasets=list(LARGE_SUITE),
            methods=list(PAPER_METHODS),
            metric="query",
            workloads=["random"],
            budgets=_large_budgets(),
        ),
        Experiment(
            exp_id="table7",
            title="Table 7: construction time (ms) — large graphs",
            datasets=list(LARGE_SUITE),
            methods=list(PAPER_METHODS),
            metric="construction",
            workloads=[],
            budgets=_large_budgets(),
        ),
        Experiment(
            exp_id="figure3",
            title="Figure 3: index size (k ints) — small graphs",
            datasets=list(SMALL_SUITE),
            methods=list(PAPER_METHODS),
            metric="index_size",
            workloads=[],
            budgets=_small_budgets(),
        ),
        Experiment(
            exp_id="figure4",
            title="Figure 4: index size (k ints) — large graphs",
            datasets=list(LARGE_SUITE),
            methods=list(PAPER_METHODS),
            metric="index_size",
            workloads=[],
            budgets=_large_budgets(),
        ),
        Experiment(
            exp_id="ablation-rank",
            title="Ablation: DL rank functions (label size, k ints)",
            datasets=["agrocyc", "arxiv", "kegg", "citeseer", "web"],
            methods=["DL"],  # handled specially by the CLI: one run per order
            metric="index_size",
            workloads=[],
            notes="Compares degree_product / degree_sum / random / topo_center.",
        ),
        Experiment(
            exp_id="ablation-backbone",
            title="Ablation: HL locality eps and core size",
            datasets=["agrocyc", "arxiv", "citeseer"],
            methods=["HL", "TF"],
            metric="index_size",
            workloads=[],
            notes="TF is HL at eps=1; the gap shows what eps=2 locality buys.",
        ),
        Experiment(
            exp_id="ablation-labelstore",
            title="Ablation: label storage (sorted-vector / hybrid / masks / hash-sets)",
            datasets=["agrocyc", "arxiv", "kegg"],
            methods=["DL"],
            metric="query",
            workloads=["equal"],
            notes="Reproduces the §1 claim that sorted vectors close the gap.",
        ),
    ]
    return {e.exp_id: e for e in exps}


EXPERIMENTS: Dict[str, Experiment] = _experiments()


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment spec by id (e.g. ``table2``)."""
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None
