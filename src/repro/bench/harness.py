"""Benchmark harness: build indices, time workloads, render paper tables.

The harness mirrors the paper's reporting discipline:

* **query time** — total wall time for a fixed workload batch (the paper
  reports ms per 100 000 queries; we report ms per batch and print the
  batch size in the table header),
* **query latency percentiles** — p50/p95/p99 of individually timed
  queries from the same workload, for every query mode: scalar timings
  in the direct and ``through_artifact`` modes, client-observed request
  latencies (plus queries/second) in the ``through_server`` mode,
* **construction time** — wall time of the index constructor,
* **index size** — the method's ``index_size_ints()`` (number of stored
  integers, the metric of Figures 3-4),
* **"—" (DNF)** — a method that exceeds its memory/size budget raises
  ``MemoryError`` during construction, or overruns the per-build time
  budget; both render as "—" exactly like the failed runs in Tables 5-7.

Workloads are generated once per dataset and shared by all methods, so
every method answers the same queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.digraph import DiGraph
from ..core.base import get_method
from ..datasets.catalog import load
from ..datasets.workloads import Workload, equal_workload, random_workload

__all__ = [
    "RunResult",
    "MethodRun",
    "run_dataset",
    "render_table",
    "BuildBudget",
    "measure_live_swap",
    "measure_failover",
]


@dataclass
class BuildBudget:
    """Per-method resource limits that produce the paper's "—" entries."""

    time_s: float = 120.0
    params: Dict[str, object] = field(default_factory=dict)


@dataclass
class RunResult:
    """Outcome of building and querying one method on one dataset."""

    dataset: str
    method: str
    status: str  # "ok" | "dnf-memory" | "dnf-time" | "error"
    build_s: Optional[float] = None
    index_size_ints: Optional[int] = None
    query_ms: Dict[str, float] = field(default_factory=dict)
    correct_positive_rate: Optional[float] = None
    error: str = ""
    #: Per-query latency percentiles, workload name ->
    #: ``{"p50_us", "p95_us", "p99_us", "p99.9_us"}`` (microseconds).  Every query
    #: mode fills these: direct and ``through_artifact`` runs time a
    #: sample of scalar queries; ``through_server`` runs report the
    #: client-observed request latencies.
    query_percentiles: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Artifact-serve measurements (``through_artifact`` runs only):
    #: on-disk bytes, cold-load wall time, and the loaded oracle's
    #: reported size (must equal ``index_size_ints`` for label kinds).
    artifact_bytes: Optional[int] = None
    load_s: Optional[float] = None
    loaded_size_ints: Optional[int] = None
    #: Served-throughput per workload (``through_server`` runs only):
    #: client-side queries/second against a live TCP server.
    server_qps: Dict[str, float] = field(default_factory=dict)
    #: Live-serving measurements (``server_live`` runs only), keyed by
    #: workload name like the other query metrics (each workload gets
    #: its own live server and mid-run swap): wall time of the
    #: update→compile→publish swap, client-observed latency percentiles
    #: of the requests whose service interval overlapped that swap
    #: window, and the epoch that server ended on.
    swap_ms: Dict[str, float] = field(default_factory=dict)
    during_swap_percentiles: Dict[str, Dict[str, float]] = field(default_factory=dict)
    live_epoch: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


#: Scalar queries timed individually per workload for the percentile
#: report; capped so percentile sampling never dominates a sweep.
PERCENTILE_SAMPLE = 2000


class MethodRun:
    """Build + measure one method on one prepared graph.

    ``through_artifact=True`` switches the *query* half to the serve
    lifecycle: the built index is compiled, saved to a temporary binary
    artifact, loaded back (memory-mapped), and the workloads are
    answered by the loaded oracle — measuring what a serving process
    actually pays.  ``artifact_bytes`` / ``load_s`` /
    ``loaded_size_ints`` land on the :class:`RunResult`.

    ``through_server=True`` goes one step further: the artifact is
    served by a live :class:`~repro.server.service.ReachServer`
    (micro-batching on, ``server_workers`` answer processes) and the
    workloads are driven through the TCP client as pipelined
    single-pair requests.  ``query_ms`` then holds client wall time,
    ``query_percentiles`` the client-observed request latencies, and
    ``server_qps`` the measured throughput.
    """

    def __init__(
        self,
        method: str,
        budget: Optional[BuildBudget] = None,
        through_artifact: bool = False,
        through_server: bool = False,
        server_workers: int = 0,
        server_window_s: float = 0.001,
        server_live: bool = False,
        live_updates: int = 32,
    ) -> None:
        self.method = method
        self.budget = budget or BuildBudget()
        self.through_artifact = through_artifact
        self.through_server = through_server
        self.server_workers = server_workers
        self.server_window_s = server_window_s
        #: ``server_live`` upgrades ``through_server`` to a live server
        #: (epoch-versioned store + update path): each workload runs
        #: against its own live server and ``live_updates`` random edge
        #: insertions are applied *mid-load*, recording swap latency and
        #: the query-latency percentiles during the swap window.  The
        #: live pipeline serves DL labels whatever ``method`` says (the
        #: built index still provides the build/size metrics).
        self.server_live = server_live
        self.live_updates = live_updates

    def execute(
        self,
        dataset: str,
        graph: DiGraph,
        workloads: Sequence[Workload],
        query_repeats: int = 3,
    ) -> RunResult:
        factory = get_method(self.method)
        t0 = time.perf_counter()
        try:
            index = factory(graph, **self.budget.params)
        except MemoryError as exc:
            return RunResult(dataset, self.method, "dnf-memory", error=str(exc))
        except Exception as exc:  # defensive: report, don't crash the sweep
            return RunResult(dataset, self.method, "error", error=repr(exc))
        build_s = time.perf_counter() - t0
        if build_s > self.budget.time_s:
            return RunResult(
                dataset,
                self.method,
                "dnf-time",
                build_s=build_s,
                error=f"build took {build_s:.1f}s > budget {self.budget.time_s}s",
            )
        result = RunResult(
            dataset,
            self.method,
            "ok",
            build_s=build_s,
            index_size_ints=index.index_size_ints(),
        )
        if self.through_server:
            try:
                if self.server_live:
                    return self._measure_live_server(graph, result, workloads)
                return self._measure_through_server(index, result, workloads)
            except Exception as exc:
                return RunResult(dataset, self.method, "error", error=repr(exc))
        artifact_path = None
        if self.through_artifact:
            try:
                index, artifact_path = self._serve_through_artifact(index, result)
            except MemoryError as exc:
                return RunResult(dataset, self.method, "dnf-memory", error=str(exc))
            except Exception as exc:
                return RunResult(dataset, self.method, "error", error=repr(exc))
        try:
            return self._measure_queries(index, result, workloads, query_repeats)
        finally:
            if artifact_path is not None:
                self._cleanup_artifact(artifact_path)

    def _measure_queries(
        self,
        index,
        result: RunResult,
        workloads: Sequence[Workload],
        query_repeats: int,
    ) -> RunResult:
        for wl in workloads:
            if not len(wl):
                result.query_ms[wl.name] = 0.0
                continue
            best = None
            answers = None
            for _ in range(max(1, query_repeats)):
                t0 = time.perf_counter()
                answers = index.query_batch(wl.pairs)
                elapsed = (time.perf_counter() - t0) * 1000.0
                if best is None or elapsed < best:
                    best = elapsed
            result.query_ms[wl.name] = best
            result.query_percentiles[wl.name] = self._scalar_percentiles(index, wl)
            if wl.positives is not None and answers is not None:
                got = sum(answers)
                result.correct_positive_rate = got / max(1, len(wl))
        return result

    @staticmethod
    def _scalar_percentiles(index, wl: Workload) -> Dict[str, float]:
        """p50/p95/p99 of individually-timed scalar queries (µs).

        The batch number above is the throughput metric; this is the
        latency *shape* an interactive caller sees, sampled from the
        same workload (capped at :data:`PERCENTILE_SAMPLE` pairs).
        """
        from ..stats import percentiles

        sample = wl.pairs[:PERCENTILE_SAMPLE]
        query = index.query
        clock = time.perf_counter
        latencies = []
        for u, v in sample:
            t0 = clock()
            query(u, v)
            latencies.append(clock() - t0)
        pct = percentiles(latencies)
        return {f"{k}_us": v * 1e6 for k, v in pct.items()}

    def _measure_through_server(
        self, index, result: RunResult, workloads: Sequence[Workload]
    ) -> RunResult:
        """Serve the compiled index over TCP; measure from the client.

        The workload is driven as pipelined single-pair requests (the
        interactive shape micro-batching exists for); answers are
        checked against the workload's positive-count metadata exactly
        like the direct modes.
        """
        import os
        import tempfile

        from ..serialization import save_artifact
        from ..server.client import run_load
        from ..server.service import serve_artifact

        fd, path = tempfile.mkstemp(suffix=".rpro")
        os.close(fd)
        server = None
        try:
            result.artifact_bytes = save_artifact(index, path)
            server = serve_artifact(
                path,
                workers=self.server_workers,
                window_s=self.server_window_s,
                cache_size=0,  # measure the query path, not the cache
            )
            host, port = server.address
            for wl in workloads:
                if not len(wl):
                    result.query_ms[wl.name] = 0.0
                    continue
                report = run_load(host, port, wl.pairs)
                if report.errors:
                    raise RuntimeError(
                        f"server load run failed: {report.first_error}"
                    )
                result.query_ms[wl.name] = report.wall_s * 1000.0
                result.server_qps[wl.name] = report.qps
                result.query_percentiles[wl.name] = {
                    f"{k}_us": v * 1000.0 for k, v in report.latency_ms.items()
                }
                if wl.positives is not None:
                    result.correct_positive_rate = report.positives / max(1, len(wl))
            return result
        finally:
            if server is not None:
                server.close()
            try:
                os.unlink(path)
            except OSError:
                pass

    def _measure_live_server(
        self, graph: DiGraph, result: RunResult, workloads: Sequence[Workload]
    ) -> RunResult:
        """Mixed read/update measurement against a live server.

        Every workload gets a fresh live server and the same
        deterministic update stream applied mid-load (see
        :func:`measure_live_swap`); ``query_ms``/``server_qps``/
        ``query_percentiles`` report the whole run, ``swap_ms`` and
        ``during_swap_percentiles`` the swap window itself.
        """
        import random as _random

        rng = _random.Random(131)
        updates = []
        while len(updates) < self.live_updates:
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            if u != v:
                updates.append((u, v))
        for wl in workloads:
            if not len(wl):
                result.query_ms[wl.name] = 0.0
                continue
            doc = measure_live_swap(
                graph,
                wl.pairs,
                updates,
                workers=self.server_workers,
                window_s=self.server_window_s,
            )
            result.query_ms[wl.name] = (
                len(wl) / doc["qps"] * 1000.0 if doc["qps"] else 0.0
            )
            result.server_qps[wl.name] = doc["qps"]
            result.query_percentiles[wl.name] = {
                f"{k}_us": v * 1000.0 for k, v in doc["latency_ms"].items()
            }
            result.swap_ms[wl.name] = doc["swap_s"] * 1000.0
            result.during_swap_percentiles[wl.name] = {
                f"{k}_us": v * 1000.0 for k, v in doc["during_swap_ms"].items()
            }
            result.live_epoch[wl.name] = doc["epoch"]
        return result

    @staticmethod
    def _serve_through_artifact(index, result: RunResult):
        """Round the built index through a temporary binary artifact.

        The temp file must outlive the query measurements: the loaded
        oracle memory-maps it, so it is cleaned up only after the
        workloads finish (see :meth:`execute`).
        """
        import os
        import tempfile

        from ..serialization import load_artifact, save_artifact

        fd, path = tempfile.mkstemp(suffix=".rpro")
        os.close(fd)
        try:
            result.artifact_bytes = save_artifact(index, path)
            t0 = time.perf_counter()
            loaded = load_artifact(path)
            result.load_s = time.perf_counter() - t0
            result.loaded_size_ints = loaded.index_size_ints()
            return loaded, path
        except BaseException:
            os.unlink(path)
            raise

    @staticmethod
    def _cleanup_artifact(path: str) -> None:
        import os

        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - e.g. Windows keeps mapped
            pass  # files locked; the temp dir reaper collects it


def measure_live_swap(
    graph: DiGraph,
    pairs: Sequence[Tuple[int, int]],
    updates: Sequence[Tuple[int, int]],
    *,
    workers: int = 0,
    window_s: float = 0.001,
    connections: int = 4,
    pipeline: int = 32,
    update_at_frac: float = 0.4,
    verify: bool = True,
) -> Dict[str, object]:
    """Serve ``graph`` live, fire ``pairs`` while applying ``updates``.

    The measuring instrument behind ``benchmarks/bench_live.py`` and the
    harness's ``server_live`` mode.  One live server (cache off — the
    raw query path is what a swap can disturb), two load passes of the
    same pipelined single-pair workload:

    1. a **steady** pass, which is both the baseline and the duration
       estimate, then
    2. a **swap** pass during which, ``update_at_frac`` of the steady
       wall time in, the update stream is applied and the new epoch
       published while requests are in flight.

    Returns::

        {"steady_qps", "steady_latency_ms",       # pass 1
         "swap_s", "compile_s", "publish_s",      # the update→flip path
         "full",                                  # full or incremental
         "epoch", "changed",
         "qps", "latency_ms",                     # pass 2, whole run
         "during_swap_ms",                        # p50/p95/p99 of requests
                                                  # completing in the window
         "during_swap_samples", "errors", "connections"}

    With ``verify=True`` the run asserts (a) zero dropped requests in
    either pass and (b) post-swap answers bit-identical to a fresh
    direct build on the post-update graph.
    """
    import threading

    from ..live import IncrementalCompiler, LiveIndex
    from ..server.client import run_load
    from ..server.service import QueryService, ReachServer
    from ..stats import percentiles

    live = LiveIndex(IncrementalCompiler(graph))
    service = QueryService(
        live=live, workers=workers, window_s=window_s, cache_size=0
    )
    server = None
    try:
        service.start()
        server = ReachServer(service, owns_service=True).start()
        host, port = server.address

        steady = run_load(
            host, port, pairs, connections=connections, pipeline=pipeline
        )
        if verify and steady.errors:
            raise RuntimeError(f"steady load run failed: {steady.first_error}")
        update_at_s = steady.wall_s * update_at_frac

        swap_info: Dict[str, object] = {}
        swap_window = [0.0, 0.0]
        update_error: List[BaseException] = []

        def do_update() -> None:
            if update_at_s > 0:
                time.sleep(update_at_s)
            swap_window[0] = time.perf_counter()
            try:
                swap_info.update(live.apply_updates(updates))
            except BaseException as exc:
                update_error.append(exc)
                return
            swap_window[1] = time.perf_counter()

        updater = threading.Thread(target=do_update, name="repro-live-update")
        updater.start()
        report = run_load(
            host,
            port,
            pairs,
            connections=connections,
            pipeline=pipeline,
            keep_samples=True,
        )
        updater.join()
        if update_error:
            raise update_error[0]
        if verify and report.errors:
            raise RuntimeError(
                f"load run dropped requests during the swap: "
                f"{report.first_error}"
            )

        t0, t1 = swap_window
        # A request "saw" the swap when its service interval
        # [send, completion] overlapped the swap window — completions
        # shortly after the flip carry the stall in their latency, so
        # completion-time filtering alone would miss exactly the
        # requests the swap affected.
        during = [
            lat
            for stamp, lat in report.samples
            if stamp >= t0 and stamp - lat <= t1
        ]
        doc: Dict[str, object] = {
            "steady_qps": steady.qps,
            "steady_latency_ms": dict(steady.latency_ms),
            "swap_s": t1 - t0,
            "compile_s": swap_info.get("compile_s"),
            "publish_s": swap_info.get("publish_s"),
            "full": swap_info.get("full"),
            "epoch": swap_info.get("epoch"),
            "changed": swap_info.get("changed"),
            "qps": report.qps,
            "latency_ms": dict(report.latency_ms),
            "during_swap_samples": len(during),
            "during_swap_ms": {
                k: v * 1000.0 for k, v in percentiles(during).items()
            } if during else {},
            "errors": steady.errors + report.errors,
            "connections": connections,
        }
        if verify:
            # The acceptance bar: served answers after the swap must be
            # bit-identical to a fresh build of the post-update graph.
            from ..facade import Reachability
            from ..server.client import ReachClient

            fresh = Reachability(live.compiler.original.copy(), "DL")
            sample = list(pairs[: min(len(pairs), 4000)])
            with ReachClient(host, port) as client:
                served = client.query_batch(sample)
            expected = fresh.query_batch(sample)
            if served != expected:
                bad = sum(1 for a, b in zip(served, expected) if a != b)
                raise AssertionError(
                    f"post-swap answers diverge from a fresh build "
                    f"({bad}/{len(sample)} pairs)"
                )
            doc["verified_pairs"] = len(sample)
        return doc
    finally:
        if server is not None:
            server.close()
        else:
            service.close()
        live.close()


def measure_failover(
    artifact_path: str,
    pairs: Sequence[Tuple[int, int]],
    *,
    replicas: int = 2,
    connections: int = 4,
    pipeline: int = 32,
    kill_at_frac: float = 0.3,
    restart: bool = True,
    verify: bool = True,
    router_kwargs: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Serve ``artifact_path`` through a replica tier, SIGKILL one
    replica mid-load, and measure what the clients felt.

    The measuring instrument behind ``benchmarks/bench_cluster.py`` and
    the chaos smoke.  One :func:`repro.cluster.serve_replicated` tier
    (``replicas`` seeded processes behind a :class:`ReplicaRouter`
    front end), two load passes of the same pipelined workload:

    1. a **steady** pass — the baseline and the duration estimate, then
    2. a **failover** pass during which, ``kill_at_frac`` of the steady
       wall time in, one replica process is SIGKILLed with requests in
       flight (and, with ``restart=True``, later restarted *blank* so
       the shipper must re-fill it before probation re-admits it).

    Returns::

        {"steady_qps", "steady_latency_ms",       # pass 1
         "qps", "latency_ms",                     # pass 2, whole run
         "during_failover_ms",                    # p50/p95/p99 of requests
                                                  # overlapping the outage
         "during_failover_samples",
         "retries", "hedges", "hedge_wins",       # router deltas, pass 2
         "failed", "shed", "errors",
         "replicas", "connections", "readmitted"}

    With ``verify=True`` the run asserts (a) zero dropped requests in
    either pass — the headline zero-failures guarantee — and (b)
    served answers bit-identical to the artifact queried directly.
    """
    import threading

    from ..cluster import serve_replicated
    from ..server.client import run_load
    from ..stats import percentiles

    rk: Dict[str, object] = dict(
        health_interval_s=0.1,
        probation_delay_s=0.3,
        eject_after=2,
        request_timeout_s=2.0,
        hedge_after_s=0.05,
        backoff_base_s=0.01,
    )
    rk.update(router_kwargs or {})
    server = serve_replicated(
        artifact_path, replicas=replicas, sync_interval_s=0.2, **rk
    )
    try:
        host, port = server.address
        router = server.router

        steady = run_load(
            host, port, pairs, connections=connections, pipeline=pipeline
        )
        if verify and steady.errors:
            raise RuntimeError(f"steady load run failed: {steady.first_error}")
        base = router.stats()
        kill_at_s = steady.wall_s * kill_at_frac
        victim = server.replicas[0]

        outage_window = [0.0, 0.0]
        chaos_error: List[BaseException] = []

        def do_chaos() -> None:
            if kill_at_s > 0:
                time.sleep(kill_at_s)
            outage_window[0] = time.perf_counter()
            try:
                victim.kill()
                if restart:
                    # Long enough for ejection to land; the restarted
                    # process comes back *blank* and must bootstrap
                    # from the shipper before it is routable again.
                    time.sleep(max(0.2, steady.wall_s * 0.2))
                    victim.restart()
            except BaseException as exc:  # pragma: no cover - harness bug
                chaos_error.append(exc)
                return
            outage_window[1] = time.perf_counter()

        chaos = threading.Thread(target=do_chaos, name="repro-chaos-kill")
        chaos.start()
        report = run_load(
            host,
            port,
            pairs,
            connections=connections,
            pipeline=pipeline,
            keep_samples=True,
        )
        chaos.join()
        if chaos_error:
            raise chaos_error[0]
        if verify and report.errors:
            raise RuntimeError(
                f"load run dropped requests during failover: "
                f"{report.first_error}"
            )

        after = router.stats()
        t0, t1 = outage_window
        # Same overlap rule as measure_live_swap: a request "saw" the
        # outage when [send, completion] overlapped the kill→restart
        # window — retried slices complete after it but carry the
        # stall in their latency.
        during = [
            lat
            for stamp, lat in report.samples
            if stamp >= t0 and stamp - lat <= t1
        ]

        readmitted: Optional[bool] = None
        if restart:
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if len(router.health.routable()) == replicas:
                    break
                time.sleep(0.05)
            readmitted = len(router.health.routable()) == replicas

        doc: Dict[str, object] = {
            "steady_qps": steady.qps,
            "steady_latency_ms": dict(steady.latency_ms),
            "qps": report.qps,
            "latency_ms": dict(report.latency_ms),
            "outage_s": t1 - t0,
            "during_failover_samples": len(during),
            "during_failover_ms": {
                k: v * 1000.0 for k, v in percentiles(during).items()
            } if during else {},
            "retries": after["retries"] - base["retries"],
            "hedges": after["hedges"] - base["hedges"],
            "hedge_wins": after["hedge_wins"] - base["hedge_wins"],
            "failed": after["failed"] - base["failed"],
            "shed": after["shed"] - base["shed"],
            "errors": steady.errors + report.errors,
            "replicas": replicas,
            "connections": connections,
            "readmitted": readmitted,
            "restarts": victim.restarts,
        }
        if verify:
            # The acceptance bar: answers served through the tier —
            # including any answered by the re-admitted replica — must
            # be bit-identical to the artifact queried directly.
            from ..serialization import load_artifact
            from ..server.client import ReachClient

            direct = load_artifact(artifact_path)
            sample = list(pairs[: min(len(pairs), 4000)])
            with ReachClient(host, port) as client:
                served = client.query_batch(sample)
            expected = [bool(a) for a in direct.query_batch(sample)]
            if served != expected:
                bad = sum(1 for a, b in zip(served, expected) if a != b)
                raise AssertionError(
                    f"post-failover answers diverge from the artifact "
                    f"({bad}/{len(sample)} pairs)"
                )
            doc["verified_pairs"] = len(sample)
        return doc
    finally:
        server.close()


def prepare_workloads(
    graph: DiGraph, kinds: Sequence[str], queries: int, seed: int = 7
) -> List[Workload]:
    """Generate the requested workloads once for a dataset."""
    out: List[Workload] = []
    for kind in kinds:
        if kind == "equal":
            out.append(equal_workload(graph, queries, seed=seed))
        elif kind == "random":
            out.append(random_workload(graph, queries, seed=seed + 1))
        else:
            raise ValueError(f"unknown workload kind {kind!r}")
    return out


#: Methods whose constructors accept the kernel ``backend=`` knob (and,
#: for DL, ``workers=``); the harness only injects the overrides here so
#: the remaining baselines keep their exact signatures.
BACKEND_METHODS = frozenset({"DL", "HL", "GL", "PL"})
WORKER_METHODS = frozenset({"DL"})


def run_dataset(
    dataset: str,
    methods: Sequence[str],
    workload_kinds: Sequence[str] = ("equal",),
    queries: int = 10_000,
    budgets: Optional[Dict[str, BuildBudget]] = None,
    query_repeats: int = 3,
    graph: Optional[DiGraph] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    through_artifact: bool = False,
    through_server: bool = False,
    server_workers: int = 0,
    server_window_s: float = 0.001,
    server_live: bool = False,
    live_updates: int = 32,
) -> List[RunResult]:
    """Run every method on one dataset, sharing workloads.

    ``backend`` / ``workers`` are forwarded to the kernel-aware methods
    (:data:`BACKEND_METHODS` / :data:`WORKER_METHODS`); labels and
    answers are backend-invariant, so overriding them changes timings
    only.  ``through_artifact`` reroutes the query measurements through
    a saved-and-reloaded binary artifact (the serve lifecycle);
    ``through_server`` goes further and drives them through a live TCP
    server (``server_workers`` answer processes, micro-batching window
    ``server_window_s``), reporting client-side latency percentiles
    and queries/second.
    """
    if graph is None:
        graph = load(dataset)
    workloads = prepare_workloads(graph, workload_kinds, queries)
    budgets = budgets or {}
    results: List[RunResult] = []
    for method in methods:
        budget = budgets.get(method)
        key = method.upper()
        extra: Dict[str, object] = {}
        if backend is not None and key in BACKEND_METHODS:
            extra["backend"] = backend
        if workers is not None and key in WORKER_METHODS:
            extra["workers"] = workers
        if extra:
            budget = BuildBudget(
                time_s=budget.time_s if budget else BuildBudget().time_s,
                params={**(budget.params if budget else {}), **extra},
            )
        runner = MethodRun(
            method,
            budget,
            through_artifact=through_artifact,
            through_server=through_server,
            server_workers=server_workers,
            server_window_s=server_window_s,
            server_live=server_live,
            live_updates=live_updates,
        )
        results.append(runner.execute(dataset, graph, workloads, query_repeats))
    return results


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_cell(value: Optional[float], status: str, digits: int = 1) -> str:
    if status != "ok" or value is None:
        return "—"
    if value >= 10_000:
        return f"{value:,.0f}"
    return f"{value:.{digits}f}"


def render_table(
    results: List[RunResult],
    metric: str,
    workload: str = "equal",
    title: str = "",
) -> str:
    """Render results as a fixed-width text table (datasets × methods).

    ``metric`` is one of ``query`` (ms/batch), ``construction`` (ms) or
    ``index_size`` (thousands of stored integers).
    """
    datasets: List[str] = []
    methods: List[str] = []
    for r in results:
        if r.dataset not in datasets:
            datasets.append(r.dataset)
        if r.method not in methods:
            methods.append(r.method)
    cell: Dict[Tuple[str, str], str] = {}
    for r in results:
        if metric == "query":
            value = r.query_ms.get(workload)
        elif metric == "construction":
            value = None if r.build_s is None or not r.ok else r.build_s * 1000.0
        elif metric == "index_size":
            value = None if r.index_size_ints is None else r.index_size_ints / 1000.0
        else:
            raise ValueError(f"unknown metric {metric!r}")
        cell[(r.dataset, r.method)] = _fmt_cell(value, r.status)

    width0 = max([len("Dataset")] + [len(d) for d in datasets]) + 2
    widths = [max(len(m), 8) + 2 for m in methods]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = "Dataset".ljust(width0) + "".join(
        m.rjust(w) for m, w in zip(methods, widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for d in datasets:
        row = d.ljust(width0) + "".join(
            cell.get((d, m), "—").rjust(w) for m, w in zip(methods, widths)
        )
        lines.append(row)
    return "\n".join(lines)
