"""Markdown report generation for experiment results.

`render_table` (text) serves the terminal; this module turns the same
:class:`~repro.bench.harness.RunResult` lists into Markdown tables and
a paper-vs-measured summary block, which is how EXPERIMENTS.md stays
regenerable instead of hand-maintained.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .harness import RunResult

__all__ = ["markdown_table", "completion_pattern", "speedup_summary"]


def _fmt(value: Optional[float], status: str, digits: int = 1) -> str:
    if status != "ok" or value is None:
        return "—"
    if value >= 10_000:
        return f"{value:,.0f}"
    return f"{value:.{digits}f}"


def markdown_table(
    results: List[RunResult], metric: str, workload: str = "equal"
) -> str:
    """Render results as a GitHub-flavoured Markdown table."""
    datasets: List[str] = []
    methods: List[str] = []
    for r in results:
        if r.dataset not in datasets:
            datasets.append(r.dataset)
        if r.method not in methods:
            methods.append(r.method)
    cell: Dict[Tuple[str, str], str] = {}
    for r in results:
        if metric == "query":
            value = r.query_ms.get(workload)
        elif metric == "construction":
            value = None if r.build_s is None or not r.ok else r.build_s * 1000.0
        elif metric == "index_size":
            value = None if r.index_size_ints is None else r.index_size_ints / 1000.0
        else:
            raise ValueError(f"unknown metric {metric!r}")
        cell[(r.dataset, r.method)] = _fmt(value, r.status)

    lines = ["| Dataset | " + " | ".join(methods) + " |"]
    lines.append("|" + "---|" * (len(methods) + 1))
    for d in datasets:
        row = [d] + [cell.get((d, m), "—") for m in methods]
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def completion_pattern(results: List[RunResult], method: str) -> Dict[str, bool]:
    """``{dataset: completed?}`` for one method — the DNF fingerprint."""
    return {r.dataset: r.ok for r in results if r.method == method}


def speedup_summary(
    results: List[RunResult],
    baseline: str,
    target: str,
    metric: str = "construction",
    workload: str = "equal",
) -> Optional[float]:
    """Geometric-mean speedup of ``target`` over ``baseline``.

    Only datasets where both methods completed contribute.  Returns
    ``None`` when there is no common completed dataset.
    """
    def value_of(r: RunResult) -> Optional[float]:
        if not r.ok:
            return None
        if metric == "construction":
            return r.build_s
        if metric == "query":
            return r.query_ms.get(workload)
        if metric == "index_size":
            return float(r.index_size_ints or 0)
        raise ValueError(f"unknown metric {metric!r}")

    by_key: Dict[Tuple[str, str], Optional[float]] = {
        (r.dataset, r.method): value_of(r) for r in results
    }
    ratios: List[float] = []
    for (dataset, method), value in by_key.items():
        if method != baseline or value is None or value <= 0:
            continue
        other = by_key.get((dataset, target))
        if other is not None and other > 0:
            ratios.append(value / other)
    if not ratios:
        return None
    product = 1.0
    for r in ratios:
        product *= r
    return product ** (1.0 / len(ratios))
