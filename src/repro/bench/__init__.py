"""Benchmark harness and per-table experiment specs."""

from .harness import BuildBudget, MethodRun, RunResult, render_table, run_dataset
from .experiments import EXPERIMENTS, PAPER_METHODS, Experiment, get_experiment

__all__ = [
    "BuildBudget",
    "MethodRun",
    "RunResult",
    "render_table",
    "run_dataset",
    "EXPERIMENTS",
    "PAPER_METHODS",
    "Experiment",
    "get_experiment",
]
