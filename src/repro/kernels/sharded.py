"""Multi-core sharded Distribution-Labeling construction.

Algorithm 2 looks sequential — hop ``i``'s pruned sweeps consult the
labels of every higher-ranked hop — but the labeling it produces is the
*canonical* one: hop ``i`` lands in ``Lin(w)`` iff ``vi`` reaches ``w``
and no higher-ranked vertex lies on any ``vi -> w`` path.  That
characterization admits a batch-synchronous parallelization (the
local-sweep / global-clean scheme of the parallel pruned-landmark
literature):

1. Split the rank order into contiguous **batches**.  All hops before
   the current batch are *committed* — their labels are final.
2. **Workers** run each batch hop's two pruned sweeps against the
   committed labels only, producing *tentative* sets
   ``F_i = {w : vi -> w, no committed hop covers (vi, w)}`` (forward)
   and ``R_i`` (reverse).  Hops are dealt to workers in contiguous
   slices of the order.
3. The coordinator **cleans** intra-batch redundancy: entry ``(i, w)``
   survives iff no batch hop ``j < i`` has ``vj ∈ F_i`` and ``w ∈ F_j``.
   For pairs uncovered by committed hops, ``vj ∈ F_i ⇔ vi -> vj`` and
   ``w ∈ F_j ⇔ vj -> w`` (coverage of either sub-pair would imply
   coverage of ``(i, w)``), so this test is exactly "some higher-ranked
   batch hop lies between" — the canonical condition.  The cleaned
   entries are committed, broadcast, and applied by every worker.

The result is **bit-identical to the serial construction** for any
batch size and worker count (property-tested in ``tests/kernels/``).
Workers are forked processes (the graph is inherited copy-on-write, so
nothing large is pickled); per batch the IPC is just the tentative and
cleaned label entries.  On platforms without ``fork`` the builder falls
back to in-process execution of the same batch pipeline (still
bit-identical, no parallelism) with a ``RuntimeWarning``.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Sequence, Tuple

__all__ = ["distribute_labels_sharded", "SHARD_BATCH"]

#: Hops per synchronization round.  Larger batches amortize IPC and
#: cleaning overhead; the cleaning pass is exact for any size.
SHARD_BATCH = 256


def _tentative_sweep(
    start: int,
    prune: frozenset,
    side_labels: List[List[int]],
    adj: Sequence[Sequence[int]],
    vis: List[int],
    stamp: int,
) -> List[int]:
    """One pruned BFS against committed labels; returns the kept set."""
    kept: List[int] = []
    kap = kept.append
    frontier = [start]
    fap = frontier.append
    vis[start] = stamp
    if prune:
        disjoint = prune.isdisjoint
        for w in frontier:
            if not disjoint(side_labels[w]):
                continue
            kap(w)
            for x in adj[w]:
                if vis[x] != stamp:
                    vis[x] = stamp
                    fap(x)
    else:
        for w in frontier:
            kap(w)
            for x in adj[w]:
                if vis[x] != stamp:
                    vis[x] = stamp
                    fap(x)
    return kept


class _BatchState:
    """Committed label state + the per-batch tentative machinery.

    Used identically by the coordinator (for cleaning/committing) and
    by each worker (for pruned tentative sweeps), so both sides apply
    commits through the same code path.
    """

    def __init__(self, n: int, out_adj, in_adj) -> None:
        self.n = n
        self.out_adj = out_adj
        self.in_adj = in_adj
        self.lout: List[List[int]] = [[] for _ in range(n)]
        self.lin: List[List[int]] = [[] for _ in range(n)]
        self.vis = [-1] * n
        self.stamp = -1

    def tentative(self, work: List[Tuple[int, int]]):
        """Tentative ``(hop, F, R)`` triples for a slice of batch hops."""
        out = []
        for hop, vi in work:
            self.stamp += 1
            fwd = _tentative_sweep(
                vi, frozenset(self.lout[vi]), self.lin, self.out_adj, self.vis, self.stamp
            )
            self.stamp += 1
            rev = _tentative_sweep(
                vi, frozenset(self.lin[vi]), self.lout, self.in_adj, self.vis, self.stamp
            )
            out.append((hop, fwd, rev))
        return out

    def commit(self, cleaned: List[Tuple[int, List[int], List[int]]]) -> None:
        """Apply cleaned batch entries (hops arrive in ascending order)."""
        lin, lout = self.lin, self.lout
        for hop, fwd, rev in cleaned:
            for w in fwd:
                lin[w].append(hop)
            for u in rev:
                lout[u].append(hop)


def _clean_side(
    batch_vertices: List[int], tentative: List[List[int]]
) -> List[List[int]]:
    """Drop intra-batch-covered entries from one side's tentative sets.

    ``tentative[i]`` is hop ``i``'s kept set (ascending batch position);
    entry ``w`` of set ``i`` is dropped iff some ``j < i`` has
    ``batch_vertices[j] ∈ tentative[i]`` and ``w ∈ tentative[j]``.
    Membership masks are per-vertex bigints over batch positions.
    """
    seen_bits: Dict[int, int] = {}
    cleaned: List[List[int]] = []
    for i, kept in enumerate(tentative):
        kept_set = set(kept)
        jmask = 0
        for j in range(i):
            if batch_vertices[j] in kept_set:
                jmask |= 1 << j
        if jmask:
            get = seen_bits.get
            cleaned.append([w for w in kept if not (get(w, 0) & jmask)])
        else:
            cleaned.append(list(kept))
        bit = 1 << i
        for w in kept:
            seen_bits[w] = seen_bits.get(w, 0) | bit
    return cleaned


def _clean_batch(work, replies):
    """Cleaned ``(hop, F, R)`` triples for one whole batch."""
    replies = sorted(replies)  # ascending hop
    batch_vertices = [vi for _, vi in work]
    fwd_clean = _clean_side(batch_vertices, [f for _, f, _ in replies])
    rev_clean = _clean_side(batch_vertices, [r for _, _, r in replies])
    return [
        (hop, fwd_clean[i], rev_clean[i])
        for i, (hop, _, _) in enumerate(replies)
    ]


def _worker_main(conn, n, out_adj, in_adj):  # pragma: no cover - subprocess
    state = _BatchState(n, out_adj, in_adj)
    while True:
        msg = conn.recv()
        kind = msg[0]
        if kind == "work":
            conn.send(state.tentative(msg[1]))
        elif kind == "commit":
            state.commit(msg[1])
        else:
            conn.close()
            return


def _chunk_evenly(items, pieces: int):
    """Split ``items`` into up to ``pieces`` contiguous non-empty runs."""
    out = []
    total = len(items)
    pieces = max(1, min(pieces, total))
    base, extra = divmod(total, pieces)
    pos = 0
    for i in range(pieces):
        size = base + (1 if i < extra else 0)
        out.append(items[pos : pos + size])
        pos += size
    return out


def distribute_labels_sharded(
    labels,
    order: List[int],
    out_adj,
    in_adj,
    workers: int,
    batch_size: int = SHARD_BATCH,
) -> None:
    """Fill ``labels`` with the canonical DL labeling using ``workers``
    forked shard processes (bit-identical to the serial sweeps)."""
    import multiprocessing as mp

    n = labels.n
    hops = list(enumerate(order))
    coordinator = _BatchState(n, out_adj, in_adj)

    procs = []
    conns = []
    if workers > 1 and n:
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = None
            warnings.warn(
                "sharded construction needs the 'fork' start method; "
                "running the batch pipeline in-process",
                RuntimeWarning,
                stacklevel=2,
            )
        if ctx is not None:
            for _ in range(workers):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child, n, out_adj, in_adj),
                    daemon=True,
                )
                proc.start()
                child.close()
                procs.append(proc)
                conns.append(parent)

    try:
        for start in range(0, len(hops), max(1, batch_size)):
            batch = hops[start : start + max(1, batch_size)]
            if conns:
                slices = _chunk_evenly(batch, len(conns))
                active = conns[: len(slices)]
                for conn, piece in zip(active, slices):
                    conn.send(("work", piece))
                replies = []
                for conn in active:
                    replies.extend(conn.recv())
            else:
                replies = coordinator.tentative(batch)
                # In-process tentative sweeps must not see their own
                # uncommitted output, so tentative() never mutates
                # state; commit() below applies the cleaned entries.
            cleaned = _clean_batch(batch, replies)
            coordinator.commit(cleaned)
            for conn in conns:
                conn.send(("commit", cleaned))
    finally:
        for conn in conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()

    labels.lout = coordinator.lout
    labels.lin = coordinator.lin
