"""Vectorized NumPy kernel backend for the hot paths.

The scalar implementations in :mod:`repro.core` and
:mod:`repro.baselines` are the canonical reference: portable, dependency
free, and — thanks to the PR 1 flat-layout work — already tuned to what
CPython executes well.  This package adds a second execution backend
that runs the same algorithms as NumPy array programs over
:meth:`repro.graph.csr.CSRView.as_numpy`:

* :mod:`repro.kernels.frontier` — frontier-at-a-time (level-synchronous)
  BFS primitives: segmented CSR gathers, stamped visited arrays,
  multi-source bounded sweeps.
* :mod:`repro.kernels.distribute` — Distribution-Labeling construction
  with chunked ``uint64`` prune bitsets.
* :mod:`repro.kernels.backbone` / :mod:`repro.kernels.hl` — the SCARAB
  backbone decomposition and the HL label folds.
* :mod:`repro.kernels.grail` — GRAIL interval labelings via sorting
  instead of per-vertex DFS.
* :mod:`repro.kernels.pl` — Pruned-Landmark sweeps over padded 2-D
  label tables.
* :mod:`repro.kernels.batchquery` — the staged batch query engine
  (reflexivity / height / interval / chunked-bitset / residual probe).
* :mod:`repro.kernels.sharded` — multi-core sharded DL construction via
  ``multiprocessing`` with a batch-synchronous cleaning pass.

Every kernel is **bit-identical** to its scalar twin: same labels, same
query answers, same witnesses (property-tested in
``tests/kernels/``).  NumPy stays an *optional* dependency — when it is
missing every entry point falls back to the scalar path.

Backend selection
-----------------
Constructors accept ``backend={"auto", "python", "numpy"}``:

* ``"python"`` — always the scalar path.
* ``"numpy"`` — force the vectorized path; falls back to scalar (with a
  ``RuntimeWarning``) when NumPy is not importable.
* ``"auto"`` (default) — the vectorized path when NumPy is available
  *and* the input is large enough for array dispatch overhead to pay
  (per-algorithm thresholds below, measured in
  ``benchmarks/bench_kernels.py``).

The environment variable ``REPRO_BACKEND`` overrides the default for
the whole process (CI uses it to run the entire suite under the numpy
backend), and ``REPRO_WORKERS`` supplies a default shard count for
constructions that support ``workers=N``.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

__all__ = [
    "numpy_or_none",
    "have_numpy",
    "requested_backend",
    "resolve_backend",
    "default_workers",
    "AUTO_MIN_N",
]

#: "auto" picks the numpy backend only at or above this vertex count —
#: below it, per-call array dispatch overhead outweighs the vectorized
#: inner loops (measured in benchmarks/bench_kernels.py, the
#: "backend crossover" sweep: scalar wins clearly at n=256, the paths
#: cross between n=512 and n=2048 depending on density).
AUTO_MIN_N = 1024

_BACKENDS = ("auto", "python", "numpy")


def numpy_or_none():
    """The :mod:`numpy` module, or ``None`` when unavailable.

    Central import point so tests can shim NumPy away in one place.
    """
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised via import shim
        return None
    return numpy


def have_numpy() -> bool:
    """Whether the vectorized backend can run at all."""
    return numpy_or_none() is not None


def requested_backend(backend: Optional[str]) -> str:
    """The caller's request after the ``REPRO_BACKEND`` default: one of
    ``"auto"``, ``"python"``, ``"numpy"`` (not yet availability-resolved).
    """
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND") or "auto"
    backend = backend.lower()
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    return backend


def resolve_backend(
    backend: Optional[str],
    n: int = 0,
    auto_min_n: int = AUTO_MIN_N,
) -> str:
    """Resolve a ``backend`` parameter to ``"python"`` or ``"numpy"``.

    ``None`` defers to the ``REPRO_BACKEND`` environment variable and
    then to ``"auto"``.  ``"numpy"`` degrades to ``"python"`` with a
    warning when NumPy is missing — a forced backend should never turn
    a working build into a crash.
    """
    backend = requested_backend(backend)
    if backend == "python":
        return "python"
    if numpy_or_none() is None:
        if backend == "numpy":
            warnings.warn(
                "backend='numpy' requested but NumPy is not importable; "
                "falling back to the scalar backend",
                RuntimeWarning,
                stacklevel=2,
            )
        return "python"
    if backend == "numpy":
        return "numpy"
    return "numpy" if n >= auto_min_n else "python"


def default_workers() -> int:
    """Shard count from ``REPRO_WORKERS`` (default 1 = serial)."""
    raw = os.environ.get("REPRO_WORKERS", "1")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1
