"""Frontier-at-a-time BFS primitives over NumPy CSR arrays.

The scalar sweeps walk one vertex at a time; the kernels here advance a
whole frontier per step:

* :func:`segmented_gather` — the core CSR expansion: concatenate the
  adjacency runs of many sources in one shot (``np.repeat`` for the
  per-source offsets plus a ramp for the within-run positions).
* :func:`Stamped` — a reusable visited array where "clearing" is a
  stamp bump, mirroring the scalar stamped-visited idiom.
* :func:`bfs_levels` — level-synchronous single-source BFS with an
  optional per-level keep mask (the pruned sweeps pass one).
* :func:`multi_source_within` — bounded-depth multi-source BFS that
  returns the ``(source, vertex)`` reach pairs, used by the backbone
  kernels where the scalar code runs one ``_bounded_bfs`` per vertex.
* :class:`HeightLevels` — vertices grouped by longest-path-to-sink
  height, for reverse-level sweeps (GRAIL ``low`` values, the query
  engine's level filter).  Heights themselves come from
  :func:`repro.kernels.grail.compute_heights`, which is shared with the
  scalar backend and therefore pure Python.

Everything in this module assumes ``int64`` offsets/targets as produced
by :meth:`repro.graph.csr.CSRView.as_numpy` on 64-bit platforms.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "segmented_gather",
    "segment_starts",
    "Stamped",
    "bfs_levels",
    "multi_source_within",
    "compute_heights_numpy",
    "hashset_build",
    "hashset_slot",
    "hashset_contains",
    "HASHSET_GROWTH",
    "HeightLevels",
]


def segment_starts(lengths):
    """Exclusive prefix sum of ``lengths`` (= start of each segment)."""
    csum = np.cumsum(lengths)
    return csum - lengths, int(csum[-1]) if len(lengths) else 0


def segmented_gather(offsets, targets, sources):
    """Concatenated adjacency of ``sources``.

    Returns ``(seg, values)`` where ``values`` is the concatenation of
    ``targets[offsets[s]:offsets[s+1]]`` for each ``s`` in order and
    ``seg[i]`` is the index *into sources* owning ``values[i]``.
    """
    lens = offsets[sources + 1] - offsets[sources]
    starts, total = segment_starts(lens)
    if not total:
        empty = np.empty(0, dtype=targets.dtype)
        return empty, empty
    ramp = np.arange(total, dtype=np.int64) - np.repeat(starts, lens)
    values = targets[np.repeat(offsets[sources], lens) + ramp]
    seg = np.repeat(np.arange(len(sources), dtype=np.int64), lens)
    return seg, values


class Stamped:
    """Visited marks retired in O(1) by bumping a stamp."""

    __slots__ = ("marks", "stamp")

    def __init__(self, n: int) -> None:
        self.marks = np.full(n, -1, dtype=np.int64)
        self.stamp = -1

    def next_sweep(self) -> int:
        self.stamp += 1
        return self.stamp

    def unseen(self, vertices):
        """Deduplicated vertices not yet seen this sweep; marks them."""
        cand = vertices[self.marks[vertices] != self.stamp]
        if len(cand) > 1:
            cand = np.unique(cand)
        self.marks[cand] = self.stamp
        return cand


def bfs_levels(offsets, targets, source: int, visited: Stamped, keep_fn=None):
    """Level-synchronous BFS from ``source``.

    Yields one array of newly discovered vertices per level (the source
    itself first).  ``keep_fn(frontier) -> bool mask`` filters which
    frontier vertices are *expanded* (the pruned sweeps label exactly
    the kept vertices); pruned vertices still count as visited, matching
    the scalar sweeps.
    """
    visited.next_sweep()
    frontier = np.array([source], dtype=np.int64)
    visited.marks[frontier] = visited.stamp
    while len(frontier):
        if keep_fn is not None:
            frontier = frontier[keep_fn(frontier)]
            if not len(frontier):
                return
        yield frontier
        _, nxt = segmented_gather(offsets, targets, frontier)
        frontier = visited.unseen(nxt) if len(nxt) else nxt


#: Per-level raw-path budget for :func:`multi_source_within`.  Below it
#: duplicate paths are carried along and deduplicated once at the end
#: (no per-level sort at all); above it the level is compacted so a
#: hub-heavy expansion cannot run away quadratically.
_RAW_LEVEL_BUDGET = 1 << 22


def multi_source_within(offsets, targets, sources, depth: int, n: int, levels=False):
    """All ``(source-index, vertex)`` pairs within ``depth`` steps.

    The scalar twin runs one ``_bounded_bfs`` per source; this expands
    every source's frontier together.  For the small depths the
    backbone kernels use (ε ≤ 3) it is cheaper to enumerate raw *paths*
    — duplicates included — and sort once at the end than to
    deduplicate every level; a level whose raw frontier outgrows
    ``_RAW_LEVEL_BUDGET`` is compacted in place, which bounds the
    worst case without changing the result.  The source itself
    (distance 0) is *not* reported, matching the ``x != b`` / ``d == 0``
    exclusions at every scalar call site.

    Returns ``(src_idx, vertex)`` arrays sorted by ``(src_idx, vertex)``;
    with ``levels=True`` a third array carries each pair's BFS level
    (1-based, the minimum over all paths).
    """
    sources = np.asarray(sources, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    if not len(sources):
        return (empty, empty, empty) if levels else (empty, empty)
    raw_keys = []
    seg = np.arange(len(sources), dtype=np.int64)
    frontier = sources
    for level in range(1, depth + 1):
        if not len(frontier):
            break
        gseg, values = segmented_gather(offsets, targets, frontier)
        if not len(values):
            break
        seg = seg[gseg]
        frontier = values
        raw_keys.append((seg * n + frontier) * (depth + 1) + level)
        if len(frontier) > _RAW_LEVEL_BUDGET and level < depth:
            keys = np.unique(seg * n + frontier)
            seg = keys // n
            frontier = keys % n
    if not raw_keys:
        return (empty, empty, empty) if levels else (empty, empty)
    keys = np.sort(np.concatenate(raw_keys)) if len(raw_keys) > 1 else np.sort(raw_keys[0])
    pairs = keys // (depth + 1)
    # First occurrence per pair carries the minimum level.
    first = np.ones(len(pairs), dtype=bool)
    first[1:] = pairs[1:] != pairs[:-1]
    pairs = pairs[first]
    # Drop distance-0 self pairs re-reached around a cycle (DAG inputs
    # never produce them, but the contract excludes the source anyway).
    src = pairs // n
    vert = pairs % n
    not_self = vert != sources[src]
    if not not_self.all():
        first_keys = keys[first][not_self]
        src, vert = src[not_self], vert[not_self]
    else:
        first_keys = keys[first]
    if levels:
        return src, vert, first_keys % (depth + 1)
    return src, vert


def compute_heights_numpy(np, csr_np):
    """Longest-path-to-sink heights by vectorized sink peeling.

    Bit-identical to :func:`repro.kernels.grail.compute_heights`
    (heights are a pure function of the graph): a vertex's height is
    the peel round in which its last out-neighbour finished.  Raises
    ``ValueError`` on cyclic input, like the scalar twin.
    """
    out_offsets, _, in_offsets, in_targets = csr_np
    n = len(out_offsets) - 1
    deg = (out_offsets[1:] - out_offsets[:-1]).copy()
    height = np.zeros(n, dtype=np.int64)
    current = np.nonzero(deg == 0)[0]
    done = len(current)
    level = 0
    while len(current):
        height[current] = level
        level += 1
        _, preds = segmented_gather(in_offsets, in_targets, current)
        if not len(preds):
            break
        upd, counts = np.unique(preds, return_counts=True)
        deg[upd] -= counts
        current = upd[deg[upd] == 0]
        done += len(current)
    if done != n:
        raise ValueError("interval labeling requires a DAG")
    return height


# ----------------------------------------------------------------------
# Open-addressing int32 membership set (shared by the batch query
# engine's residual probes and the backbone domination probes).
# ----------------------------------------------------------------------
#: Slots = next power of two of this multiple of the key count.  2.0
#: bounds the load factor at 0.5 whatever the count (a smaller growth
#: can land just under a power of two and leave load ~0.75, where
#: linear-probe chains — and the scatter-insert rounds — blow up).
HASHSET_GROWTH = 2.0


def hashset_build(np, keys):
    """``(table, bits)`` for int32 ``keys`` (non-negative, unique).

    Linear probing with ``-1`` as the empty sentinel.  Insertion runs
    scatter rounds: conflicting writers land on one slot, read-back
    keeps the survivor, losers advance one slot — a handful of passes
    at this load factor, no sort.
    """
    count = len(keys)
    bits = max(int(count * HASHSET_GROWTH) - 1, 63).bit_length()
    size = 1 << bits
    table = np.full(size, -1, dtype=np.int32)
    slot = hashset_slot(np, keys, bits)
    pending = np.arange(count, dtype=np.int64)
    while len(pending):
        s = slot[pending]
        vacant = table[s] == -1
        cand = pending[vacant]
        if len(cand):
            table[slot[cand]] = keys[cand]
        placed = table[slot[pending]] == keys[pending]
        pending = pending[~placed]
        if len(pending):
            slot[pending] = (slot[pending] + 1) & (size - 1)
    return table, bits


def hashset_slot(np, keys, bits: int):
    """Fibonacci-multiply slot hash into ``2**bits`` buckets."""
    h = keys.astype(np.uint32) * np.uint32(2654435761)
    return (h >> np.uint32(32 - bits)).astype(np.int64)


def hashset_contains(np, table_bits, keys):
    """Vectorized membership probes (resolve on hit or empty slot)."""
    table, bits = table_bits
    slot = hashset_slot(np, keys, bits)
    found = np.zeros(len(keys), dtype=bool)
    active = np.arange(len(keys), dtype=np.int64)
    mask = len(table) - 1
    while len(active):
        got = table[slot[active]]
        hit = got == keys[active]
        found[active[hit]] = True
        cont = ~hit & (got != -1)
        active = active[cont]
        if len(active):
            slot[active] = (slot[active] + 1) & mask
    return found


class HeightLevels:
    """Vertices grouped by height, for reverse-level sweeps."""

    __slots__ = ("height", "by_height", "bounds", "max_height")

    def __init__(self, height) -> None:
        self.height = height
        self.by_height = np.argsort(height, kind="stable")
        self.max_height = int(height[self.by_height[-1]]) if len(height) else 0
        self.bounds = np.searchsorted(
            height[self.by_height], np.arange(self.max_height + 2)
        )

    def level(self, h: int):
        """Vertices whose height is exactly ``h``."""
        return self.by_height[self.bounds[h] : self.bounds[h + 1]]
