"""Staged vectorized batch query engine for sealed hop labels.

The scalar batch path costs a few hundred nanoseconds per pair on the
bigint-mask layout (growing with the mask word count) and 0.4-4 µs per
pair on the arena/hybrid layout that large or sparse graphs use (``n``
above the mask limit, or density below the mask floor).  This engine
replaces both for large batches with a ladder of exact vectorized
stages, each either *certifying* some pairs (positively or negatively)
or passing them on:

1. **reflexive** — ``u == v`` answered by the scalar label test (never
   assumed true: the engine must equal ``LabelSet.query_batch`` bit for
   bit on any labels).
2. **height filter** (graph-backed) — ``height(u) <= height(v)``
   certifies non-reachability.
3. **range certificates** — per-vertex ``[min_hop, max_hop]`` rows:
   disjoint hop ranges certify negatives (this alone kills most
   negatives on every benchmark family), equal minima or maxima
   certify positives.
3b. **head bitset** — 128 bits of low hop ids per vertex, one AND over
   the survivors certifies positives.  Sample-gated: hub-concentrated
   labelings resolve most positives here, spread-out ones skip it.
4. **interval filter** (graph-backed) — GRAIL-style containment over
   the sort-based rounds of :mod:`repro.kernels.grail`; violated
   containment certifies negatives.  Sample-gated: on dense
   reachability structures it filters nothing and would be pure
   overhead.
5. **tier-2 bitset** — chunks 2..15 of the hop space (hops 128-1023) as
   a second positive certificate, sample-gated, for survivors only.
6. **residual** — the undecided rest, by exact label intersection:
   a scalar loop for tiny counts; otherwise each pair expands its
   *smaller* label and probes the other side's ``(vertex, hop)``
   membership through an open-addressing hash table (one gather per
   element in the common case — binary search pays ~log(len) gathers).
   When the packed keys overflow int32 the probe falls back to a
   lock-step binary search of the arena slices.

Every stage is exact, so stage and strategy selection can never change
answers — only timings.  Thresholds were tuned with
``benchmarks/bench_kernels.py`` (see ``BENCH_kernels.json``) and the
committed ``BENCH_vectorized_*.json`` artifacts.
"""

from __future__ import annotations

import random
from itertools import chain
from typing import List

from . import numpy_or_none

__all__ = ["BatchQueryEngine", "engine_query_batch", "compile_graph_aux"]

#: Below this many pairs the fixed cost of array conversion and stage
#: dispatch outweighs the vectorized inner loops; callers keep the
#: scalar path.
_MIN_BATCH = 4096

#: Bigint-mask-sealed labels only switch to the engine at this many
#: vertices: below it one C-level AND per pair is already optimal (the
#: ``engine_vs_masks`` sweep crosses between n=2048 and n=4096).
_MASK_LABELS_MIN_N = 4096

#: Head bitset: 2 uint64 words per vertex = hop ids below 128.
_HEAD_CHUNKS = 2
#: Tier-2 bitset: chunks 2..15 = hop ids 128..1023.
_TIER2_CHUNKS = 14
_TIER2_BASE = _HEAD_CHUNKS * 64

#: Interval rounds built for the negative filter.  Five rounds: each
#: surviving-pair test is two gathers, and on the dense families the
#: extra rounds keep shaving pairs off the (much more expensive)
#: residual stage.
_IV_ROUNDS = 5

#: Sample size for the per-workload stage decisions.
_SAMPLE = 512

#: Minimum sampled kill rate for the interval filter to run in full.
_IV_MIN_KILL = 0.10

#: Minimum sampled decisiveness (certified fraction) for the height and
#: range stages to run in full — all-positive workloads skip both.
_STAGE_MIN_DECIDE = 0.05

#: Minimum sampled hit rate for the head bitset to run in full; below
#: it the batch goes straight to the residual (labelings whose common
#: hops are spread across the rank space gain nothing from bitsets).
_HEAD_MIN_HIT = 0.05

#: Minimum sampled hit rate for the tier-2 bitset to run in full: the
#: full gather costs ~0.2 ms per 1000 undecided pairs, so a marginal
#: hit rate loses to just running the residual on those pairs.
_TIER2_MIN_HIT = 0.25

#: Residual counts at or below this go through the scalar loop (per
#: pair ~1 µs) instead of the vectorized paths (fixed ~0.4 ms).
_SCALAR_RESIDUAL = 512

#: Hash-probe membership tables pack ``vertex * n + hop`` into int32 —
#: usable while n² fits a signed 32-bit key.
_HASH_MAX_N = 46340

#: Early-exit probing: the first columns of each pair's smaller label
#: are probed one at a time (positives usually resolve within a couple
#: of hops); pairs still undecided after this many columns fall through
#: to one batched probe of their remaining elements.
_EARLY_COLUMNS = 4
#: Column 0 is always probed alone; further per-column rounds only pay
#: when they actually retire pairs, so they require this hit rate.
_EARLY_MIN_HIT = 0.2

_BIG = 1 << 60


class BatchQueryEngine:
    """Immutable query accelerator snapshot of one sealed ``LabelSet``.

    Build cost is one pass over the labels plus (when ``graph`` is
    given) heights and ``_IV_ROUNDS`` interval rounds — amortized over
    every subsequent batch.  The engine snapshots the arena, so it must
    be discarded when the labels are resealed or mutated; ``stale()``
    checks the :class:`LabelSet` mutation generation.
    """

    MIN_BATCH = _MIN_BATCH

    def __init__(self, np, labels, graph=None, aux=None) -> None:
        self.np = np
        self.labels = labels
        self.generation = labels.generation
        n = labels.n
        self.n = n
        oh, oo, ih, io = labels.arena()
        # Offsets must be int64 for the index arithmetic below;
        # ``astype(copy=False)`` keeps artifact-loaded int64 mmaps
        # zero-copy and upcasts everything else (n+1 entries — tiny).
        self.OO = self._offsets_np(oo)
        self.IO = self._offsets_np(io)
        # Hop arenas: mmap-backed ndarrays are used in place (residual
        # probes gather from them directly, any int dtype works), while
        # ``array('l')`` arenas from live builds get the historical
        # int32 copy — residual probes are memory bound and hop ids
        # always fit (they index vertices/ranks).
        self.OH = self._hops_np(oh)
        self.IH = self._hops_np(ih)

        # Per-side empty-label sentinels must never collide across
        # sides: an empty label has to certify *negative* through range
        # disjointness, and equal sentinels would satisfy the positive
        # min/max-equality test first.
        self.range_out = self._minmax(self.OH, self.OO, _BIG, -1)
        self.range_in = self._minmax(self.IH, self.IO, _BIG - 1, -2)
        self.head_out = self._bitset(self.OH, self.OO, 0, _HEAD_CHUNKS)
        self.head_in = self._bitset(self.IH, self.IO, 0, _HEAD_CHUNKS)
        self.tier2_out = self._bitset(self.OH, self.OO, _TIER2_BASE, _TIER2_CHUNKS)
        self.tier2_in = self._bitset(self.IH, self.IO, _TIER2_BASE, _TIER2_CHUNKS)
        self._hash_tables = {}  # side -> (table, bits), built lazily

        self.height = None
        self.rounds = []
        if aux is not None:
            # Precompiled height/interval certificates (artifact serve
            # path — no graph in memory): adopt the flat arrays as-is.
            height, rounds = aux
            if height is not None and len(height) == n:
                self.height = np.asarray(height)
            for low, post in rounds or ():
                self.rounds.append((np.asarray(low), np.asarray(post)))
        elif graph is not None and graph.n == n:
            try:
                self._build_graph_aux(graph)
            except ValueError:
                # Cyclic input: no topological aux; label stages still apply.
                self.height = None
                self.rounds = []

    # ------------------------------------------------------------------
    # Build helpers
    # ------------------------------------------------------------------
    def _offsets_np(self, offs):
        np = self.np
        if isinstance(offs, np.ndarray):
            return offs.astype(np.int64, copy=False)
        return np.frombuffer(offs, dtype=np.dtype(f"i{offs.itemsize}")).astype(
            np.int64
        )

    def _hops_np(self, hops):
        np = self.np
        if isinstance(hops, np.ndarray):
            return hops
        if not len(hops):
            return np.empty(0, np.int32)
        # The arena is array('l'): derive the dtype from the platform
        # item size (4 bytes on LLP64 Windows), as CSRView.as_numpy does.
        return np.frombuffer(hops, dtype=np.dtype(f"i{hops.itemsize}")).astype(
            np.int32
        )

    def _minmax(self, hops, offs, empty_min: int, empty_max: int):
        """Per-vertex ``[min, max]`` rows with the side's empty sentinels."""
        np = self.np
        sig = np.empty((self.n, 2), dtype=np.int64)
        lo = offs[:-1]
        hi = offs[1:]
        empty = lo == hi
        if len(hops):
            sig[:, 0] = np.where(empty, empty_min, hops[np.minimum(lo, len(hops) - 1)])
            sig[:, 1] = np.where(empty, empty_max, hops[np.maximum(hi - 1, 0)])
        else:
            sig[:, 0] = empty_min
            sig[:, 1] = empty_max
        return sig

    def _bitset(self, hops, offs, base: int, chunks: int):
        """``(n, chunks)`` bit rows over hop ids ``[base, base + 64·chunks)``."""
        np = self.np
        mask = np.zeros((self.n, chunks), dtype=np.int64)
        if len(hops):
            sel = (hops >= base) & (hops < base + chunks * 64)
            if sel.any():
                rows = np.repeat(
                    np.arange(self.n, dtype=np.int64), offs[1:] - offs[:-1]
                )[sel]
                vals = hops[sel].astype(np.int64) - base
                np.bitwise_or.at(
                    mask.reshape(-1),
                    rows * chunks + (vals >> 6),
                    np.int64(1) << (vals & 63),
                )
        return mask

    def _build_graph_aux(self, graph) -> None:
        np = self.np
        from .frontier import HeightLevels, compute_heights_numpy
        from .grail import interval_rounds_numpy

        csr_np = graph.csr().as_numpy()
        height = compute_heights_numpy(np, csr_np)
        self.height = height
        levels = HeightLevels(height)
        rng = random.Random(0x9E3779B1)
        self.rounds = [
            (np.asarray(low, dtype=np.int64), np.asarray(post, dtype=np.int64))
            for low, post in interval_rounds_numpy(
                np, csr_np, levels, rng, _IV_ROUNDS
            )
        ]

    # ------------------------------------------------------------------
    def stale(self, labels) -> bool:
        return labels is not self.labels or labels.generation != self.generation

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    @staticmethod
    def as_pair_arrays(np, pairs):
        """``(u, v)`` int64 arrays from a pair list or ``(P, 2)`` array."""
        if isinstance(pairs, np.ndarray):
            arr = np.ascontiguousarray(pairs, dtype=np.int64)
            return arr[:, 0].copy(), arr[:, 1].copy()
        flat = np.fromiter(
            chain.from_iterable(pairs), dtype=np.int64, count=2 * len(pairs)
        )
        return flat[0::2].copy(), flat[1::2].copy()

    def query_batch(self, pairs) -> List[bool]:
        np = self.np
        u, v = self.as_pair_arrays(np, pairs)
        res = np.zeros(len(u), dtype=bool)
        query = self.labels.query

        # Stage 1: reflexive pairs via the scalar label test.
        eq = np.nonzero(u == v)[0]
        if len(eq):
            for i, x in zip(eq.tolist(), u[eq].tolist()):
                res[i] = query(x, x)
        alive = np.nonzero(u != v)[0]

        # Stage 2: height filter (sample-gated).
        if self.height is not None and len(alive):
            sample = alive[:_SAMPLE]
            keep = self.height[u[sample]] > self.height[v[sample]]
            if 1.0 - keep.sum() / len(sample) >= _STAGE_MIN_DECIDE:
                if len(sample) == len(alive):
                    alive = alive[keep]
                else:
                    alive = alive[self.height[u[alive]] > self.height[v[alive]]]

        # Stage 3: range certificates (sample-gated).
        if len(alive):
            sample = alive[:_SAMPLE]
            so = self.range_out[u[sample]]
            si = self.range_in[v[sample]]
            positive = (so[:, 0] == si[:, 0]) | (so[:, 1] == si[:, 1])
            negative = (so[:, 0] > si[:, 1]) | (si[:, 0] > so[:, 1])
            decide = (positive | negative).sum() / len(sample)
            if decide >= _STAGE_MIN_DECIDE:
                if len(sample) != len(alive):
                    so = self.range_out[u[alive]]
                    si = self.range_in[v[alive]]
                    positive = (so[:, 0] == si[:, 0]) | (so[:, 1] == si[:, 1])
                    negative = (so[:, 0] > si[:, 1]) | (si[:, 0] > so[:, 1])
                res[alive[positive]] = True
                alive = alive[~positive & ~negative]

        # Stage 3b: head bitset certificate (sample-gated).
        if len(alive):
            alive = self._bitset_stage(
                res, u, v, alive, self.head_out, self.head_in, _HEAD_MIN_HIT
            )

        # Stage 4: interval filter (sample-gated).
        if self.rounds and len(alive):
            if self._sampled_interval_kill(u, v, alive) >= _IV_MIN_KILL:
                for low, post in self.rounds:
                    ua, va = u[alive], v[alive]
                    alive = alive[(low[va] >= low[ua]) & (post[va] <= post[ua])]
                    if not len(alive):
                        break

        # Stage 5: tier-2 bitset certificate (sample-gated).
        if len(alive):
            alive = self._bitset_stage(
                res, u, v, alive, self.tier2_out, self.tier2_in, _TIER2_MIN_HIT
            )

        # Stage 6: residual — exact intersection for what is left.
        if len(alive):
            if len(alive) <= _SCALAR_RESIDUAL:
                for i, (x, y) in zip(
                    alive.tolist(), zip(u[alive].tolist(), v[alive].tolist())
                ):
                    res[i] = query(x, y)
            else:
                hit = self._residual(u[alive], v[alive])
                res[alive[hit]] = True
        return res.tolist()

    def _bitset_stage(self, res, u, v, alive, out_bits, in_bits, min_hit):
        """Run one positive-certificate bitset stage if a sampled probe
        shows it decides at least ``min_hit`` of this workload."""
        sample = alive[:_SAMPLE]
        hit = (out_bits[u[sample]] & in_bits[v[sample]]).any(axis=1)
        if hit.sum() / len(sample) < min_hit:
            return alive
        if len(sample) == len(alive):
            hits = hit
        else:
            hits = (out_bits[u[alive]] & in_bits[v[alive]]).any(axis=1)
        res[alive[hits]] = True
        return alive[~hits]

    def _sampled_interval_kill(self, u, v, alive) -> float:
        sample = alive[:_SAMPLE]
        us, vs = u[sample], v[sample]
        keep = self.np.ones(len(sample), dtype=bool)
        for low, post in self.rounds:
            keep &= (low[vs] >= low[us]) & (post[vs] <= post[us])
        return 1.0 - keep.sum() / len(sample)

    # ------------------------------------------------------------------
    # Residual: exact per-pair intersection
    # ------------------------------------------------------------------
    def _residual(self, ur, vr):
        """Probe each pair's smaller label against the other side.

        The first ``_EARLY_COLUMNS`` label entries are probed one column
        at a time with per-pair early exit — a positive pair usually
        shares one of its first few (highest-ranked) hops, so most
        positives finish after one or two probes.  Whatever remains
        (negatives, deep positives) is expanded once and probed in one
        batch.
        """
        np = self.np
        res = np.zeros(len(ur), dtype=bool)
        alen = self.OO[ur + 1] - self.OO[ur]
        blen = self.IO[vr + 1] - self.IO[vr]
        small_b = blen <= alen
        jobs = (
            (small_b, self.IO, self.IH, "out", vr, ur),
            (~small_b, self.OO, self.OH, "in", ur, vr),
        )
        for sel, eoffs, evals, probe_side, esrc_all, ssrc_all in jobs:
            idxs = np.nonzero(sel)[0]
            if not len(idxs):
                continue
            esrc = esrc_all[idxs]
            ssrc = ssrc_all[idxs]
            start = eoffs[esrc]
            lens = eoffs[esrc + 1] - start
            # --- early-exit columns -------------------------------------
            active = np.nonzero(lens > 0)[0]
            k = 0
            while len(active) and k < _EARLY_COLUMNS:
                x = evals[start[active] + k]
                hit = self._probe_one(probe_side, ssrc[active], x)
                res[idxs[active[hit]]] = True
                rate = hit.sum() / len(active)
                k += 1
                active = active[~hit]
                if len(active):
                    active = active[lens[active] > k]
                if rate < _EARLY_MIN_HIT:
                    break  # negative-heavy: finish in one batched probe
            # --- batched tail -------------------------------------------
            if len(active):
                tail_src = esrc[active]
                tail_lens = lens[active] - k
                csum = np.cumsum(tail_lens)
                total = int(csum[-1])
                if total:
                    e_pair = np.repeat(
                        np.arange(len(active), dtype=np.int64), tail_lens
                    )
                    ramp = np.arange(total, dtype=np.int64) - np.repeat(
                        csum - tail_lens, tail_lens
                    )
                    x = evals[np.repeat(eoffs[tail_src] + k, tail_lens) + ramp]
                    hit = self._probe_one(probe_side, ssrc[active][e_pair], x)
                    got = np.bincount(e_pair[hit], minlength=len(active)) > 0
                    res[idxs[active[got]]] = True
        return res

    def _probe_one(self, probe_side, vertices, hops):
        """Membership of each ``(vertex, hop)`` in one side's labels."""
        table = self._hash_table(probe_side)
        if table is not None:
            return self._hash_contains(table, vertices, hops)
        soffs, svals = (
            (self.OO, self.OH) if probe_side == "out" else (self.IO, self.IH)
        )
        lo = soffs[vertices]
        hi = soffs[vertices + 1]
        return self._slice_contains(svals, lo, hi, hops)

    def _hash_table(self, side):
        """Lazy open-addressing ``(vertex, hop)`` membership table.

        Keys pack as ``vertex * n + hop`` into int32 (``None`` when the
        hop space is too large — callers fall back to binary search).
        Shared machinery: :func:`repro.kernels.frontier.hashset_build`.
        """
        cached = self._hash_tables.get(side)
        if cached is not None:
            return cached
        if self.n > _HASH_MAX_N or self.n == 0:
            return None
        np = self.np
        from .frontier import hashset_build

        offs, vals = (self.OO, self.OH) if side == "out" else (self.IO, self.IH)
        if not len(vals):
            return None
        rows = np.repeat(np.arange(self.n, dtype=np.int64), offs[1:] - offs[:-1])
        keys = (rows * self.n + vals).astype(np.int32)
        result = hashset_build(np, keys)
        self._hash_tables[side] = result
        return result

    def _hash_contains(self, table_bits, vertices, hops):
        """Vectorized membership probes: resolve on hit or empty slot."""
        from .frontier import hashset_contains

        keys = (vertices * self.n + hops).astype(self.np.int32)
        return hashset_contains(self.np, table_bits, keys)

    def _slice_contains(self, vals, lo, hi, x):
        """Whether sorted ``vals[lo_i:hi_i]`` contains ``x_i``, per i.

        Fixed-depth lock-step binary search: every element runs
        ``ceil(log2(max_width))`` rounds (converged elements keep
        ``lo == hi`` stable), which drops the per-round convergence
        bookkeeping entirely.
        """
        np = self.np
        nv = len(vals)
        if not nv or not len(x):
            return np.zeros(len(x), dtype=bool)
        hi_orig = hi
        lo = lo.copy()
        hi = hi.copy()
        max_width = int((hi - lo).max())
        rounds = max_width.bit_length()
        last = nv - 1
        for _ in range(rounds):
            mid = (lo + hi) >> 1
            go = (vals[np.minimum(mid, last)] < x) & (lo < hi)
            lo = np.where(go, mid + 1, lo)
            hi = np.where(go | (lo >= hi), hi, mid)
        found = lo < hi_orig
        found &= vals[np.minimum(lo, last)] == x
        return found


def compile_graph_aux(graph):
    """``(height, rounds)`` engine certificates, computed at compile time.

    The scalar twin of :meth:`BatchQueryEngine._build_graph_aux` (same
    round count, same ``random.Random`` seed, and the backends'
    interval rounds are bit-identical), runnable without NumPy — this
    is what :meth:`ReachabilityIndex.compile` bakes into a label
    artifact so the engine's height/interval stages survive losing the
    graph.  Returns ``(None, [])`` for cyclic input.
    """
    from .grail import compute_heights, interval_round_python

    try:
        height = compute_heights(graph)
    except ValueError:
        return None, []
    rng = random.Random(0x9E3779B1)
    rounds = [
        interval_round_python(graph, height, rng) for _ in range(_IV_ROUNDS)
    ]
    return height, rounds


def engine_query_batch(holder, labels, graph, pairs, aux=None):
    """Batch queries through the engine when it applies, scalar otherwise.

    ``holder`` caches the engine across batches (any object accepting a
    ``_batch_engine`` attribute).  The engine engages whenever NumPy is
    importable, the labels are sealed, and the batch is big enough to
    amortize array conversion — on the arena/hybrid layout it replaces
    per-pair probing, and on the bigint-mask layout it replaces the
    C-level AND loop (whose per-pair cost grows with the mask word
    count; the ``engine_vs_masks`` sweep in
    ``benchmarks/bench_kernels.py`` measures the engine ahead from
    n≈4096 up).

    ``aux`` supplies precompiled ``(height, interval_rounds)``
    certificates for graph-free serving (compiled artifacts); when
    given, the graph-backed stages run off those arrays and ``graph``
    is ignored.
    """
    if not hasattr(pairs, "__len__"):
        pairs = list(pairs)
    np = numpy_or_none()
    if (
        np is None
        or not labels.sealed
        or len(pairs) < _MIN_BATCH
        or (labels._out_masks is not None and labels.n < _MASK_LABELS_MIN_N)
    ):
        return labels.query_batch(pairs)
    engine = getattr(holder, "_batch_engine", None)
    if engine is None or engine.stale(labels):
        engine = BatchQueryEngine(np, labels, graph, aux=aux)
        holder._batch_engine = engine
    return engine.query_batch(pairs)
