"""Vectorized SCARAB backbone-level construction.

:func:`repro.core.backbone.build_backbone_level` spends its time in one
``_bounded_bfs`` per backbone vertex (the ``within`` sets and the
candidate edges) and per ordinary vertex (the B-sets), plus pairwise
domination probes through Python sets.  This module computes the same
objects with batched kernels:

* all bounded neighbourhoods at once via
  :func:`repro.kernels.frontier.multi_source_within`;
* the ``within`` relations stored as CSR runs plus one sorted composite
  key array (``member * B + element``), so every domination question
  becomes a vectorized membership probe via ``np.searchsorted``;
* edge domination ("does a third backbone vertex sit within ε of both
  endpoints?") expands each candidate edge by its tail's ``within-out``
  run and probes the head's ``within-in`` keys;
* B-set domination expands each vertex's candidate set against itself
  (``|cand|²`` pairs, candidate sets are tiny) and probes the same
  ``within`` keys — exactly the scalar double loop, flattened.

The cover extraction itself stays scalar: it is a cheap *sequential*
greedy pass whose output depends on processing order, and bit-identical
levels are the contract.  Everything downstream (backbone graph, B-sets)
is equal as sets/sorted lists to the scalar builder's output, so HL
labels cannot differ between backends.
"""

from __future__ import annotations

from typing import List

__all__ = ["build_backbone_level_numpy"]


def _csr_from_pairs(np, src, dst, n_src: int):
    """CSR runs (offsets into ``dst``) for pairs sorted by ``src``."""
    counts = np.bincount(src, minlength=n_src)
    offsets = np.zeros(n_src + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def _probe(np, keys, queries):
    """Membership of each query in the sorted composite-key array."""
    if not len(keys):
        return np.zeros(len(queries), dtype=bool)
    pos = np.searchsorted(keys, queries)
    pos[pos == len(keys)] = 0
    return keys[pos] == queries


#: Expansion budget (elements) per domination block; bounds transient
#: memory on dense graphs where Σ|within|·|candidates| can reach 10⁸.
_EXPAND_BUDGET = 1 << 22


def _owner_blocks(np, weights, budget: int = _EXPAND_BUDGET):
    """Contiguous owner ranges whose total expansion fits ``budget``."""
    total = int(weights.sum())
    if total <= budget:
        yield 0, len(weights)
        return
    csum = np.cumsum(weights)
    start = 0
    while start < len(weights):
        base = int(csum[start - 1]) if start else 0
        end = int(np.searchsorted(csum, base + budget, side="right"))
        end = max(end, start + 1)
        yield start, end
        start = end


def _digraph_from_edge_arrays(np, DiGraph, n: int, tails, heads):
    """A frozen :class:`DiGraph` filled from unique, (tail, head)-sorted
    edge arrays in bulk — the per-edge ``add_edge`` loop costs more than
    the whole vectorized level on dense hierarchies."""
    g = DiGraph(n)
    tail_list = tails.tolist()
    head_list = heads.tolist()
    out_bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(tails, minlength=n), out=out_bounds[1:])
    out_bounds = out_bounds.tolist()
    by_head = np.lexsort((tails, heads))
    in_tails = tails[by_head].tolist()
    in_bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(heads, minlength=n), out=in_bounds[1:])
    in_bounds = in_bounds.tolist()
    g._out = [head_list[out_bounds[v] : out_bounds[v + 1]] for v in range(n)]
    g._in = [in_tails[in_bounds[v] : in_bounds[v + 1]] for v in range(n)]
    g._edge_set = set(zip(tail_list, head_list))
    g._m = len(tail_list)
    g._frozen = True
    return g


def build_backbone_level_numpy(np, graph, eps: int, order_fn, seed: int):
    """Numpy twin of :func:`repro.core.backbone.build_backbone_level`."""
    from ..core.backbone import BackboneLevel, extract_cover
    from ..graph.digraph import DiGraph
    from .frontier import multi_source_within, segment_starts

    n = graph.n
    order = order_fn(graph, seed)
    backbone = extract_cover(graph, eps, order)
    in_backbone = np.zeros(n, dtype=bool)
    backbone_arr = np.asarray(backbone, dtype=np.int64)
    in_backbone[backbone_arr] = True
    B = len(backbone)
    to_backbone = {v: i for i, v in enumerate(backbone)}
    bidx_of = np.full(n, -1, dtype=np.int64)
    bidx_of[backbone_arr] = np.arange(B, dtype=np.int64)

    out_offsets, out_targets, in_offsets, in_targets = graph.csr().as_numpy()

    # ---- one forward sweep to eps+1 yields both the within-eps sets
    # ---- and the backbone-edge candidates (via the level tags) -------
    fsrc, fvert, flev = multi_source_within(
        out_offsets, out_targets, backbone_arr, eps + 1, n, levels=True
    )
    if len(fvert):
        keep = in_backbone[fvert]
        fsrc, fvert, flev = fsrc[keep], fvert[keep], flev[keep]

    def as_within(src, vert):
        w_offsets = _csr_from_pairs(np, src, vert, B)
        keys = src * n + vert  # sorted: pairs arrive sorted by (src, vert)
        return w_offsets, vert, keys

    wsel = flev <= eps
    wout_offs, wout_vals, wout_keys = as_within(fsrc[wsel], fvert[wsel])

    isrc, ivert = multi_source_within(in_offsets, in_targets, backbone_arr, eps, n)
    if len(ivert):
        keep = in_backbone[ivert]
        isrc, ivert = isrc[keep], ivert[keep]
    win_offs, win_vals, win_keys = as_within(isrc, ivert)

    # ---- backbone edges: the eps+1 candidates minus dominated ones ---
    def probe_maker(keys):
        """Membership probe: hash set when keys pack into int32."""
        if n <= 46340 and len(keys):
            from .frontier import hashset_build, hashset_contains

            table = hashset_build(np, keys.astype(np.int32))
            return lambda q: hashset_contains(np, table, q.astype(np.int32))
        return lambda q: _probe(np, keys, q)

    esrc, evert = fsrc, fvert
    if len(esrc):
        head_b = bidx_of[evert]
        tails = backbone_arr[esrc]
        # Edge (b, x) is dominated iff a third backbone vertex sits in
        # within_out[b] ∩ within_in[x].  Expand the smaller of the two
        # runs per edge and probe the other side's composite keys.
        out_lens = wout_offs[esrc + 1] - wout_offs[esrc]
        in_lens = win_offs[head_b + 1] - win_offs[head_b]
        dominated = np.zeros(len(esrc), dtype=bool)
        expand_out = out_lens <= in_lens
        jobs = (
            (expand_out, wout_offs, wout_vals, esrc, probe_maker(win_keys), head_b),
            (~expand_out, win_offs, win_vals, head_b, probe_maker(wout_keys), esrc),
        )
        for sel, w_offs, w_vals, expand_idx, probe_fn, probe_idx in jobs:
            edges = np.nonzero(sel)[0]
            if not len(edges):
                continue
            eidx = expand_idx[edges]
            lens = w_offs[eidx + 1] - w_offs[eidx]
            for lo, hi in _owner_blocks(np, lens):
                blens = lens[lo:hi]
                starts, total = segment_starts(blens)
                if not total:
                    continue
                ramp = np.arange(total, dtype=np.int64) - np.repeat(starts, blens)
                y = w_vals[np.repeat(w_offs[eidx[lo:hi]], blens) + ramp]
                pair = edges[lo + np.repeat(np.arange(hi - lo, dtype=np.int64), blens)]
                ok = (y != tails[pair]) & (y != evert[pair])
                hits = np.zeros(total, dtype=bool)
                if ok.any():
                    hits[ok] = probe_fn(probe_idx[pair[ok]] * n + y[ok])
                dominated[pair[hits]] = True
        edge_tail = esrc[~dominated]
        edge_head = head_b[~dominated]
    else:
        edge_tail = edge_head = np.zeros(0, dtype=np.int64)

    bg = _digraph_from_edge_arrays(np, DiGraph, B, edge_tail, edge_head)

    # ---- B-sets (Formulas 1-2) for every non-backbone vertex ---------
    plain = np.nonzero(~in_backbone)[0]

    def b_sets(offsets, targets, w_offs, w_vals) -> List[List[int]]:
        sets: List[List[int]] = [[] for _ in range(n)]
        if not len(plain):
            return sets
        src, vert = multi_source_within(offsets, targets, plain, eps, n)
        if len(vert):
            keep = in_backbone[vert]
            src, vert = src[keep], vert[keep]
        if not len(src):
            return sets
        cand_offs = _csr_from_pairs(np, src, vert, len(plain))
        # Candidate u of vertex v is dominated iff
        # u ∈ ∪ { within[x] : x ∈ cand(v) } (x = u contributes nothing:
        # within[u] never contains u).  Expanding that union costs
        # Σ|cand|·|within| — the |cand|² pairwise formulation blows up
        # on hub-adjacent vertices whose candidate sets reach the
        # thousands.  Per owner block: expand, sort the composite keys,
        # probe each candidate against its own vertex's union.
        cand_b = bidx_of[vert]
        ylens = w_offs[cand_b + 1] - w_offs[cand_b]
        weights = np.zeros(len(plain), dtype=np.int64)
        np.add.at(weights, src, ylens)
        keep_mask = np.ones(len(vert), dtype=bool)
        for lo, hi in _owner_blocks(np, weights):
            # Flat candidate range covered by owners [lo, hi).
            flo, fhi = int(cand_offs[lo]), int(cand_offs[hi])
            if flo == fhi:
                continue
            blens = ylens[flo:fhi]
            starts, total = segment_starts(blens)
            if not total:
                continue
            ramp = np.arange(total, dtype=np.int64) - np.repeat(starts, blens)
            y = w_vals[np.repeat(w_offs[cand_b[flo:fhi]], blens) + ramp]
            owner = np.repeat(src[flo:fhi], blens)
            union_keys = np.sort(owner * n + y)
            queries = src[flo:fhi] * n + vert[flo:fhi]
            keep_mask[flo:fhi] = ~_probe(np, union_keys, queries)
        kept_src = src[keep_mask]
        kept_vert = vert[keep_mask].tolist()
        bounds = _csr_from_pairs(np, kept_src, None, len(plain)).tolist()
        plain_list = plain.tolist()
        for i, v in enumerate(plain_list):
            lo, hi = bounds[i], bounds[i + 1]
            if lo != hi:
                sets[v] = kept_vert[lo:hi]  # already sorted by vertex id
        return sets

    bout = b_sets(out_offsets, out_targets, wout_offs, wout_vals)
    bin_ = b_sets(in_offsets, in_targets, win_offs, win_vals)

    return BackboneLevel(
        graph=graph,
        eps=eps,
        backbone_vertices=backbone,
        backbone_graph=bg,
        to_backbone=to_backbone,
        from_backbone=list(backbone),
        bout=bout,
        bin_=bin_,
    )
