"""GRAIL interval labelings by sorting, in scalar and vectorized form.

The original GRAIL builds each round's ``[low, post]`` intervals with a
randomized post-order DFS.  A DFS is inherently sequential, so PR 2
replaces the *ordering* with an equivalent sortable scheme shared by
both backends:

* ``height(v)`` — longest path from ``v`` to a sink.  Every edge
  ``u -> w`` has ``height[u] > height[w]``, so ranking vertices by
  ``(height asc, random key)`` yields a reverse topological order:
  ``post[w] < post[u]`` for every edge, exactly the property a DAG DFS
  post-order provides.
* ``low(v) = min(post over everything reachable from v, v included)``,
  computed by one reverse-level sweep (out-neighbours always have
  smaller height, hence are finalised first).

The GRAIL guarantees only need those two properties — containment
(``low[u] <= low[v] and post[v] <= post[u]``) remains *necessary* for
``u -> v``, queries stay exact via the pruned DFS fallback — while the
construction becomes one sort per round instead of an interpreted DFS.
The random key per vertex plays the role of the DFS's shuffled child
order: rounds differ, so containment in all ``k`` rounds stays a sharp
filter.

Both backends draw the same ``random.Random`` floats and break ties the
same way (stable sort on equal ``(height, key)``), so the intervals are
bit-identical across backends — property-tested in
``tests/kernels/test_equivalence.py``.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..graph.topo import topological_order

__all__ = [
    "compute_heights",
    "round_keys",
    "interval_round_python",
    "interval_rounds_numpy",
]


def compute_heights(graph) -> List[int]:
    """Longest-path-to-sink height per vertex (pure Python, shared).

    Raises ``ValueError`` on cyclic input — every caller indexes DAGs.
    """
    order = topological_order(graph)
    if order is None:
        raise ValueError("interval labeling requires a DAG")
    height = [0] * graph.n
    out_adj = graph.out_adj
    for u in reversed(order):
        h = -1
        for w in out_adj[u]:
            if height[w] > h:
                h = height[w]
        height[u] = h + 1
    return height


def round_keys(rng: random.Random, n: int) -> List[float]:
    """The per-round random keys, one draw per vertex in id order.

    A single definition keeps the scalar and numpy backends on the same
    random stream.
    """
    rand = rng.random
    return [rand() for _ in range(n)]


def interval_round_python(
    graph, height: Sequence[int], rng: random.Random
) -> Tuple[List[int], List[int]]:
    """One interval round on the scalar backend: ``(low, post)`` lists."""
    n = graph.n
    key = round_keys(rng, n)
    perm = sorted(range(n), key=lambda v: (height[v], key[v]))
    post = [0] * n
    for i, v in enumerate(perm):
        post[v] = i
    low = list(post)
    out_adj = graph.out_adj
    # perm is ordered by ascending height: every out-neighbour of v is
    # final when v is processed.
    for v in perm:
        lv = low[v]
        for w in out_adj[v]:
            if low[w] < lv:
                lv = low[w]
        low[v] = lv
    return low, post


def interval_rounds_numpy(
    np, csr_np, levels, rng: random.Random, k: int
) -> List[Tuple[List[int], List[int]]]:
    """``k`` interval rounds on the numpy backend; bit-identical output.

    ``csr_np`` is the tuple from :meth:`CSRView.as_numpy`; ``levels`` a
    :class:`repro.kernels.frontier.HeightLevels` over the same heights
    the scalar rounds use.  All ``k`` rounds run through one reverse
    level sweep (the segmented gather indices are shared, and the
    ``low`` minima reduce over an ``(n, k)`` matrix), so the per-round
    cost is one ``lexsort`` plus a k-th of the sweep.
    """
    from .frontier import segment_starts

    out_offsets, out_targets, _, _ = csr_np
    n = len(out_offsets) - 1
    height = levels.height
    post2d = np.empty((n, k), dtype=np.int64)
    for r in range(k):
        key = np.array(round_keys(rng, n))
        perm = np.lexsort((key, height))
        post2d[perm, r] = np.arange(n, dtype=np.int64)
    low2d = post2d.copy()
    deg = out_offsets[1:] - out_offsets[:-1]
    for h in range(1, levels.max_height + 1):
        vertices = levels.level(h)
        dv = deg[vertices]
        vertices = vertices[dv > 0]
        dv = dv[dv > 0]
        if not len(vertices):
            continue
        starts, total = segment_starts(dv)
        ramp = np.arange(total, dtype=np.int64) - np.repeat(starts, dv)
        nbrs = out_targets[np.repeat(out_offsets[vertices], dv) + ramp]
        mins = np.minimum.reduceat(low2d[nbrs], starts, axis=0)
        low2d[vertices] = np.minimum(low2d[vertices], mins)
    return [
        (low2d[:, r].tolist(), post2d[:, r].tolist()) for r in range(k)
    ]
