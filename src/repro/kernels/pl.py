"""Pruned-Landmark construction over padded 2-D label tables.

The scalar PL sweeps carry ``(hop, dist)`` pairs through Python lists
and test the distance-pruning condition one label entry at a time.
Here labels live in ``(n, capacity)`` int64 tables (hops and distances
in parallel, with a per-vertex count; capacity doubles on demand), so a
whole BFS level is prune-tested with one gather + compare:

* the landmark's label snapshot becomes a dense ``dist_via[hop]`` array
  (∞-filled, sparse-reset after the sweep);
* for a frontier at distance ``d``, vertex ``w`` is pruned iff
  ``min(dist_via[h] + d_h for (h, d_h) in label(w)) <= d`` — a masked
  2-D reduction over the frontier's label rows;
* expansion and visited marks use the shared frontier primitives.

Level-synchronous BFS discovers each vertex at the same distance as the
scalar FIFO sweep, and appends happen once per (vertex, landmark) in
ascending landmark order — the resulting ``(hops, dists)`` lists are
bit-identical to the scalar construction.
"""

from __future__ import annotations

from typing import List

__all__ = ["pruned_landmark_numpy"]

_INF = 1 << 40


class _LabelTable:
    """Parallel (hops, dists) rows with per-vertex counts."""

    def __init__(self, np, n: int, cap: int = 4) -> None:
        self.np = np
        self.hops = np.zeros((n, cap), dtype=np.int64)
        self.dists = np.full((n, cap), _INF, dtype=np.int64)
        self.count = np.zeros(n, dtype=np.int64)

    def append(self, vertices, hop: int, dist) -> None:
        np = self.np
        cap = self.hops.shape[1]
        if int(self.count[vertices].max(initial=0)) >= cap:
            pad_h = np.zeros_like(self.hops)
            pad_d = np.full_like(self.dists, _INF)
            self.hops = np.hstack([self.hops, pad_h])
            self.dists = np.hstack([self.dists, pad_d])
            cap *= 2
        flat = vertices * cap + self.count[vertices]
        self.hops.reshape(-1)[flat] = hop
        self.dists.reshape(-1)[flat] = dist
        self.count[vertices] += 1

    def min_via(self, dist_via, vertices):
        """``min(dist_via[h] + d_h)`` over each vertex's label row."""
        rows_h = self.hops[vertices]
        rows_d = self.dists[vertices]
        # Padding rows carry dist _INF, so they can never win the min.
        return (dist_via[rows_h] + rows_d).min(axis=1)

    def to_lists(self, n: int):
        hops_out: List[List[int]] = []
        dists_out: List[List[int]] = []
        counts = self.count.tolist()
        hop_rows = self.hops.tolist()
        dist_rows = self.dists.tolist()
        for v in range(n):
            c = counts[v]
            hops_out.append(hop_rows[v][:c])
            dists_out.append(dist_rows[v][:c])
        return hops_out, dists_out


def pruned_landmark_numpy(np, graph, order_list):
    """Vectorized PL sweeps; returns ``(lout_h, lout_d, lin_h, lin_d)``."""
    from .frontier import Stamped, segmented_gather

    n = graph.n
    out_offsets, out_targets, in_offsets, in_targets = graph.csr().as_numpy()
    lin = _LabelTable(np, n)
    lout = _LabelTable(np, n)
    visited = Stamped(n)
    dist_via = np.full(n, _INF, dtype=np.int64)

    def sweep(vi, hop, snap_table, write_table, offsets, targets):
        # Dense snapshot of the landmark's own (committed) label.
        snap_c = int(snap_table.count[vi])
        snap_h = snap_table.hops[vi, :snap_c]
        snap_d = snap_table.dists[vi, :snap_c]
        dist_via[snap_h] = snap_d
        dist_via[hop] = 0
        visited.next_sweep()
        frontier = np.array([vi], dtype=np.int64)
        visited.marks[frontier] = visited.stamp
        d = 0
        while len(frontier):
            kept = frontier[write_table.min_via(dist_via, frontier) > d]
            if len(kept):
                write_table.append(kept, hop, d)
                _, nxt = segmented_gather(offsets, targets, kept)
                frontier = visited.unseen(nxt) if len(nxt) else nxt
            else:
                frontier = kept
            d += 1
        # Sparse reset of the snapshot.
        dist_via[snap_h] = _INF
        dist_via[hop] = _INF

    for hop, vi in enumerate(order_list):
        # Forward BFS covers (vi, w) via Lin(w); the snapshot is
        # Lout(vi) (plus the implicit self entry at distance 0).
        sweep(vi, hop, lout, lin, out_offsets, out_targets)
        # Backward BFS covers (u, vi) via Lout(u).  The scalar twin
        # snapshots Lin(vi) *before* the forward sweep could touch it;
        # the forward sweep appends (hop, 0) to Lin(vi), which the
        # dense snapshot overrides with dist_via[hop] = 0 anyway, so
        # the committed-or-not distinction cannot change the snapshot.
        sweep(vi, hop, lin, lout, in_offsets, in_targets)

    lout_h, lout_d = lout.to_lists(n)
    lin_h, lin_d = lin.to_lists(n)
    return lout_h, lout_d, lin_h, lin_d
