"""Distribution-Labeling construction as a NumPy array program.

Runs Algorithm 2's 2n pruned sweeps frontier-at-a-time: the per-vertex
prune test ``Lout(u) ∩ Lin(vi) ≠ ∅`` becomes one chunked ``uint64``
bitset AND over the whole frontier, expansion is a segmented CSR
gather, and visited marks are a stamped array — the vectorized twin of
``repro.core.distribution._distribute_bits``.

Label lists are not appended one vertex at a time; each sweep logs
``(hop, vertices)`` and the per-vertex sorted lists are assembled at
the end with one stable sort (hops are distributed in ascending order,
so stability alone yields sorted labels).  The chunked bitsets are
converted to the bigint masks :meth:`LabelSet.attach_masks` expects, so
a numpy-built oracle seals exactly like a scalar-built one.

The chunked bitsets are dense ``(n, capacity)`` arrays grown on demand;
worst case that is ``n²/32`` bytes, so :func:`fits_numpy_masks` gates
the kernel (the caller falls back to the scalar path beyond the
budget).  Output is bit-identical to the scalar sweeps: both compute
the *canonical* labeling — hop ``i`` lands in ``Lin(w)`` iff
``order[i]`` reaches ``w`` and no higher-ranked vertex sits on any
``order[i] -> w`` path — so the backend choice can never change labels.
"""

from __future__ import annotations

from itertools import chain
from typing import List, Sequence, Tuple

__all__ = ["fits_numpy_masks", "distribute_labels_numpy", "lists_to_csr"]

#: Upper bound on the chunked prune-bitset footprint (both sides
#: together).  128 MiB covers every mask-path graph (n <= 32768 needs
#: at most 2 * n * n/8 = 256 MiB only when labels actually reach the
#: highest hops; the budget is checked against *worst case* up front so
#: the kernel never degrades mid-build).
_MAX_BITSET_BYTES = 128 << 20


def fits_numpy_masks(n: int) -> bool:
    """Whether the worst-case chunked bitsets fit the memory budget."""
    chunks = (n + 63) >> 6
    return 2 * n * chunks * 8 <= _MAX_BITSET_BYTES


def lists_to_csr(np, adj: Sequence[Sequence[int]]):
    """Flatten list-of-lists adjacency into int64 ``(offsets, targets)``."""
    n = len(adj)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.fromiter(map(len, adj), dtype=np.int64, count=n), out=offsets[1:])
    total = int(offsets[-1])
    targets = np.fromiter(chain.from_iterable(adj), dtype=np.int64, count=total)
    return offsets, targets


def _assemble(np, n: int, log: List[Tuple[int, "object"]]) -> List[List[int]]:
    """Per-vertex sorted label lists from the ``(hop, vertices)`` log."""
    if not log:
        return [[] for _ in range(n)]
    verts = np.concatenate([arr for _, arr in log])
    hops = np.concatenate(
        [np.full(len(arr), hop, dtype=np.int64) for hop, arr in log]
    )
    order = np.argsort(verts, kind="stable")
    sorted_hops = hops[order].tolist()
    counts = np.bincount(verts, minlength=n)
    bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    bounds = bounds.tolist()
    return [sorted_hops[bounds[v] : bounds[v + 1]] for v in range(n)]


def _masks_from_chunks(np, bits) -> List[int]:
    """Chunked ``uint64`` rows as the bigints ``attach_masks`` expects."""
    rows, chunks = bits.shape
    raw = np.ascontiguousarray(bits.astype("<u8")).tobytes()
    width = chunks * 8
    return [
        int.from_bytes(raw[i * width : (i + 1) * width], "little")
        for i in range(rows)
    ]


def distribute_labels_numpy(np, labels, order, out_adj, in_adj, csr_np=None):
    """Vectorized Algorithm 2; fills ``labels`` and returns the bigint
    ``(out_masks, in_masks)`` mirrors of the chunked prune bitsets.

    ``csr_np`` may pass pre-built ``(out_offsets, out_targets,
    in_offsets, in_targets)`` arrays (the cached
    :meth:`CSRView.as_numpy` when the adjacency is the graph's own);
    otherwise the lists are flattened here (reduction-traversal hands
    in reduced lists).
    """
    from .frontier import Stamped, segmented_gather

    n = labels.n
    if csr_np is not None:
        out_offsets, out_targets, in_offsets, in_targets = csr_np
    else:
        out_offsets, out_targets = lists_to_csr(np, out_adj)
        in_offsets, in_targets = lists_to_csr(np, in_adj)

    cap = 1
    obits = np.zeros((n, cap), dtype=np.uint64)
    ibits = np.zeros((n, cap), dtype=np.uint64)
    visited = Stamped(n)
    log_in: List[Tuple[int, "object"]] = []
    log_out: List[Tuple[int, "object"]] = []
    order_arr = np.asarray(order, dtype=np.int64)

    def sweep(vi, hop, chunk, bit, prune_row, bits, offsets, targets, log):
        """One pruned BFS; labels (into ``bits``/``log``) the unpruned."""
        visited.next_sweep()
        frontier = np.array([vi], dtype=np.int64)
        visited.marks[frontier] = visited.stamp
        pruning = bool(prune_row.any())
        while len(frontier):
            if pruning:
                keep = ~((bits[frontier] & prune_row).any(axis=1))
                frontier = frontier[keep]
                if not len(frontier):
                    break
            log.append((hop, frontier))
            bits[frontier, chunk] |= bit
            _, nxt = segmented_gather(offsets, targets, frontier)
            frontier = visited.unseen(nxt) if len(nxt) else nxt

    for hop, vi in enumerate(order_arr.tolist()):
        chunk = hop >> 6
        if chunk >= cap:
            grow = max(cap * 2, chunk + 1)
            obits = np.hstack([obits, np.zeros((n, grow - cap), dtype=np.uint64)])
            ibits = np.hstack([ibits, np.zeros((n, grow - cap), dtype=np.uint64)])
            cap = grow
        bit = np.uint64(1 << (hop & 63))
        # Forward sweep first: Lout(vi) has no self-hop yet, so the
        # prune row is a stable snapshot (same ordering trick as the
        # scalar sweeps).
        sweep(vi, hop, chunk, bit, obits[vi], ibits, out_offsets, out_targets, log_in)
        prune_row = ibits[vi].copy()
        prune_row[chunk] &= ~bit  # drop the fresh self-hop
        sweep(vi, hop, chunk, bit, prune_row, obits, in_offsets, in_targets, log_out)

    labels.lin = _assemble(np, n, log_in)
    labels.lout = _assemble(np, n, log_out)
    return _masks_from_chunks(np, obits), _masks_from_chunks(np, ibits)
