"""Vectorized Hierarchical-Labeling level folds (Formulas 4-5).

The scalar ``_fold`` unions, per vertex, its mapped ε/2-neighbourhood
with the labels of its backbone vertex set through ``set.update`` and a
sort.  This kernel batches one whole level and side: every vertex's
pieces (self id, mapped neighbours, backbone labels) are concatenated
into one array with per-vertex segment ids, and a single
``np.unique`` over composite keys ``segment * n0 + value`` produces all
the sorted, deduplicated labels at once — exactly
``sorted(set(union))`` per vertex, bit for bit.
"""

from __future__ import annotations

from itertools import chain
from typing import List, Sequence

__all__ = ["fold_level_numpy"]


def fold_level_numpy(
    np,
    vertices: Sequence[int],
    adj: Sequence[Sequence[int]],
    bsets: Sequence[List[int]],
    orig_of: Sequence[int],
    side: Sequence[List[int]],
    n0: int,
) -> List[List[int]]:
    """Folded labels for ``vertices`` of one level graph, one side.

    ``adj`` is the level graph's adjacency for that side, ``bsets`` the
    matching B-sets, ``side`` the global label lists being folded from
    (already final for every backbone vertex), ``n0`` the original
    vertex count.  Returns one sorted label list per vertex, in order.
    """
    orig_arr = np.asarray(orig_of, dtype=np.int64)
    counts = []
    pieces_small: List[int] = []  # self + neighbour ids, interleaved
    label_lists: List[List[int]] = []
    label_counts = []
    for v in vertices:
        nbrs = adj[v]
        pieces_small.append(orig_of[v])
        pieces_small.extend(nbrs)
        total = 0
        for u in bsets[v]:
            lab = side[orig_of[u]]
            label_lists.append(lab)
            total += len(lab)
        counts.append(1 + len(nbrs))
        label_counts.append(total)

    counts = np.asarray(counts, dtype=np.int64)
    label_counts = np.asarray(label_counts, dtype=np.int64)
    small = np.fromiter(pieces_small, dtype=np.int64, count=int(counts.sum()))
    # Neighbour entries still carry level-graph ids; map them (the
    # leading self entry per segment is already an original id, mapping
    # it again would corrupt it, so map before interleaving instead).
    # To keep one pass, `small` interleaves raw ids: selfs were pushed
    # as original ids, neighbours as level ids — rebuild the map mask.
    bounds = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    is_self = np.zeros(len(small), dtype=bool)
    is_self[bounds[:-1]] = True
    small[~is_self] = orig_arr[small[~is_self]]

    lab_total = int(label_counts.sum())
    labels_flat = np.fromiter(
        chain.from_iterable(label_lists), dtype=np.int64, count=lab_total
    )

    seg_small = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    seg_labels = np.repeat(np.arange(len(counts), dtype=np.int64), label_counts)
    keys = np.concatenate(
        [seg_small * n0 + small, seg_labels * n0 + labels_flat]
    )
    keys = np.unique(keys)
    cut = np.searchsorted(
        keys, np.arange(len(counts) + 1, dtype=np.int64) * n0
    ).tolist()
    vals = (keys % n0).tolist()
    return [vals[cut[i] : cut[i + 1]] for i in range(len(counts))]
