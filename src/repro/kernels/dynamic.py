"""Batched update kernels for the dynamic DL oracle.

:class:`repro.core.dynamic.DynamicDL` historically applied an edge
stream one edge at a time: a label-space cycle check, then a descendant
flood merging ``Lin(u) ∪ {rank(u)}`` into every descendant of ``v``.
BENCH_live.json pins ~85% of a 50-edge live update on that pure-Python
loop.  This module batches the whole stream into three array passes:

1. **Classification** (:func:`classify_batch`) — every edge is judged
   against the closure of the *pre-batch* labels plus the batch edges
   accepted so far, restricted to the ≤ 2·B batch endpoints (exact: any
   path through batch edges decomposes into old-graph segments between
   endpoints, and the old labels certify those).  Each edge comes out
   ``duplicate`` / ``noop`` (already reachable) / ``novel``, or the
   whole batch is rejected with :class:`CycleInBatch` before anything
   is applied — batch inserts are stream-atomic.
2. **One multi-source flood** (:func:`flood_batch_numpy` /
   :func:`flood_batch_python`) — instead of one BFS per novel edge, a
   single sweep over the union of the descendant cones.  Each cone
   vertex accumulates a chunked-uint64 bitset of *which* batch sources
   reach it, propagated level-by-level in topological (height) order
   through segmented CSR gathers.
3. **Vectorized write-back** — cone vertices are grouped by bitset
   pattern; each pattern's label delta is built once (a sorted union of
   the relevant per-edge additions) and merged into every member's
   ``Lin`` with one global sorted-unique pass over ``y·n + hop`` keys.

Why pre-batch additions suffice (the confluence argument): let
``B_j = Lin_old(u_j) ∪ {rank(u_j)}`` for novel edge ``j``.  Sequential
insertion floods, for edge ``j``, the *current* ``Lin(u_j)`` — which by
induction equals ``B_j ∪ ⋃{B_i : v_i ⇝ u_j so far}``.  Every such
``B_i`` also lands on all ``y ∈ desc(v_j)`` via edge ``i``'s own cone
in the final graph (``v_i ⇝ u_j → v_j ⇝ y``), so the sequential
fixpoint is exactly ``Lin_old(y) ∪ ⋃{B_j : v_j ⇝ y in the final
graph}`` — which is what the batched sweep computes.  The two paths are
therefore bit-identical (property-tested in
``tests/kernels/test_dynamic_batch.py``).

The module also hosts :class:`TombstoneFilter`, the query-time
correction stage for decremental updates: labels stay exact for the
*ghost* graph (removed edges kept), and a positive label answer is
demoted to an exact live BFS only when some tombstone could explain it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from . import numpy_or_none

__all__ = [
    "CycleInBatch",
    "merge_sorted",
    "classify_batch",
    "flood_batch_python",
    "flood_batch_numpy",
    "TombstoneFilter",
]


class CycleInBatch(ValueError):
    """Edge ``index`` of the batch would close a cycle.

    Subclasses ``ValueError`` so callers of the sequential path keep
    working unchanged.  Nothing from the batch has been applied when
    this is raised — the caller may retry the prefix ``edges[:index]``
    and handle the offending edge separately (the incremental compiler
    turns it into an SCC merge).
    """

    def __init__(self, index: int, edge: Tuple[int, int]) -> None:
        u, v = edge
        super().__init__(
            f"inserting {u}->{v} (edge {index} of the batch) would create a cycle"
        )
        self.index = index
        self.edge = edge


def merge_sorted(target: Sequence[int], extra: Sequence[int]) -> List[int]:
    """Sorted union of two sorted unique int sequences (a new list)."""
    out: List[int] = []
    i = j = 0
    ni, nj = len(target), len(extra)
    while i < ni and j < nj:
        a, b = target[i], extra[j]
        if a == b:
            out.append(a)
            i += 1
            j += 1
        elif a < b:
            out.append(a)
            i += 1
        else:
            out.append(b)
            j += 1
    out.extend(target[i:])
    out.extend(extra[j:])
    return out


# ----------------------------------------------------------------------
# Stage 1: batch classification via the endpoint contact closure
# ----------------------------------------------------------------------
#: Endpoint-pair counts at or above this consider the vectorized batch
#: query engine for the closure seed; below it scalar queries win.
_CLOSURE_ENGINE_MIN = 4096

#: Endpoint counts at or above this use the compressed-universe bitset
#: seed (NumPy); below it the per-pair scalar loop's setup-free path is
#: already fast enough.
_CLOSURE_BITSET_MIN = 8


def _endpoint_bitset_seed(labels, verts: List[int], np):
    """``verts × verts`` label reachability via compressed hop bitsets.

    The batch engine hashes EVERY vertex's labels (cost ~ total label
    mass), which swamps a small batch on a large graph.  Here only the
    ``k`` endpoint labels are touched: their hop values are remapped
    onto a dense universe (``np.unique``), each Lout/Lin becomes a row
    of ``uint64`` words, and a pair is reachable iff its rows
    intersect — exactly ``Lout(u) ∩ Lin(v) ≠ ∅``.
    """
    k = len(verts)
    lout, lin = labels.lout, labels.lin
    out_rows = [lout[x] for x in verts]
    in_rows = [lin[x] for x in verts]
    flat = [h for row in out_rows for h in row]
    n_out = len(flat)
    flat += [h for row in in_rows for h in row]
    if not flat:
        return np.zeros(k * k, dtype=bool)
    uniq, inv = np.unique(np.asarray(flat, dtype=np.int64), return_inverse=True)
    inv = inv.reshape(-1)
    words = (len(uniq) + 63) >> 6
    out_bits = np.zeros((k, words), dtype=np.uint64)
    in_bits = np.zeros((k, words), dtype=np.uint64)
    one = np.uint64(1)
    for bits, rows, ids in (
        (out_bits, out_rows, inv[:n_out]),
        (in_bits, in_rows, inv[n_out:]),
    ):
        lens = np.fromiter((len(r) for r in rows), dtype=np.int64, count=k)
        owner = np.repeat(np.arange(k), lens)
        np.bitwise_or.at(
            bits,
            (owner, ids >> 6),
            one << (ids & 63).astype(np.uint64),
        )
    if k * k * words <= (1 << 23):
        # One broadcast (≤64 MiB temp): a single kernel call, which
        # matters under serving load where every GIL round trip can
        # cost a scheduler quantum.
        reach = (out_bits[:, None, :] & in_bits[None, :, :]).any(axis=2)
    else:
        reach = np.zeros((k, k), dtype=bool)
        for i in range(k):  # row blocks keep the temp at O(k·words)
            reach[i] = (out_bits[i] & in_bits).any(axis=1)
    return reach.reshape(-1)


def _contact_closure_seed(labels, verts: List[int], np):
    """Reachability over ``verts × verts`` in pre-batch label space.

    Returns a flat list/array of ``k·k`` booleans (row-major); the
    caller forces the diagonal True (reflexive reachability, as the
    oracle's ``query`` defines it).  Three gears, by shape: the batch
    engine only when the pair count rivals the graph size its build
    cost scales with, the endpoint bitset for everything NumPy-sized
    below that, scalar queries for tiny batches.
    """
    k = len(verts)
    if np is not None and k * k >= max(_CLOSURE_ENGINE_MIN, labels.n):
        from .batchquery import engine_query_batch

        class _Holder:  # engine cache scope = this one classification
            pass

        pairs = [(a, b) for a in verts for b in verts]
        return engine_query_batch(_Holder(), labels, None, pairs)
    if np is not None and k >= _CLOSURE_BITSET_MIN:
        return _endpoint_bitset_seed(labels, verts, np)
    return labels.query_batch([(a, b) for a in verts for b in verts])


def classify_batch(
    edges: Sequence[Tuple[int, int]],
    labels,
    has_edge: Callable[[int, int], bool],
    np=None,
) -> Tuple[List[str], List[int]]:
    """Classify an insert stream without touching any state.

    ``labels`` is the pre-batch :class:`~repro.core.labels.LabelSet`
    (rank space; exact for the oracle's current ghost graph) and
    ``has_edge`` the membership test of that graph.  Returns
    ``(kinds, novel_indices)`` where ``kinds[i]`` is one of
    ``"duplicate"`` / ``"noop"`` / ``"novel"``, mirroring what the
    sequential path would decide edge by edge.  Raises
    :class:`CycleInBatch` on the first edge (in stream order) that
    would close a cycle, and plain ``ValueError`` on a self-loop —
    in both cases before the caller applies anything.
    """
    verts = sorted({x for e in edges for x in e})
    idx = {v: i for i, v in enumerate(verts)}
    k = len(verts)
    seed = _contact_closure_seed(labels, verts, np)

    kinds: List[str] = []
    novel: List[int] = []
    seen_batch = set()
    if np is not None:
        reach = np.asarray(seed, dtype=bool).reshape(k, k)
        diag = np.arange(k)
        reach[diag, diag] = True
        for t, (u, v) in enumerate(edges):
            if u == v:
                raise ValueError("self-loops are not allowed in a DAG oracle")
            iu, iv = idx[u], idx[v]
            if reach[iv, iu]:
                raise CycleInBatch(t, (u, v))
            if has_edge(u, v) or (u, v) in seen_batch:
                kinds.append("duplicate")
                continue
            seen_batch.add((u, v))
            if reach[iu, iv]:
                kinds.append("noop")
                continue
            kinds.append("novel")
            novel.append(t)
            # Close the contact graph over the new edge: everything
            # reaching u now reaches everything v reaches.
            reach[reach[:, iu]] |= reach[iv]
    else:
        rows = [0] * k
        pos = 0
        for i in range(k):
            m = 0
            for j in range(k):
                if seed[pos]:
                    m |= 1 << j
                pos += 1
            rows[i] = m | (1 << i)
        for t, (u, v) in enumerate(edges):
            if u == v:
                raise ValueError("self-loops are not allowed in a DAG oracle")
            iu, iv = idx[u], idx[v]
            if (rows[iv] >> iu) & 1:
                raise CycleInBatch(t, (u, v))
            if has_edge(u, v) or (u, v) in seen_batch:
                kinds.append("duplicate")
                continue
            seen_batch.add((u, v))
            if (rows[iu] >> iv) & 1:
                kinds.append("noop")
                continue
            kinds.append("novel")
            novel.append(t)
            riv = rows[iv]
            bit = 1 << iu
            for a in range(k):
                if rows[a] & bit:
                    rows[a] |= riv
    return kinds, novel


# ----------------------------------------------------------------------
# Stages 2+3, scalar twin: cone Kahn sweep + per-pattern merges
# ----------------------------------------------------------------------
def flood_batch_python(
    out_adj: Sequence[Sequence[int]],
    novel_edges: Sequence[Tuple[int, int]],
    additions: Sequence[List[int]],
    add_masks: Sequence[int],
    labels,
) -> Dict[str, int]:
    """Apply all novel-edge label deltas in one scalar sweep.

    The graph behind ``out_adj`` must already contain every batch edge.
    ``additions[j]`` / ``add_masks[j]`` are the pre-batch
    ``Lin_old(u_j) ∪ {rank(u_j)}`` list and its bigint mask.  Bitsets
    over batch indices are Python bigints; propagation runs in Kahn
    (topological) order over the cone subgraph, so each vertex's source
    set is final when its out-edges are expanded.
    """
    lin = labels.lin
    source_bits: Dict[int, int] = {}
    for j, (_, v) in enumerate(novel_edges):
        source_bits[v] = source_bits.get(v, 0) | (1 << j)

    # Descendant cone of the batch sources.
    cone = list(source_bits)
    seen = set(cone)
    qi = 0
    while qi < len(cone):
        w = cone[qi]
        qi += 1
        for x in out_adj[w]:
            if x not in seen:
                seen.add(x)
                cone.append(x)

    # Kahn order restricted to the cone (every out-neighbour of a cone
    # vertex is itself in the cone, so in-degrees need no membership
    # filter).
    indeg = dict.fromkeys(cone, 0)
    for w in cone:
        for x in out_adj[w]:
            indeg[x] += 1
    order = [w for w in cone if indeg[w] == 0]
    qi = 0
    while qi < len(order):
        w = order[qi]
        qi += 1
        sw = source_bits.get(w, 0)
        for x in out_adj[w]:
            if sw:
                source_bits[x] = source_bits.get(x, 0) | sw
            indeg[x] -= 1
            if indeg[x] == 0:
                order.append(x)

    # Group cone vertices by source pattern; build each pattern's delta
    # once, then merge it into every member.
    groups: Dict[int, List[int]] = {}
    for w in cone:
        groups.setdefault(source_bits[w], []).append(w)
    for pattern, members in groups.items():
        delta: Optional[List[int]] = None
        mask = 0
        p = pattern
        while p:
            j = (p & -p).bit_length() - 1
            p &= p - 1
            delta = additions[j] if delta is None else merge_sorted(delta, additions[j])
            mask |= add_masks[j]
        for w in members:
            lin[w] = merge_sorted(lin[w], delta)
            labels.or_in_mask(w, mask)
    return {
        "frontier_vertices": len(cone),
        "labels_merged": len(cone),
        "patterns": len(groups),
    }


# ----------------------------------------------------------------------
# Stages 2+3, NumPy: segmented gathers + one global sorted-unique pass
# ----------------------------------------------------------------------
def _np_offsets(np, arr):
    """int64 ndarray view/copy of an ``array('l')`` CSR array."""
    if not len(arr):
        return np.empty(0, dtype=np.int64)
    return np.frombuffer(arr, dtype=np.dtype(f"i{arr.itemsize}")).astype(
        np.int64, copy=False
    )


def flood_batch_numpy(
    np,
    graph,
    novel_edges: Sequence[Tuple[int, int]],
    additions: Sequence[List[int]],
    add_masks: Sequence[int],
    labels,
) -> Dict[str, int]:
    """Vectorized twin of :func:`flood_batch_python` (same final labels).

    One CSR snapshot of the post-batch graph, heights for the
    topological level order, a multi-source cone discovery, chunked
    uint64 source-bitset propagation through segmented gathers, and a
    single ``np.unique`` union write-back keyed on ``y·n + hop``.
    """
    from ..graph.csr import build_csr_arrays
    from .frontier import compute_heights_numpy, segmented_gather

    n = graph.n
    out_offs, out_tgts = build_csr_arrays(graph.out_adj)
    in_offs, in_tgts = build_csr_arrays(graph.in_adj)
    offsets = _np_offsets(np, out_offs)
    targets = _np_offsets(np, out_tgts)
    height = compute_heights_numpy(
        np, (offsets, None, _np_offsets(np, in_offs), _np_offsets(np, in_tgts))
    )

    k = len(novel_edges)
    words = (k + 63) >> 6
    source_bits = np.zeros((n, words), dtype=np.uint64)
    srcs = np.fromiter((v for _, v in novel_edges), dtype=np.int64, count=k)
    js = np.arange(k, dtype=np.int64)
    np.bitwise_or.at(
        source_bits.reshape(-1),
        srcs * words + (js >> 6),
        np.uint64(1) << (js & 63).astype(np.uint64),
    )

    # Descendant cone of the batch sources.
    visited = np.zeros(n, dtype=bool)
    frontier = np.unique(srcs)
    visited[frontier] = True
    cone_parts = [frontier]
    while len(frontier):
        _, nxt = segmented_gather(offsets, targets, frontier)
        if not len(nxt):
            break
        nxt = np.unique(nxt)
        nxt = nxt[~visited[nxt]]
        visited[nxt] = True
        if len(nxt):
            cone_parts.append(nxt)
        frontier = nxt
    cone = np.concatenate(cone_parts) if len(cone_parts) > 1 else cone_parts[0]

    # Propagate source bitsets level-synchronously in descending height
    # order: every edge drops strictly in height, so a level's incoming
    # bits are final before its out-edges are expanded.
    order = np.argsort(-height[cone], kind="stable")
    by_level = cone[order]
    hs = height[by_level]
    bounds = np.flatnonzero(hs[1:] != hs[:-1]) + 1
    start = 0
    for stop in list(bounds) + [len(by_level)]:
        level = by_level[start:stop]
        start = stop
        seg, vals = segmented_gather(offsets, targets, level)
        if len(vals):
            np.bitwise_or.at(source_bits, vals, source_bits[level[seg]])

    # Group by pattern; build one delta (and one bigint mask) per group.
    rows = source_bits[cone]
    patterns, inv = np.unique(rows, axis=0, return_inverse=True)
    inv = inv.reshape(-1)
    pattern_bits = np.unpackbits(
        patterns.astype("<u8", copy=False).view(np.uint8), axis=1, bitorder="little"
    )[:, :k]
    add_arrs = [np.asarray(a, dtype=np.int64) for a in additions]
    deltas: List = []
    masks: List[int] = []
    for p in range(len(patterns)):
        members = np.flatnonzero(pattern_bits[p])
        if len(members) == 1:
            delta = add_arrs[int(members[0])]
        else:
            delta = np.unique(np.concatenate([add_arrs[int(j)] for j in members]))
        deltas.append(delta)
        mask = 0
        for j in members.tolist():
            mask |= add_masks[j]
        masks.append(mask)

    # One global sorted-unique union over (vertex, hop) keys.
    lin = labels.lin
    from itertools import chain

    cone_list = cone.tolist()
    counts = np.fromiter((len(lin[y]) for y in cone_list), dtype=np.int64, count=len(cone))
    total_old = int(counts.sum())
    old_hops = np.fromiter(
        chain.from_iterable(lin[y] for y in cone_list), dtype=np.int64, count=total_old
    )
    key_parts = [np.repeat(cone, counts) * n + old_hops]
    for p in range(len(patterns)):
        ys = cone[inv == p]
        dlt = deltas[p]
        key_parts.append(
            (np.repeat(ys, len(dlt)) * n)
            + np.tile(dlt, len(ys))
        )
    keys = np.unique(np.concatenate(key_parts))
    cids = np.sort(cone)
    starts = np.searchsorted(keys, cids * n)
    ends = np.searchsorted(keys, (cids + 1) * n)
    hops = keys % n
    for i, y in enumerate(cids.tolist()):
        lin[y] = hops[starts[i] : ends[i]].tolist()
    for w, p in zip(cone_list, inv.tolist()):
        labels.or_in_mask(w, masks[p])
    return {
        "frontier_vertices": int(len(cone)),
        "labels_merged": int(len(cone)),
        "patterns": int(len(patterns)),
    }


# ----------------------------------------------------------------------
# Decremental updates: the query-time tombstone filter
# ----------------------------------------------------------------------
class TombstoneFilter:
    """Restore exactness of label answers over tombstoned edges.

    After a deletion the labels stay exact for the *ghost* graph (the
    one still containing every removed edge), which over-approximates
    live reachability.  A positive label answer for ``(u, v)`` can only
    be wrong if some removed edge ``(x, y)`` could sit on a ``u → v``
    path — i.e. ``u ⇝ x`` and ``y ⇝ v`` in ghost (label) space.  Pairs
    with no such *suspect* tombstone keep their label answer; suspect
    pairs fall back to an exact BFS over the live adjacency, pruned by
    the ghost reachability (live paths are a subset of ghost paths).

    ``reach(a, b)`` must be reflexive ghost reachability;
    ``neighbors(w)`` must yield live out-neighbours only (tombstoned
    edges excluded).  Every tombstone stays in the filter even when it
    looks redundant — an edge made redundant by a parallel path can
    become load-bearing again after a later removal.
    """

    __slots__ = ("tombs", "reach", "neighbors")

    def __init__(
        self,
        tombs: Iterable[Tuple[int, int]],
        reach: Callable[[int, int], bool],
        neighbors: Callable[[int], Iterable[int]],
    ) -> None:
        self.tombs = list(tombs)
        self.reach = reach
        self.neighbors = neighbors

    def __len__(self) -> int:
        return len(self.tombs)

    def suspect(self, u: int, v: int) -> bool:
        """Whether any tombstone could explain a false positive."""
        reach = self.reach
        for x, y in self.tombs:
            if reach(u, x) and reach(y, v):
                return True
        return False

    def verify(self, u: int, v: int) -> bool:
        """Exact live reachability by ghost-pruned DFS."""
        if u == v:
            return True
        reach = self.reach
        neighbors = self.neighbors
        seen = {u}
        stack = [u]
        while stack:
            w = stack.pop()
            for x in neighbors(w):
                if x == v:
                    return True
                if x not in seen and reach(x, v):
                    seen.add(x)
                    stack.append(x)
        return False

    def check(self, u: int, v: int) -> bool:
        """Correct one *positive* label answer."""
        if not self.tombs or not self.suspect(u, v):
            return True
        return self.verify(u, v)
