"""Small shared statistics helpers (no dependencies, no state).

Lives at the package root because both the bench harness (direct-mode
per-query latency percentiles) and the server's load generator report
latency shapes — neither layer should import the other for a pure
function.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

__all__ = ["percentiles"]


def percentiles(
    samples: Sequence[float], pcts: Sequence[float] = (50.0, 95.0, 99.0)
) -> Dict[str, float]:
    """Nearest-rank percentiles as ``{"p50": ..., "p95": ..., ...}``.

    Nearest-rank is ``ceil(p/100 * N)`` (1-based) — ``round()`` would
    ride Python's half-to-even rule and report a p50 one rank below
    the median on odd counts.  Empty input yields an empty dict
    (callers render "no data" rather than a fake zero).
    """
    if not samples:
        return {}
    ordered = sorted(samples)
    out: Dict[str, float] = {}
    last = len(ordered) - 1
    for pct in pcts:
        rank = min(last, max(0, math.ceil(pct / 100.0 * len(ordered)) - 1))
        out[f"p{pct:g}"] = ordered[rank]
    return out
