"""Small shared statistics helpers (no dependencies, no state).

Lives at the package root because both the bench harness (direct-mode
per-query latency percentiles) and the server's load generator report
latency shapes — neither layer should import the other for a pure
function.  The histogram helpers operate on the mergeable snapshot
format of :class:`repro.telemetry.Histogram` (sparse
``{bucket_index: count}`` over log2 buckets), which is what the
cluster scrape adds up across replicas.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Union

__all__ = [
    "DEFAULT_PCTS",
    "percentiles",
    "merge_histograms",
    "histogram_percentiles",
]

#: The default percentile set everything reports.  p99.9 is the tail
#: that matters at production rates: at 10k q/s it is still ten
#: requests per second.
DEFAULT_PCTS = (50.0, 95.0, 99.0, 99.9)


def percentiles(
    samples: Sequence[float], pcts: Sequence[float] = DEFAULT_PCTS
) -> Dict[str, float]:
    """Nearest-rank percentiles as ``{"p50": ..., "p95": ..., ...}``.

    Nearest-rank is ``ceil(p/100 * N)`` (1-based) — ``round()`` would
    ride Python's half-to-even rule and report a p50 one rank below
    the median on odd counts.  Empty input yields an empty dict
    (callers render "no data" rather than a fake zero).
    """
    if not samples:
        return {}
    ordered = sorted(samples)
    out: Dict[str, float] = {}
    last = len(ordered) - 1
    for pct in pcts:
        rank = min(last, max(0, math.ceil(pct / 100.0 * len(ordered)) - 1))
        out[f"p{pct:g}"] = ordered[rank]
    return out


def merge_histograms(*snapshots: dict) -> dict:
    """Exactly merge telemetry histogram snapshots (bucket-wise sums).

    Accepts any number of ``{"count", "sum", "unit", "buckets"}``
    snapshots (e.g. the same latency histogram scraped from N
    replicas) and returns one snapshot of the combined distribution.
    The merge is *exact*, not an approximation: log-bucket counts are
    plain integers, so addition loses nothing — this is the whole
    reason the histograms are bucketed rather than sampled.  Units
    must agree (mixing ns with raw-value histograms would produce a
    nonsense distribution); empty input merges to an empty snapshot.
    """
    buckets: Dict[str, int] = {}
    count = 0
    total: Union[int, float] = 0
    unit = None
    for snap in snapshots:
        if not snap:
            continue
        snap_unit = snap.get("unit", "ns")
        if unit is None:
            unit = snap_unit
        elif snap_unit != unit:
            raise ValueError(
                f"cannot merge histograms of unit {unit!r} and {snap_unit!r}"
            )
        count += snap.get("count", 0)
        total += snap.get("sum", 0)
        for idx, c in snap.get("buckets", {}).items():
            key = str(int(idx))
            buckets[key] = buckets.get(key, 0) + int(c)
    return {
        "count": count,
        "sum": total,
        "unit": unit or "ns",
        "buckets": buckets,
    }


def histogram_percentiles(
    snapshot: dict, pcts: Sequence[float] = DEFAULT_PCTS
) -> Dict[str, float]:
    """Nearest-rank percentiles estimated from a histogram snapshot.

    Same rank rule as :func:`percentiles` — the rank-th observation
    ordered ascending, 1-based ``ceil(p/100 * N)`` — walked over the
    cumulative bucket counts.  The reported value is the **upper edge**
    of the bucket holding that rank (``2^index``, in the snapshot's
    unit), so the estimate is an upper bound within one log2 bucket
    width of the exact sample percentile: for merged multi-replica
    histograms that is the tightest claim possible, and it never
    *understates* a latency tail.  Empty snapshots yield ``{}``.
    """
    if not snapshot or not snapshot.get("count"):
        return {}
    items = sorted((int(k), int(v)) for k, v in snapshot["buckets"].items())
    n = snapshot["count"]
    out: Dict[str, float] = {}
    for pct in pcts:
        rank = min(n, max(1, math.ceil(pct / 100.0 * n)))
        cumulative = 0
        value = 0.0
        for idx, c in items:
            cumulative += c
            if cumulative >= rank:
                # Bucket 0 holds exactly the value 0; bucket i >= 1
                # holds [2^(i-1), 2^i), reported by its upper edge.
                value = 0.0 if idx == 0 else float(1 << idx)
                break
        out[f"p{pct:g}"] = value
    return out
