"""User-facing facade: reachability on arbitrary directed graphs.

Every index in this library operates on a DAG, per the standard
preprocessing the paper describes in §2: "the directed graph is typically
transformed into a DAG by coalescing strongly connected components".
:class:`Reachability` packages that pipeline — condensation, index
construction, query translation — behind one object, so a user can throw
any digraph (cycles, self-references via SCCs, disconnected pieces) at
it:

>>> from repro import Reachability
>>> from repro.graph.digraph import DiGraph
>>> g = DiGraph(4)
>>> for u, v in [(0, 1), (1, 2), (2, 0), (2, 3)]:
...     _ = g.add_edge(u, v)
>>> r = Reachability(g)              # DL oracle by default
>>> r.query(0, 3), r.query(3, 0)
(True, False)
>>> r.query(1, 0)                    # same SCC
True
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from .graph.digraph import DiGraph
from .graph.scc import Condensation, condense
from .core.base import ReachabilityIndex, get_method

__all__ = ["Reachability"]


class _ServeCondensation:
    """Condensation restored from an artifact: the ``comp`` map only.

    Quacks like :class:`~repro.graph.scc.Condensation` for everything
    query-side (``comp``, ``n_components``, ``component_of``,
    per-component sizes); the DAG and member lists stay on the build
    side of the lifecycle.
    """

    __slots__ = ("comp", "n_components", "_sizes")

    def __init__(self, comp, n_components: int) -> None:
        self.comp = comp
        self.n_components = n_components
        self._sizes = None

    def component_of(self, v: int) -> int:
        return self.comp[v]

    def component_sizes(self) -> List[int]:
        """Vertices per component (computed lazily from ``comp``)."""
        if self._sizes is None:
            sizes = [0] * self.n_components
            for c in self.comp:
                sizes[c] += 1
            self._sizes = sizes
        return self._sizes

    def __repr__(self) -> str:
        return f"_ServeCondensation(components={self.n_components})"


class Reachability:
    """Reachability oracle over an arbitrary directed graph.

    Parameters
    ----------
    graph:
        Any :class:`DiGraph` (cycles allowed).
    method:
        Either a paper abbreviation (``"DL"``, ``"HL"``, ``"PT"``, …) or
        a callable ``DiGraph -> ReachabilityIndex`` applied to the
        condensation DAG.  Defaults to Distribution-Labeling, the
        paper's recommended all-round method.
    **params:
        Forwarded to the index constructor.  The kernel-aware methods
        (``DL``, ``HL``, ``GL``, ``PL``) accept
        ``backend={"auto", "python", "numpy"}`` and ``DL`` additionally
        ``workers=N`` for multi-core sharded construction; results are
        bit-identical across backends and worker counts.
    """

    def __init__(
        self,
        graph: DiGraph,
        method: Union[str, Callable[..., ReachabilityIndex]] = "DL",
        **params,
    ) -> None:
        self.original = graph
        self.condensation: Condensation = condense(graph)
        factory = get_method(method) if isinstance(method, str) else method
        self.index: ReachabilityIndex = factory(self.condensation.dag, **params)
        self._comp_arr = None  # lazy int64 mirror of condensation.comp
        self._serve_meta = None  # artifact header in serve mode
        self._live = None  # LiveIndex while (or after) serving live
        self._primary = None  # JournaledPrimary when serving durably

    # ------------------------------------------------------------------
    # build → compile → serve
    # ------------------------------------------------------------------
    def save(self, path, profile: str = "mmap") -> int:
        """Persist the full pipeline — condensation *and* index — as a
        binary artifact; returns bytes written.

        Unlike the v1 ``save_labels`` JSON (which stores bare labels
        and therefore cannot answer original-graph queries), the
        artifact keeps the SCC ``comp`` map, so :meth:`load` serves the
        exact original-graph semantics, same-SCC pairs included.
        ``profile``: ``"mmap"`` (default, zero-copy shared serving) or
        ``"compact"`` (deflated, smallest file) — see
        :data:`repro.serialization.PROFILES`.
        """
        from .serialization import save_artifact

        return save_artifact(self, path, profile=profile)

    @classmethod
    def load(cls, path, mmap: bool = True) -> "Reachability":
        """Serve-mode pipeline from a :meth:`save` artifact.

        With ``mmap=True`` (default) the index arrays are zero-copy
        views over a shared read-only mapping — N serving processes
        loading the same artifact share one physical copy.
        """
        from .artifact import read_artifact

        return cls.from_artifact(read_artifact(path, mmap=mmap))

    @classmethod
    def from_artifact(cls, source) -> "Reachability":
        """A serve-mode facade over a parsed pipeline artifact.

        ``source`` is a path or a :class:`repro.artifact.Artifact` of
        kind ``"pipeline"``.  The result answers :meth:`query` /
        :meth:`query_batch` / :meth:`same_scc` /
        :meth:`reachable_count_from` with **no DiGraph in memory**;
        graph-walking helpers (:meth:`path`) need the build side and
        raise.
        """
        from .artifact import Artifact, read_artifact
        from .serialization import PIPELINE_KIND, _oracle_from_artifact

        art = source if isinstance(source, Artifact) else read_artifact(source)
        if art.kind != PIPELINE_KIND:
            raise ValueError(
                f"expected a pipeline artifact, got kind {art.kind!r} — "
                "use repro.serialization.load_artifact for method artifacts"
            )
        self = cls.__new__(cls)
        self.original = None
        self.condensation = _ServeCondensation(
            art.section("comp"), int(art.meta["dag_n"])
        )
        self.index = _oracle_from_artifact(art, "inner")
        self._comp_arr = None
        self._serve_meta = dict(art.meta)
        self._live = None
        self._primary = None
        return self

    @property
    def is_serving(self) -> bool:
        """Whether this facade is on the serve side of the lifecycle.

        True for a pipeline restored by :meth:`load` /
        :meth:`from_artifact` — compiled query arrays only, no
        :class:`DiGraph` — and False for a facade built from a graph.
        Graph-walking helpers (:meth:`path`) need ``is_serving`` to be
        False; everything query-shaped works either way.
        """
        return self.original is None

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 0,
        batch_window_s: float = 0.001,
        adaptive_window: bool = False,
        max_batch: int = 65536,
        cache_size: int = 65536,
        artifact_path=None,
        allow_shutdown=None,
        live: bool = False,
        replicas: int = 0,
        data_dir=None,
        sync: str = "interval",
        dirt_threshold: float = 0.25,
    ):
        """Start a TCP query server over this pipeline; returns it running.

        The server answers the binary wire protocol of
        :mod:`repro.server` with exactly this facade's semantics
        (original-graph ids, same-SCC pairs included).  With
        ``workers == 0`` queries are answered in-process; with
        ``workers > 0`` that many processes each memory-map the
        pipeline artifact — for a build-mode facade one is saved to
        ``artifact_path`` (or a temp file the server deletes on close),
        while a serve-mode facade reuses the artifact it was loaded
        from.  ``batch_window_s`` is the micro-batching window in
        **seconds** (the CLI's ``--batch-window`` flag is milliseconds;
        ``adaptive_window`` lets it shrink under low arrival rate);
        ``cache_size`` the LRU result-cache budget (0 disables).

        ``live=True`` serves through an epoch-versioned
        :class:`repro.live.LiveIndex` instead of a frozen snapshot:
        :meth:`add_edge` / :meth:`add_edges` then update the *running*
        server (and the wire ``OP_UPDATE`` op works), and
        :meth:`swap_artifact` hot-swaps a whole new artifact — all
        without dropping a connection.  A build-mode facade gets the
        full update path (edges are applied incrementally through a
        ``DynamicDL``-backed compiler — the serving labels are DL
        regardless of this facade's ``method``, answers identical); a
        serve-mode facade gets hot swap only.  The live pipeline
        survives ``server.close()``: a later ``serve(live=True)``
        resumes from the updated graph, not the original build.

        ``replicas=N`` (N ≥ 1) serves through a fault-tolerant tier
        instead of a single process: N replica processes each hold the
        artifact, an epoch-shipping
        :class:`~repro.cluster.ReplicaRouter` fronts them with
        retries, health checks and hedging, and losing any one replica
        costs retried requests, not failed ones.  See
        :func:`repro.cluster.serve_replicated` (which this delegates
        to) for the moving parts; mutually exclusive with ``live``.

        ``data_dir`` (with ``live=True``) makes the live server
        **durable**: updates run through a
        :class:`repro.durability.JournaledPrimary` in that directory —
        the ack means the batch hit the write-ahead journal (fsync
        policy ``sync``: ``always`` / ``interval`` / ``off``), and a
        process that dies mid-anything recovers every acked update on
        the next ``serve(live=True, data_dir=...)`` over the same
        directory.  When the directory already holds a manifest the
        recovered state wins and this pipeline's graph is ignored — the
        disk is the truth.

        ``dirt_threshold`` (with ``live=True``) bounds removal debt:
        deleted edges are served through query-time tombstones, and
        once ``tombstones / edges`` reaches the threshold a background
        full recompile compacts them away.  ``0`` disables automatic
        compaction (tombstones accumulate until an explicit rebuild).

        >>> from repro.graph.digraph import DiGraph
        >>> g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        >>> server = Reachability(g).serve()          # ephemeral port
        >>> from repro.server import ReachClient
        >>> with ReachClient(*server.address) as client:
        ...     client.query(0, 3), client.query(3, 0)
        (True, False)
        >>> server.close()
        """
        from .server.service import QueryService, ReachServer

        if data_dir is not None and not live:
            raise ValueError(
                "data_dir is the durable *live* mode: pass live=True "
                "(a static artifact server has nothing to journal)"
            )
        if replicas > 0:
            if live:
                raise ValueError(
                    "live=True and replicas are mutually exclusive: "
                    "replication ships frozen artifact epochs"
                )
            import os

            from .cluster import serve_replicated

            path = artifact_path
            temp_paths: list = []
            if path is None and self.is_serving:
                art = getattr(self.index, "artifact", None)
                path = getattr(art, "path", None)
            if path is None:
                import tempfile

                fd, path = tempfile.mkstemp(
                    suffix=".rpro", prefix="repro-serve-"
                )
                os.close(fd)
                self.save(path)
                temp_paths.append(path)
            elif not self.is_serving:
                # Build mode with an explicit path: (re)save, so the
                # replicas serve THIS pipeline.
                self.save(path)
            try:
                server = serve_replicated(
                    path,
                    host,
                    port,
                    replicas=replicas,
                    allow_shutdown=allow_shutdown,
                )
            except BaseException:
                for tmp in temp_paths:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                raise
            server.cleanup_paths.extend(temp_paths)
            return server

        if live:
            return self._serve_live(
                host,
                port,
                workers=workers,
                batch_window_s=batch_window_s,
                adaptive_window=adaptive_window,
                max_batch=max_batch,
                cache_size=cache_size,
                allow_shutdown=allow_shutdown,
                data_dir=data_dir,
                sync=sync,
                dirt_threshold=dirt_threshold,
            )
        cleanup: list = []
        if workers <= 0:
            service = QueryService(
                oracle=self,
                workers=0,
                window_s=batch_window_s,
                adaptive_window=adaptive_window,
                max_batch=max_batch,
                cache_size=cache_size,
            )
        else:
            import os

            path = artifact_path
            if path is None and self.is_serving:
                art = getattr(self.index, "artifact", None)
                path = getattr(art, "path", None)
            if path is None:
                import tempfile

                fd, path = tempfile.mkstemp(suffix=".rpro", prefix="repro-serve-")
                os.close(fd)
                self.save(path)
                cleanup.append(path)
            elif self.is_serving:
                # A serve-mode facade cannot re-save (the build side is
                # gone); without the file the workers have nothing to map.
                if not os.path.exists(path):
                    raise FileNotFoundError(
                        f"artifact file {path!r} no longer exists and a "
                        "serve-mode Reachability cannot re-save it; restore "
                        "the file or rebuild from the graph"
                    )
                # And the file must be THIS pipeline, not some other
                # artifact at a caller-supplied path — the workers would
                # silently serve the wrong index's answers.
                from .serialization import artifact_info

                meta = artifact_info(path)["meta"]
                mine = self._serve_meta or {}
                identity = ("original_n", "original_m", "dag_n", "dag_m", "method")
                if any(meta.get(k) != mine.get(k) for k in identity):
                    raise ValueError(
                        f"artifact {path!r} does not match this pipeline "
                        f"(it holds {meta.get('method')} over "
                        f"n={meta.get('original_n')}, this facade serves "
                        f"{mine.get('method')} over n={mine.get('original_n')})"
                    )
            else:
                # Build mode with an explicit path: always (re)save, so
                # the workers serve THIS pipeline — a stale file at the
                # same path must not win silently.
                self.save(path)
            service = QueryService(
                artifact_path=path,
                workers=workers,
                window_s=batch_window_s,
                adaptive_window=adaptive_window,
                max_batch=max_batch,
                cache_size=cache_size,
            )
        try:
            service.start()
            server = ReachServer(
                service,
                host,
                port,
                allow_shutdown=allow_shutdown,
                owns_service=True,
            )
            server.cleanup_paths.extend(cleanup)
            return server.start()
        except BaseException:
            service.close()
            import os

            for path in cleanup:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            raise

    # ------------------------------------------------------------------
    # Live serving (hot swap + incremental updates)
    # ------------------------------------------------------------------
    def _serve_live(
        self,
        host: str,
        port: int,
        *,
        workers: int,
        batch_window_s: float,
        adaptive_window: bool,
        max_batch: int,
        cache_size: int,
        allow_shutdown,
        data_dir=None,
        sync: str = "interval",
        dirt_threshold: float = 0.25,
    ):
        """The ``serve(live=True)`` path: mount (or remount) a LiveIndex."""
        from .live import IncrementalCompiler, LiveIndex
        from .server.service import QueryService, ReachServer

        if self._live is not None and not self._live.closed:
            raise RuntimeError(
                "this Reachability is already serving live; close() the "
                "running server before starting another"
            )
        if data_dir is not None:
            return self._serve_durable(
                host,
                port,
                data_dir=data_dir,
                sync=sync,
                dirt_threshold=dirt_threshold,
                workers=workers,
                batch_window_s=batch_window_s,
                adaptive_window=adaptive_window,
                max_batch=max_batch,
                cache_size=cache_size,
                allow_shutdown=allow_shutdown,
            )
        if self._live is not None:
            # Re-serve after a close: the compiler (updated graph
            # included) survives the dead server's store.  A swap-only
            # live index restarts from the facade's own artifact file.
            compiler = self._live.compiler
            if self._live.swaps > 0:
                # swap_artifact() replaced the served data with an
                # external file this facade cannot reproduce; reviving
                # the pre-swap compiler (build mode) or republishing
                # this facade's own artifact (serve mode) would silently
                # roll that back.
                raise RuntimeError(
                    "cannot re-serve live: an external artifact was "
                    "swapped in over this pipeline, and its file is the "
                    "source of truth now — serve it directly "
                    "(Reachability.load(path).serve(live=True)) or "
                    "rebuild from a graph"
                )
            if compiler is not None:
                live = LiveIndex(compiler, dirt_threshold=dirt_threshold)
            else:
                live = LiveIndex(initial_path=self._live_initial_path())
        elif self.is_serving:
            # Serve-mode facade: no graph to compile, so no update path
            # — but the artifact file can still be hot-swapped.
            live = LiveIndex(initial_path=self._live_initial_path())
        else:
            # Reuse this facade's condensation (and, for DL, its built
            # labels) rather than building the pipeline a second time.
            live = LiveIndex(
                IncrementalCompiler.from_pipeline(self),
                dirt_threshold=dirt_threshold,
            )
        self._live = live
        service = QueryService(
            live=live,
            workers=workers,
            window_s=batch_window_s,
            adaptive_window=adaptive_window,
            max_batch=max_batch,
            cache_size=cache_size,
        )
        try:
            service.start()
            server = ReachServer(
                service,
                host,
                port,
                allow_shutdown=allow_shutdown,
                owns_service=True,
            )
            # The store dies with the server; the compiler stays on the
            # facade so a later serve(live=True) resumes the stream.
            server.cleanup_callbacks.append(live.close)
            return server.start()
        except BaseException:
            service.close()
            live.close()
            raise

    def _serve_durable(
        self,
        host: str,
        port: int,
        *,
        data_dir,
        sync: str,
        dirt_threshold: float,
        workers: int,
        batch_window_s: float,
        adaptive_window: bool,
        max_batch: int,
        cache_size: int,
        allow_shutdown,
    ):
        """``serve(live=True, data_dir=...)``: a journaled live server.

        First boot over an empty directory seeds it from this pipeline
        (build mode only — a serve-mode facade holds labels, not the
        graph the journal's recovery path needs).  Every later boot
        recovers from the directory and ignores the in-memory pipeline:
        acked updates from the previous life are already in the served
        state before the port opens.
        """
        from .durability import JournaledPrimary
        from .durability.manifest import EpochManifest
        from .live import IncrementalCompiler
        from .server.service import QueryService, ReachServer

        compiler = None
        if EpochManifest(data_dir).load() is None:
            if self.is_serving:
                raise RuntimeError(
                    "a serve-mode Reachability cannot initialise a durable "
                    f"data dir ({str(data_dir)!r} has no manifest): the "
                    "journal's recovery path needs the original graph, "
                    "which artifacts do not carry — boot the directory "
                    "once from a build-mode pipeline"
                )
            compiler = IncrementalCompiler.from_pipeline(self)
        primary = JournaledPrimary(
            data_dir, compiler=compiler, sync=sync,
            dirt_threshold=dirt_threshold,
        )
        self._primary = primary
        self._live = primary.live
        service = QueryService(
            primary=primary,
            workers=workers,
            window_s=batch_window_s,
            adaptive_window=adaptive_window,
            max_batch=max_batch,
            cache_size=cache_size,
        )
        try:
            service.start()
            server = ReachServer(
                service,
                host,
                port,
                allow_shutdown=allow_shutdown,
                owns_service=True,
            )
            # Unlike the in-memory live path, everything that matters
            # survives in data_dir — closing the server checkpoints and
            # releases the journal so another process can recover it.
            server.cleanup_callbacks.append(primary.close)
            return server.start()
        except BaseException:
            service.close()
            primary.close()
            raise

    def _live_initial_path(self) -> str:
        """The on-disk artifact behind a serve-mode facade (checked)."""
        import os

        art = getattr(self.index, "artifact", None)
        path = getattr(art, "path", None)
        if path is None or not os.path.exists(path):
            raise FileNotFoundError(
                "live serving a serve-mode Reachability needs its artifact "
                f"file on disk, but {path!r} is gone; restore it or rebuild "
                "from the graph"
            )
        return path

    def add_edge(self, u: int, v: int) -> Dict[str, object]:
        """Insert original-graph edge ``u -> v`` into the live server.

        Only available while serving live (``serve(live=True)`` from a
        build-mode facade): the edge flows through the incremental
        compiler and the resulting artifact epoch is published to the
        running server before this returns — queries on any connection
        then see the new edge.  Returns the publish summary (``epoch``,
        ``changed``, ``swap_s``…).

        The facade's own :meth:`query` keeps answering from its
        build-time snapshot; the live pipeline (and anything served) is
        what advances.  Use the returned epoch / server queries to
        observe updates, and ``serve(live=True)`` after a close to
        resume from the updated graph.
        """
        return self.add_edges([(u, v)])

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> Dict[str, object]:
        """Insert an edge stream and publish one epoch for all of it.

        On a durable server (``serve(live=True, data_dir=...)``) the
        stream goes through the journal first — when this returns, the
        batch survives a crash.
        """
        return self.apply_ops(list(edges))

    def remove_edge(self, u: int, v: int) -> Dict[str, object]:
        """Delete original-graph edge ``u -> v`` from the live server.

        The edge stops contributing to reachability immediately (via a
        query-time tombstone); the label structure is compacted in the
        background once the configured ``dirt_threshold`` is reached.
        Removing an edge that is not in the live graph raises
        ``ValueError`` and applies nothing.
        """
        return self.apply_ops([("-", u, v)])

    def remove_edges(
        self, edges: Iterable[Tuple[int, int]]
    ) -> Dict[str, object]:
        """Delete an edge stream and publish one epoch for all of it."""
        return self.apply_ops([("-", u, v) for u, v in edges])

    def apply_ops(self, ops: Iterable) -> Dict[str, object]:
        """Apply a mixed insert/remove stream as one atomic batch.

        ``ops`` mixes ``(u, v)`` pairs (inserts) with ``('+', u, v)`` /
        ``('-', u, v)`` triples; the whole stream is validated first
        and applied all-or-nothing, then one epoch is published.  On a
        durable server the batch is journaled before it is applied.
        """
        live = self._require_live(update=True)
        if self._primary is not None and self._primary.live is live:
            return self._primary.apply_update(list(ops))
        return live.apply_ops(list(ops))

    def swap_artifact(self, path) -> int:
        """Hot-swap the live server to the artifact at ``path``.

        The file is loaded side-by-side, published as the next epoch,
        and the old version drains once its in-flight batches finish —
        zero dropped connections, batch-atomic answers.  Returns the
        new epoch.  After swapping an external artifact over a
        build-mode live pipeline, :meth:`add_edge` is disabled (the
        compiler no longer describes what is served).
        """
        live = self._require_live(update=False)
        return live.swap_artifact(str(path))

    def _require_live(self, update: bool):
        live = self._live
        if live is None or live.closed:
            raise RuntimeError(
                "no live server is attached: start one with "
                "Reachability.serve(live=True) (updates need a build-mode "
                "facade; hot swap works for serve-mode too)"
            )
        if update and (live.compiler is None or live.detached):
            raise RuntimeError(
                "this live server has no update path: it serves swapped-in "
                "artifacts only (updates need serve(live=True) on a "
                "build-mode Reachability whose compiler is still attached)"
            )
        return live

    @property
    def live_epoch(self) -> Optional[int]:
        """The serving artifact epoch, or None when not serving live."""
        if self._live is None or self._live.closed:
            return None
        return self._live.current_epoch

    # ------------------------------------------------------------------
    def query(self, u: int, v: int) -> bool:
        """Whether original-graph vertex ``u`` reaches ``v``.

        Vertices in the same SCC reach each other by definition (the
        trivial case the DAG transformation removes).
        """
        cu = self.condensation.comp[u]
        cv = self.condensation.comp[v]
        if cu == cv:
            return True
        return self.index.query(cu, cv)

    def query_batch(self, pairs: Iterable[Tuple[int, int]]) -> List[bool]:
        """Vectorised :meth:`query` over many pairs.

        Translates the whole workload into condensation space and hands
        it to the index's batch fast path.  A NumPy ``(P, 2)`` array is
        translated by one gather and stays an array, so it reaches the
        vectorized engine without a Python round trip.  No same-SCC
        special case is needed: ``query(c, c)`` is reflexively True for
        every index, per the :class:`ReachabilityIndex` contract.
        """
        comp = self.condensation.comp
        from .kernels import numpy_or_none

        np = numpy_or_none()
        if np is not None and isinstance(pairs, np.ndarray):
            if self._comp_arr is None:
                self._comp_arr = np.asarray(comp, dtype=np.int64)
            return self.index.query_batch(self._comp_arr[pairs])
        return self.index.query_batch([(comp[u], comp[v]) for u, v in pairs])

    def same_scc(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are strongly connected."""
        return self.condensation.comp[u] == self.condensation.comp[v]

    def path(self, u: int, v: int) -> Optional[List[int]]:
        """An explicit vertex path from ``u`` to ``v``, or ``None``.

        The oracle answers the decision problem in microseconds; this
        helper produces a human-auditable certificate on demand (one
        BFS over the original graph, so only for positive answers you
        actually want to explain).

        Examples
        --------
        >>> from repro.graph.digraph import DiGraph
        >>> g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        >>> Reachability(g).path(0, 3)
        [0, 1, 2, 3]
        """
        if self.is_serving:
            raise RuntimeError(
                "path() needs the original DiGraph, but this Reachability "
                "is serve-mode (is_serving=True): it was restored by "
                "Reachability.load()/from_artifact(), and artifacts keep "
                "only the compiled query arrays — the graph stays on the "
                "build side of the build -> compile -> serve lifecycle. "
                "query()/query_batch()/same_scc()/reachable_count_from() "
                "all work here; for path certificates rebuild with "
                "Reachability(graph, method) on the build side (and use "
                ".save(path) there if you want both from one build)"
            )
        if not self.query(u, v):
            return None
        if u == v:
            return [u]
        out_adj = self.original.out_adj
        parent = {u: -1}
        frontier = [u]
        qi = 0
        while qi < len(frontier):
            x = frontier[qi]
            qi += 1
            for w in out_adj[x]:
                if w not in parent:
                    parent[w] = x
                    if w == v:
                        path = [v]
                        while path[-1] != u:
                            path.append(parent[path[-1]])
                        return path[::-1]
                    frontier.append(w)
        raise AssertionError(
            f"oracle claims {u} -> {v} but BFS found no path; index corrupt"
        )

    def reachable_count_from(self, u: int) -> int:
        """Number of original vertices reachable from ``u`` (incl. itself).

        Convenience analytics helper (counts SCC members through the
        condensation); cost is one scan over SCC sizes.
        """
        cu = self.condensation.comp[u]
        sizes = self.condensation.component_sizes()
        total = 0
        for c in range(self.condensation.n_components):
            if c == cu or self.index.query(cu, c):
                total += sizes[c]
        return total

    def stats(self) -> Dict[str, object]:
        """Pipeline statistics: original size, DAG size, index stats."""
        if self.original is None:
            meta = self._serve_meta or {}
            return {
                "original_n": meta.get("original_n"),
                "original_m": meta.get("original_m"),
                "dag_n": self.condensation.n_components,
                "dag_m": meta.get("dag_m"),
                "serve_mode": True,
                "index": self.index.stats(),
            }
        return {
            "original_n": self.original.n,
            "original_m": self.original.m,
            "dag_n": self.condensation.dag.n,
            "dag_m": self.condensation.dag.m,
            "index": self.index.stats(),
        }

    def __repr__(self) -> str:
        if self.original is None:
            meta = self._serve_meta or {}
            return (
                f"Reachability(method={self.index.short_name}, serve_mode, "
                f"n={meta.get('original_n')}, dag_n={self.condensation.n_components})"
            )
        return (
            f"Reachability(method={self.index.short_name}, "
            f"n={self.original.n}, dag_n={self.condensation.dag.n})"
        )
