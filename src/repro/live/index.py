"""LiveIndex: the compiler + store pair a live server mounts.

One object owning the whole update path: edge insertions run through
the :class:`~repro.live.compiler.IncrementalCompiler` under a single
update lock, each publish writes the next epoch's artifact file into a
store-owned directory, and the
:class:`~repro.live.store.VersionedArtifactStore` flips the serving
pointer.  Query traffic never takes the update lock — it leases epochs
from the store — so updates and queries only meet at the atomic epoch
flip.

``swap_artifact`` publishes an externally-built artifact file.  Doing
so *detaches* the compiler (its graph no longer describes what is being
served), after which ``apply_updates`` refuses with a clear error; a
swap-only ``LiveIndex`` (no compiler, e.g. ``serve --watch``) starts
detached.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from .compiler import IncrementalCompiler, normalize_ops
from .store import VersionedArtifactStore

__all__ = ["LiveIndex"]

Edge = Tuple[int, int]


@contextlib.contextmanager
def _update_priority():
    """Widen the interpreter switch interval while update compute runs.

    A live update shares the interpreter with every connection-handler
    thread; at the default 5 ms quantum a compute-bound updater on a
    small host gets ~1/n_threads of the core and a ~100 ms label flood
    balloons by an order of magnitude of pure context-switch tax.  A
    wider quantum lets each GIL hold run to useful completion — query
    threads still interleave (the NumPy kernel sections release the
    GIL outright) — and the previous interval is restored
    unconditionally, so steady-state serving is untouched.

    Where the process may renice (root, or CAP_SYS_NICE), the updater
    thread additionally drops its nice value for the duration: CFS's
    weighting then picks it over peer handler threads nearly every
    time the GIL comes up for grabs, instead of one time in n.
    """
    prev = sys.getswitchinterval()
    sys.setswitchinterval(max(prev, 0.05))
    tid = prev_nice = None
    try:
        tid = threading.get_native_id()
        prev_nice = os.getpriority(os.PRIO_PROCESS, tid)
        os.setpriority(os.PRIO_PROCESS, tid, min(prev_nice, -10))
    except (AttributeError, OSError):
        tid = None  # unprivileged or non-Linux: quantum widening only
    try:
        yield
    finally:
        sys.setswitchinterval(prev)
        if tid is not None:
            try:
                os.setpriority(os.PRIO_PROCESS, tid, prev_nice)
            except OSError:  # pragma: no cover - thread died mid-restore
                pass


class LiveIndex:
    """Versioned serving state with (optionally) an attached update path.

    Exactly one of ``compiler`` / ``initial_path`` selects the mode:

    * **compiler mode** — the compiler's current state is compiled and
      published as epoch 1; :meth:`apply_updates` inserts edges and
      publishes the next epoch.
    * **swap-only mode** — ``initial_path`` is published as epoch 1;
      new versions arrive via :meth:`swap_artifact` (or a watcher).

    ``artifact_dir`` is where compiler-mode epochs are written.  The
    default is a **private temp directory whose lifetime is this
    process**: it is removed on :meth:`close` (and by the OS's tmp
    reaper eventually), so nothing served from it survives a crash or
    restart — pass a persistent ``artifact_dir`` when epoch files must
    outlive the process.  With the default ``own_files=True`` the
    store unlinks each epoch file as soon as its version drains (the
    right economics for a throwaway dir); ``own_files=False`` leaves
    every published file on disk for the *caller* to manage — the mode
    a durable primary uses, where the crash-recovery manifest decides
    which artifact files may be deleted, not the drain order.

    ``seq_start`` offsets the epoch file numbering (files are named
    ``epoch-NNNNNN.rpro`` from ``seq_start + 1``), so a recovery path
    that pre-publishes epoch N into ``store`` can continue file names
    (and store epochs) from N+1 without colliding with the survivor.
    """

    def __init__(
        self,
        compiler: Optional[IncrementalCompiler] = None,
        *,
        initial_path: Optional[str] = None,
        artifact_dir: Optional[str] = None,
        store: Optional[VersionedArtifactStore] = None,
        own_files: bool = True,
        seq_start: int = 0,
        dirt_threshold: float = 0.25,
    ) -> None:
        if (compiler is None) == (initial_path is None):
            raise ValueError("pass exactly one of compiler / initial_path")
        self.compiler = compiler
        self._owns_store = store is None
        self.store = store or VersionedArtifactStore()
        self._update_lock = threading.Lock()
        self._detached = compiler is None
        self._closed = False
        self._own_files = own_files
        self._seq = int(seq_start)
        self._updates = 0
        self._swaps = 0
        #: Tombstone dirt ratio at/above which a background full
        #: recompile (compact + full publish) is scheduled; 0 disables.
        self._dirt_threshold = float(dirt_threshold)
        self._recompile_thread: Optional[threading.Thread] = None
        self._recompiles = 0
        self._recompile_error: Optional[str] = None
        self._last_publish: Dict[str, object] = {}
        self._last_publish_ts = time.time()
        self._apply_hist = None
        self._publish_hist = None
        self._owns_dir = False
        self._dir: Optional[str] = None
        try:
            if compiler is not None:
                if artifact_dir is None:
                    self._dir = tempfile.mkdtemp(prefix="repro-live-")
                    self._owns_dir = True
                else:
                    os.makedirs(artifact_dir, exist_ok=True)
                    self._dir = artifact_dir
                self._publish_compiled(full=True)
            else:
                # Snapshot even the initial file: the caller may replace
                # it on disk while epoch 1 still serves (see
                # VersionedArtifactStore.publish_snapshot).
                self.store.publish_snapshot(initial_path)
        except BaseException:
            # The constructor is the only owner at this point: a failed
            # first publish must not leak the temp dir / partial file.
            if self._owns_dir and self._dir is not None:
                shutil.rmtree(self._dir, ignore_errors=True)
            if self._owns_store:
                self.store.close()
            raise

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def detached(self) -> bool:
        """True when the compiler no longer matches the served artifact."""
        return self._detached

    @property
    def current_epoch(self) -> Optional[int]:
        return self.store.current_epoch

    # -- telemetry -----------------------------------------------------
    def bind_metrics(self, registry) -> None:
        """Instrument the update/publish path into a telemetry registry.

        Two histograms split a slow update between compute
        (``apply_ops`` wall time, compile included) and the epoch flip
        itself; the epoch-age gauge answers "how stale is what we are
        serving" — it resets on every publish or swap, so a live tier
        that stopped publishing shows up as unbounded age.
        """
        self._apply_hist = registry.histogram(
            "repro_live_apply_seconds",
            "wall time of one apply_ops (compile + publish included)",
        )
        self._publish_hist = registry.histogram(
            "repro_epoch_publish_seconds",
            "wall time of one store epoch flip",
        )
        registry.gauge(
            "repro_epoch_age_seconds",
            "seconds since the serving epoch last changed",
            fn=lambda: time.time() - self._last_publish_ts,
        )
        bind_compiler = getattr(self.compiler, "bind_metrics", None)
        if bind_compiler is not None:
            bind_compiler(registry)

    # ------------------------------------------------------------------
    def _next_path(self) -> str:
        self._seq += 1
        return os.path.join(self._dir, f"epoch-{self._seq:06d}.rpro")

    def _publish_compiled(self, full: Optional[bool] = None) -> Dict[str, object]:
        """Compile the compiler's current state and flip the store to it."""
        path = self._next_path()
        info = self.compiler.compile_to(path, full=full)
        t0 = time.perf_counter()
        epoch = self.store.publish(path, owns_file=self._own_files)
        info["publish_s"] = time.perf_counter() - t0
        info["epoch"] = epoch
        info["path"] = path
        self._last_publish = info
        self._last_publish_ts = time.time()
        if self._publish_hist is not None:
            self._publish_hist.observe_s(info["publish_s"])
        return info

    # ------------------------------------------------------------------
    # The update path
    # ------------------------------------------------------------------
    def apply_ops(self, ops) -> Dict[str, object]:
        """Apply a mixed insert/remove stream and publish in one step.

        ``ops`` is anything :func:`~repro.live.compiler.normalize_ops`
        accepts — plain ``(u, v)`` pairs (inserts) and/or ``(op, u, v)``
        triples.  Returns the compiler's op summary merged with the
        publish record: ``epoch``, ``changed``, ``rebuilds``, ``full``
        (whether the compile fell back to the full profile), ``bytes``,
        ``compile_s``/``publish_s``/``swap_s``, ``published``.  A
        stream that changed no reachable pair (duplicates, intra-SCC
        edges, already-reachable insertions, redundant removals) skips
        the compile and the epoch flip entirely — publishing would only
        churn artifact files and orphan every epoch-keyed cache entry
        for answers that are all still identical — and reports
        ``published: False`` with the current epoch.  When the
        tombstone dirt ratio reaches ``dirt_threshold`` a background
        full recompile (compact + full publish) is scheduled; see
        :meth:`recompile_wait`.  Raises ``RuntimeError`` when no
        compiler is attached (swap-only mode, or after
        :meth:`swap_artifact` detached it).
        """
        if self._closed:
            raise RuntimeError("live index is closed")
        if self.compiler is None or self._detached:
            raise RuntimeError(
                "no attached compiler: this live index serves swapped-in "
                "artifact files only (updates need a build-mode "
                "Reachability.serve(live=True) pipeline)"
            )
        ops = normalize_ops(ops)
        # Validate the whole stream before touching anything: a client
        # whose mid-stream edge is rejected must be able to assume NONE
        # of the stream was applied (partially-applied edges would ride
        # out silently with the next unrelated publish).
        for _, u, v in ops:
            self.compiler.validate_edge(u, v)
        with self._update_lock, _update_priority():
            t0 = time.perf_counter()
            summary = self.compiler.apply_ops(ops)
            if summary["changed"] or summary["rebuilds"] or summary["scc_merges"]:
                summary.update(self._publish_compiled())
                summary["published"] = True
            else:
                summary["epoch"] = self.store.current_epoch
                summary["published"] = False
            summary["swap_s"] = time.perf_counter() - t0
            if self._apply_hist is not None:
                self._apply_hist.observe_s(summary["swap_s"])
            self._updates += 1
            self._maybe_schedule_recompile()
            return summary

    def apply_updates(self, edges: List[Edge]) -> Dict[str, object]:
        """Back-compat alias of :meth:`apply_ops` reporting ``edges``."""
        summary = self.apply_ops(edges)
        summary["edges"] = summary["ops"]
        return summary

    # ------------------------------------------------------------------
    # Background recompile (tombstone dirt control)
    # ------------------------------------------------------------------
    def _maybe_schedule_recompile(self) -> None:
        """Schedule a compact + full publish once dirt crosses the bar.

        Caller holds ``_update_lock``.  Trigger rule is boundary-exact:
        fires iff ``dirt_ratio >= dirt_threshold``.  At most one
        recompile thread runs at a time; the thread serialises on the
        update lock, so in-flight updates finish first.
        """
        thr = self._dirt_threshold
        if not thr or self.compiler is None or self._detached:
            return
        if self.compiler.dirt_ratio < thr:
            return
        t = self._recompile_thread
        if t is not None and t.is_alive():
            return
        t = threading.Thread(
            target=self._recompile_now, name="live-recompile", daemon=True
        )
        self._recompile_thread = t
        t.start()

    def _recompile_now(self) -> None:
        try:
            with self._update_lock:
                if self._closed or self._detached or self.compiler is None:
                    return
                if not self.compiler.dirt_ratio:
                    return  # an interleaved update already compacted
                self.compiler.compact()
                self._publish_compiled(full=True)
                self._recompiles += 1
        except Exception as exc:  # pragma: no cover - diagnostics only
            self._recompile_error = repr(exc)

    def recompile_wait(self, timeout: Optional[float] = None) -> bool:
        """Join any in-flight background recompile (tests/shutdown hook).

        Returns True when no recompile is running afterwards.
        """
        t = self._recompile_thread
        if t is None:
            return True
        t.join(timeout)
        return not t.is_alive()

    @property
    def recompiles(self) -> int:
        """Completed background recompiles (dirt-triggered)."""
        return self._recompiles

    def swap_artifact(self, path: str) -> int:
        """Publish an externally-built artifact as the next epoch.

        What is published is a store-owned *snapshot* (hard link) of
        the file, so the caller may freely replace or delete their copy
        afterwards — the epoch's content stays pinned for every worker
        that still has to map it.  An attached compiler is detached
        (see the class docstring).  Returns the new epoch.
        """
        if self._closed:
            raise RuntimeError("live index is closed")
        with self._update_lock:
            epoch = self.store.publish_snapshot(str(path))
            self._detached = self.compiler is not None or self._detached
            self._swaps += 1
            self._last_publish_ts = time.time()
            return epoch

    @property
    def swaps(self) -> int:
        """How many external artifacts were swapped in over this index."""
        return self._swaps

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "store": self.store.stats(),
            "updates": self._updates,
            "swaps": self._swaps,
            "detached": self._detached,
            "dirt_threshold": self._dirt_threshold,
            "recompiles": self._recompiles,
            "recompile_error": self._recompile_error,
            "last_publish": dict(self._last_publish),
        }
        if self.compiler is not None:
            doc["compiler"] = self.compiler.stats()
        return doc

    def close(self) -> None:
        """Close the store; the compiler (if any) survives for a re-serve."""
        if self._closed:
            return
        self._closed = True
        t = self._recompile_thread
        if t is not None and t.is_alive():
            t.join(timeout=30)
        self.store.close()
        if self._owns_dir and self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)

    def __enter__(self) -> "LiveIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"LiveIndex(epoch={self.current_epoch}, "
            f"mode={'swap-only' if self.compiler is None else 'compiler'}, "
            f"detached={self._detached})"
        )
