"""Live serving: epoch-versioned hot artifact swap + incremental updates.

The PR 3 artifacts and the PR 4 server froze the index at build time:
changing one edge meant rebuild, re-save, restart.  This package is the
update path that shares versioned data with the query path so one
process serves both without downtime — the HTAP-style split the
roadmap's "hot artifact swap" and "dynamic graphs behind the server"
items describe:

* :mod:`repro.live.store` — :class:`VersionedArtifactStore`: artifact
  versions loaded side-by-side, each under a monotonically increasing
  **epoch**; an atomic current-epoch flip; refcounted
  :class:`EpochLease` per in-flight batch so a retired epoch's mmap is
  drained (closed and, for store-owned files, unlinked) only once its
  last batch finishes.
* :mod:`repro.live.compiler` — :class:`IncrementalCompiler`: applies an
  edge-insertion stream through :class:`~repro.core.dynamic.DynamicDL`
  and recompiles **only the touched label arenas** into the next
  artifact (the out side, SCC map and witness table are byte-reused
  between publishes; ``auto_rebuild_factor`` bloat and SCC merges fall
  back to a full recompile).
* :mod:`repro.live.index` — :class:`LiveIndex`: compiler + store glue
  with one lock around the update path; what a live
  :class:`~repro.facade.Reachability` server mounts.
* :mod:`repro.live.watch` — :class:`ArtifactWatcher`: polls an artifact
  path and publishes into a store when the file is atomically replaced
  (the ``serve --watch`` deployment shape).

Epoch lifecycle: **load** the new version side-by-side → **flip** the
current-epoch pointer (new batches lease the new version) → **drain**
the old one (its mmap closes when the last leased batch resolves).
Queries are never blocked and no connection is dropped; each batch is
answered entirely by one epoch.
"""

from .compiler import IncrementalCompiler
from .index import LiveIndex
from .store import EpochLease, VersionedArtifactStore
from .watch import ArtifactWatcher

__all__ = [
    "VersionedArtifactStore",
    "EpochLease",
    "IncrementalCompiler",
    "LiveIndex",
    "ArtifactWatcher",
]
