"""Incremental artifact compiler: edge stream in, next pipeline artifact out.

The build side of live serving.  :class:`IncrementalCompiler` keeps a
mutable original graph, its SCC condensation, and a
:class:`~repro.core.dynamic.DynamicDL` oracle over the condensation
DAG; edge insertions flow through ``DynamicDL``'s label flooding (cheap
— one forward BFS plus sorted merges), and each :meth:`compile_to`
writes the *same* pipeline-artifact layout as
:meth:`repro.facade.Reachability.save`, so the serving side cannot tell
an incremental artifact from a fresh build.

What "incremental" buys at compile time: DL insertions mutate only the
**in-side** labels, so between publishes the compiler reuses the packed
bytes of every untouched section — the out-side arena, the hop→vertex
witness table, and the SCC ``comp`` map — and repacks only the in-side
arena.  The graph-derived engine certificates are the exception: the
height filter must track the current graph (a stale height table would
filter *new* positive pairs as negative), so heights are recomputed on
every publish (one O(n + m) sweep), while the five interval rounds —
the expensive certificates — are only rebuilt on **full** compiles and
dropped from incremental ones exactly like the ``compact`` profile
drops them: answers are bit-identical either way, negatives just lean
on the later engine stages.

Full-recompile fallbacks (everything repacked):

* ``auto_rebuild_factor`` — ``DynamicDL`` rebuilt itself because the
  flooded labels bloated past the configured multiple of the last
  minimal build (Theorem 4 non-redundancy is restored).
* **SCC merge** — an insertion closed a cycle at the DAG level; the
  original graph is recondensed and the oracle rebuilt over the new
  DAG (``comp`` changes, so every epoch-keyed answer shape can change).
* **SCC split** — a removal disconnected a strongly connected
  component; same recondense-and-rebuild.
* **compact** — the tombstone dirt ratio crossed the live tier's
  threshold and the ghost edges were dropped for a minimal rebuild.

Removals classify cheaply before they ever touch the oracle: an edge
that is absent, intra-SCC with the component still strongly connected,
or one of several parallel original edges mapping to the same DAG edge
(tracked by a lazy multiplicity map) changes no answer and costs no
label work.  Only the last original edge behind a live DAG edge becomes
a :meth:`DynamicDL.remove_edge` tombstone, published to artifacts as
the ``inner/tomb_*`` + ``inner/live_*`` optional sections.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..artifact import pack_section, write_artifact
from ..core.dynamic import CycleInBatch, DynamicDL
from ..graph.digraph import DiGraph
from ..graph.scc import condense

__all__ = ["IncrementalCompiler", "normalize_ops"]

Edge = Tuple[int, int]

#: The canonical mixed-update item: ``(op, u, v)`` with op ``+``/``-``.
Op = Tuple[str, int, int]


def normalize_ops(items: Iterable) -> List[Op]:
    """Canonicalise a mixed update stream to ``('+'|'-', u, v)`` triples.

    Accepts plain ``(u, v)`` pairs (inserts) and ``(op, u, v)`` triples
    where ``op`` is ``"+"``/``"insert"``/``"add"`` or
    ``"-"``/``"remove"``/``"delete"``.  Shared by every update entry
    point (live index, journaled primary, server, facade, CLI) so the
    whole write path speaks one ops dialect.
    """
    out: List[Op] = []
    for item in items:
        fields = tuple(item)
        if len(fields) == 2:
            u, v = fields
            out.append(("+", int(u), int(v)))
        elif len(fields) == 3:
            op, u, v = fields
            if op in ("+", "insert", "add"):
                out.append(("+", int(u), int(v)))
            elif op in ("-", "remove", "delete", "del"):
                out.append(("-", int(u), int(v)))
            else:
                raise ValueError(f"unknown update op {op!r}")
        else:
            raise ValueError(f"malformed update item {item!r}")
    return out

#: Interval rounds baked into full compiles (mirrors the engine's
#: ``_IV_ROUNDS`` via :func:`repro.kernels.batchquery.compile_graph_aux`).
_SECTION_NAMES = (
    "comp",
    "inner/out_hops",
    "inner/out_offs",
    "inner/hop_vertex",
    "inner/in_hops",
    "inner/in_offs",
)


class IncrementalCompiler:
    """Build-side live pipeline: mutable graph -> versioned artifacts.

    Parameters
    ----------
    graph:
        The original directed graph (cycles allowed); copied, never
        mutated.
    order:
        DL rank strategy for (re)builds.
    auto_rebuild_factor:
        Forwarded to :class:`~repro.core.dynamic.DynamicDL`: labels
        bloated past this multiple of the last minimal build trigger a
        full rebuild (0 disables).

    Thread safety: :meth:`add_edge` / :meth:`insert_edges` /
    :meth:`compile_to` serialise on one internal lock, so a server's
    update handler can call them from connection threads directly.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        order: str = "degree_product",
        auto_rebuild_factor: float = 4.0,
    ) -> None:
        self._init_state(graph, order, auto_rebuild_factor)
        self._rebuild_pipeline()

    def _init_state(
        self, graph: DiGraph, order: str, auto_rebuild_factor: float
    ) -> None:
        self._lock = threading.RLock()
        self._order = order
        self._auto_rebuild_factor = auto_rebuild_factor
        self._original = graph.copy()
        self._sections: Dict[str, Tuple[str, bytes]] = {}
        self._full_pending = True  # first compile packs everything
        self._in_dirty = True
        self._tomb_dirty = False
        #: Lazy ``(cu, cv) -> count`` of original cross-component edges
        #: behind each DAG edge; None until a removal needs it, cleared
        #: by every pipeline rebuild.
        self._dag_mult: Optional[Dict[Edge, int]] = None
        self._inserts = 0
        self._intra_scc = 0
        self._noop_inserts = 0
        self._duplicate_edges = 0
        self._auto_rebuilds = 0
        self._scc_merges = 0
        self._removals = 0
        self._absent_removals = 0
        self._intra_scc_removals = 0
        self._multi_edge_removals = 0
        self._tombstoned_removals = 0
        self._scc_splits = 0
        self._compacts = 0
        self._full_compiles = 0
        self._incremental_compiles = 0
        self._sections_reused = 0
        self._sections_repacked = 0
        self._compile_hist = None
        self._pack_hist = None
        self._cert_hist = None

    @classmethod
    def from_pipeline(cls, reach, *, auto_rebuild_factor: float = 4.0):
        """Seed a compiler from a built build-mode facade without
        rebuilding its index.

        ``Reachability.serve(live=True)`` already paid for a
        condensation and (when ``method`` is DL) a full label build;
        this adopts both — the condensation is reused as-is and
        :class:`~repro.core.dynamic.DynamicDL` deep-copies the DL
        labels — instead of constructing them a second time.  Facades
        built with any other method fall back to a fresh DL build (the
        live pipeline always serves DL labels; answers are identical).
        """
        from ..core.distribution import DistributionLabeling

        if reach.original is None:
            raise TypeError(
                "from_pipeline needs a build-mode Reachability (a "
                "serve-mode facade has no graph to update)"
            )
        index = reach.index
        if not isinstance(index, DistributionLabeling):
            return cls(reach.original, auto_rebuild_factor=auto_rebuild_factor)
        order = (getattr(index, "params", None) or {}).get(
            "order", "degree_product"
        )
        self = cls.__new__(cls)
        self._init_state(reach.original, order, auto_rebuild_factor)
        self._cond = reach.condensation
        self._dyn = DynamicDL(
            self._cond.dag,
            order=order,
            auto_rebuild_factor=auto_rebuild_factor,
            seed_index=index,
        )
        return self

    # ------------------------------------------------------------------
    def _rebuild_pipeline(self) -> None:
        """(Re)condense the original graph and rebuild the DL oracle."""
        self._cond = condense(self._original)
        self._dyn = DynamicDL(
            self._cond.dag,
            order=self._order,
            auto_rebuild_factor=self._auto_rebuild_factor,
        )
        self._full_pending = True
        self._in_dirty = True
        self._tomb_dirty = True  # a fresh oracle has no tombstones
        self._dag_mult = None
        self._sections.clear()

    # ------------------------------------------------------------------
    # Properties / queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._original.n

    @property
    def m(self) -> int:
        return self._original.m

    @property
    def original(self) -> DiGraph:
        """The compiler's graph copy (read-only by contract)."""
        return self._original

    @property
    def condensation(self):
        return self._cond

    def query(self, u: int, v: int) -> bool:
        """Original-graph reachability on the *current* (updated) state."""
        with self._lock:
            cu = self._cond.comp[u]
            cv = self._cond.comp[v]
            if cu == cv:
                return True
            return self._dyn.query(cu, cv)

    def query_batch(self, pairs) -> List[bool]:
        return [self.query(u, v) for u, v in pairs]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> Dict[str, object]:
        """Insert original-graph edge ``u -> v``; returns what happened.

        The result's ``kind`` is one of

        * ``duplicate`` — edge already present, nothing touched;
        * ``intra-scc`` — both endpoints in one SCC: graph grows, labels
          untouched (the pair was already reachable both ways);
        * ``inserted`` — new DAG edge, labels flooded incrementally
          (``changed`` says whether any new pair became reachable,
          ``rebuilt`` whether the bloat threshold forced a rebuild);
        * ``scc-merge`` — the edge closed a cycle: recondensed and fully
          rebuilt (``rebuilt`` is always True).

        Raises ``ValueError`` on self-loops or out-of-range vertices.
        """
        self.validate_edge(u, v)
        with self._lock:
            if self._original.has_edge(u, v):
                self._duplicate_edges += 1
                return {"kind": "duplicate", "changed": False, "rebuilt": False}
            self._original.add_edge(u, v)
            self._inserts += 1
            cu = self._cond.comp[u]
            cv = self._cond.comp[v]
            if cu == cv:
                self._intra_scc += 1
                return {"kind": "intra-scc", "changed": False, "rebuilt": False}
            if self._dyn.query(cv, cu):
                # The new edge closes a cycle at the DAG level: the two
                # components (and everything between) merge into one SCC.
                self._scc_merges += 1
                self._rebuild_pipeline()
                return {"kind": "scc-merge", "changed": True, "rebuilt": True}
            resurrect = self._dyn.is_tombstoned(cu, cv)
            compacts0 = self._dyn.stats()["updates"]["compacts"]
            changed = self._dyn.insert_edge(cu, cv)
            if self._dag_mult is not None:
                self._dag_mult[(cu, cv)] = self._dag_mult.get((cu, cv), 0) + 1
            rebuilt = False
            if resurrect:
                # The DAG edge came back from a tombstone: labels are
                # untouched but the published tombstone set shrinks.
                self._tomb_dirty = True
            elif self._dyn.stats()["updates"]["compacts"] != compacts0:
                # A ghost-only cycle forced a compact: the tombstones
                # were dropped and the labels rebuilt minimal.
                self._compacts += 1
                self._full_pending = True
                self._in_dirty = True
                self._tomb_dirty = True
                rebuilt = True
            elif changed:
                self._in_dirty = True
                if self._dyn.stats()["inserts_since_rebuild"] == 0:
                    # DynamicDL hit its bloat threshold and rebuilt:
                    # the out side (and witness order) changed too.
                    rebuilt = True
                    self._auto_rebuilds += 1
                    self._full_pending = True
            else:
                self._noop_inserts += 1
            return {"kind": "inserted", "changed": changed, "rebuilt": rebuilt}

    def validate_edge(self, u: int, v: int) -> None:
        """Raise ``ValueError`` for edges no insert could ever accept.

        Checked up front by :meth:`add_edge` and — over whole streams —
        by :meth:`repro.live.LiveIndex.apply_updates`, so a bad edge in
        the middle of a stream rejects the *entire* stream before any
        mutation instead of leaving earlier edges half-applied.
        """
        n = self._original.n
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
        if u == v:
            raise ValueError("self-loops cannot change reachability; rejected")

    def insert_edges(self, edges) -> Dict[str, int]:
        """Apply a stream of edges (batched); aggregate counts by kind."""
        summary = self.apply_ops([("+", u, v) for u, v in edges])
        summary["edges"] = summary["ops"]
        return summary

    def remove_edge(self, u: int, v: int) -> Dict[str, object]:
        """Remove original-graph edge ``u -> v``; returns what happened.

        The result's ``kind`` is one of

        * ``absent`` — the edge is not in the graph, nothing touched;
        * ``intra-scc`` — both endpoints in one SCC and the component
          stays strongly connected without the edge: no answer changes;
        * ``scc-split`` — the removal disconnected its SCC: recondensed
          and fully rebuilt (``rebuilt`` is always True);
        * ``multi-edge`` — other original edges still map to the same
          DAG edge: graph shrinks, oracle untouched;
        * ``tombstoned`` — the last original copy of a live DAG edge:
          :meth:`DynamicDL.remove_edge` tombstone (``changed`` says
          whether any live answer flipped).

        Raises ``ValueError`` on self-loops or out-of-range vertices.
        """
        self.validate_edge(u, v)
        with self._lock:
            return self._remove_edge_locked(u, v)

    def _remove_edge_locked(self, u: int, v: int) -> Dict[str, object]:
        if not self._original.has_edge(u, v):
            self._absent_removals += 1
            return {"kind": "absent", "changed": False, "rebuilt": False}
        self._removals += 1
        cu = self._cond.comp[u]
        cv = self._cond.comp[v]
        if cu == cv:
            self._original.remove_edge(u, v)
            if self._scc_intact(u, v):
                self._intra_scc_removals += 1
                return {"kind": "intra-scc", "changed": False, "rebuilt": False}
            # The component is no longer strongly connected: every
            # epoch-keyed answer shape can change, so recondense.
            self._scc_splits += 1
            self._rebuild_pipeline()
            return {"kind": "scc-split", "changed": True, "rebuilt": True}
        # Build the multiplicity map BEFORE the physical removal so the
        # edge being removed is still counted.
        mult = self._dag_multiplicity()
        self._original.remove_edge(u, v)
        left = mult.get((cu, cv), 0) - 1
        if left > 0:
            mult[(cu, cv)] = left
            self._multi_edge_removals += 1
            return {"kind": "multi-edge", "changed": False, "rebuilt": False}
        mult.pop((cu, cv), None)
        changed = self._dyn.remove_edge(cu, cv)
        self._tombstoned_removals += 1
        self._tomb_dirty = True
        return {"kind": "tombstoned", "changed": changed, "rebuilt": False}

    def _scc_intact(self, u: int, v: int) -> bool:
        """Whether ``u``'s SCC survives losing edge ``u -> v``.

        The component stays strongly connected iff ``u`` still reaches
        ``v`` after the removal.  Any such path stays *inside* the
        component (``v`` still reaches ``u``, so every vertex on a
        ``u``-to-``v`` path is mutually reachable with both), which
        makes this a local DFS over the component's vertices instead
        of a recondensation of the whole graph.
        """
        comp = self._cond.comp
        cid = comp[u]
        out = self._original.out_adj
        stack = [u]
        seen = {u}
        while stack:
            x = stack.pop()
            for y in out[x]:
                if comp[y] != cid or y in seen:
                    continue
                if y == v:
                    return True
                seen.add(y)
                stack.append(y)
        return False

    def _dag_multiplicity(self) -> Dict[Edge, int]:
        """Lazy ``(cu, cv) -> count`` of original edges per DAG edge."""
        if self._dag_mult is None:
            comp = self._cond.comp
            mult: Dict[Edge, int] = {}
            for x, y in self._original.edges():
                cx, cy = comp[x], comp[y]
                if cx != cy:
                    key = (cx, cy)
                    mult[key] = mult.get(key, 0) + 1
            self._dag_mult = mult
        return self._dag_mult

    def apply_ops(self, ops: Iterable) -> Dict[str, object]:
        """Apply a mixed insert/remove stream in order; batched inserts.

        ``ops`` is anything :func:`normalize_ops` accepts.  Maximal
        runs of consecutive inserts go through the batched
        :meth:`DynamicDL.insert_edges` kernel; removals flush the run
        first so stream order is preserved.  The whole stream is
        validated before any mutation (stream-atomic rejection of bad
        vertices / self-loops).
        """
        ops = normalize_ops(ops)
        for _, u, v in ops:
            self.validate_edge(u, v)
        summary: Dict[str, object] = {
            "ops": len(ops),
            "inserts": 0,
            "removals": 0,
            "changed": 0,
            "duplicate": 0,
            "noop": 0,
            "intra_scc": 0,
            "scc_merges": 0,
            "rebuilds": 0,
            "absent": 0,
            "multi_edge": 0,
            "intra_scc_removals": 0,
            "scc_splits": 0,
            "tombstoned": 0,
        }
        with self._lock:
            run: List[Edge] = []
            for op, u, v in ops:
                if op == "+":
                    run.append((u, v))
                    continue
                if run:
                    self._apply_insert_run(run, summary)
                    run = []
                info = self._remove_edge_locked(u, v)
                summary["removals"] += 1
                kind = info["kind"]
                if kind == "absent":
                    summary["absent"] += 1
                elif kind == "intra-scc":
                    summary["intra_scc_removals"] += 1
                elif kind == "multi-edge":
                    summary["multi_edge"] += 1
                elif kind == "scc-split":
                    summary["scc_splits"] += 1
                    summary["rebuilds"] += 1
                elif kind == "tombstoned":
                    summary["tombstoned"] += 1
                if info["changed"]:
                    summary["changed"] += 1
            if run:
                self._apply_insert_run(run, summary)
            summary["tombstones"] = self._dyn.stats()["tombstones"]
            summary["dirt_ratio"] = self._dyn.dirt_ratio
        return summary

    def _apply_insert_run(self, run: Sequence[Edge], summary: Dict) -> None:
        """Apply a run of inserts through the batched oracle kernel.

        All original edges are added up front; the DAG-level remainder
        goes through :meth:`DynamicDL.insert_edges` in one sweep.  A
        :class:`CycleInBatch` means some edge merges SCCs: the
        cycle-free prefix is applied batched, then one recondense of
        the original graph (which already holds the *entire* run)
        absorbs the merge edge and everything after it.
        """
        pending: List[Edge] = []
        for u, v in run:
            summary["inserts"] += 1
            if self._original.has_edge(u, v):
                self._duplicate_edges += 1
                summary["duplicate"] += 1
                continue
            self._original.add_edge(u, v)
            self._inserts += 1
            pending.append((u, v))
        if not pending:
            return
        comp = self._cond.comp
        mapped: List[Edge] = []
        for u, v in pending:
            cu, cv = comp[u], comp[v]
            if cu == cv:
                self._intra_scc += 1
                summary["intra_scc"] += 1
                continue
            mapped.append((cu, cv))
        if not mapped:
            return
        mult = self._dag_mult
        compacts0 = self._dyn.stats()["updates"]["compacts"]
        try:
            s = self._dyn.insert_edges(mapped)
        except CycleInBatch as exc:
            prefix = mapped[: exc.index]
            if prefix:
                s = self._dyn.insert_edges(prefix)
                if mult is not None:
                    for e in prefix:
                        mult[e] = mult.get(e, 0) + 1
                self._absorb_dyn_summary(s, summary)
            # mapped[exc.index] closes a cycle at the DAG level; the
            # recondense also absorbs every edge after it (they are
            # already in the original graph).
            self._scc_merges += 1
            summary["scc_merges"] += 1
            summary["rebuilds"] += 1
            summary["changed"] += 1
            self._rebuild_pipeline()
            return
        if mult is not None:
            for e in mapped:
                mult[e] = mult.get(e, 0) + 1
        if self._dyn.stats()["updates"]["compacts"] != compacts0:
            # A ghost-only cycle forced a compact mid-batch.
            self._compacts += 1
            self._full_pending = True
            self._in_dirty = True
            self._tomb_dirty = True
            summary["rebuilds"] += 1
        self._absorb_dyn_summary(s, summary)

    def _absorb_dyn_summary(self, s: Dict, summary: Dict) -> None:
        """Fold a :meth:`DynamicDL.insert_edges` summary into ours."""
        summary["changed"] += s["changed"]
        noop = s["noop"] + s["duplicate"]
        self._noop_inserts += noop
        summary["noop"] += noop
        if s["novel"]:
            self._in_dirty = True
        if s["resurrected"]:
            self._tomb_dirty = True
        if s["auto_rebuilt"]:
            self._auto_rebuilds += 1
            self._full_pending = True
            summary["rebuilds"] += 1

    def compact(self) -> Dict[str, object]:
        """Physically drop the oracle's tombstones (minimal rebuild).

        Returns ``{"dropped", "rebuilt"}``.  A no-op when there are no
        tombstones.  The live tier calls this before a full recompile
        once ``dirt_ratio`` crosses its threshold.
        """
        with self._lock:
            dropped = self._dyn.compact()
            if dropped:
                self._compacts += 1
                self._full_pending = True
                self._in_dirty = True
                self._tomb_dirty = True
            return {"dropped": dropped, "rebuilt": bool(dropped)}

    @property
    def dirt_ratio(self) -> float:
        """Tombstoned fraction of the oracle's ghost edge set."""
        return self._dyn.dirt_ratio

    # -- telemetry -----------------------------------------------------
    def bind_metrics(self, registry) -> None:
        """Time the compile stages into a telemetry registry.

        ``compile`` is the whole :meth:`compile_to`; ``pack`` and
        ``certs`` split it into section (re)packing vs. graph
        certificate recomputation, the two stages whose relative cost
        flips between incremental and full profiles.
        """
        self._compile_hist = registry.histogram(
            "repro_compile_seconds",
            "wall time of one compile_to (any profile)",
        )
        self._pack_hist = registry.histogram(
            "repro_compile_pack_seconds",
            "compile stage: label/tombstone section packing",
        )
        self._cert_hist = registry.histogram(
            "repro_compile_certs_seconds",
            "compile stage: height/interval certificate recomputation",
        )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _pack(self, name: str, data, dtype: Optional[str], dirty: bool) -> None:
        """Cache-aware :func:`pack_section` into the working section map."""
        if dirty or name not in self._sections:
            self._sections[name] = pack_section(data, dtype) if dtype else pack_section(data)
            self._sections_repacked += 1
        else:
            self._sections_reused += 1

    def compile_to(self, path, *, full: Optional[bool] = None) -> Dict[str, object]:
        """Write the current state as a pipeline artifact at ``path``.

        ``full=None`` (default) compiles fully when the out side is
        dirty (first compile, auto rebuild, SCC merge) and
        incrementally otherwise; ``full=True`` forces the full profile
        (all sections repacked, interval certificates included).
        Returns ``{"bytes", "full", "sections_reused",
        "sections_repacked", "compile_s"}``.
        """
        t0 = time.perf_counter()
        with self._lock:
            do_full = self._full_pending if full is None else (full or self._full_pending)
            reused0, repacked0 = self._sections_reused, self._sections_repacked
            t_pack0 = time.perf_counter()
            dyn = self._dyn
            labels = dyn.labels
            oh, oo, ih, io_ = labels.arena()

            self._pack("comp", self._cond.comp, None, do_full)
            self._pack("inner/out_hops", oh, None, do_full)
            self._pack("inner/out_offs", oo, "<i8", do_full)
            self._pack("inner/hop_vertex", dyn.order_list, None, do_full)
            self._pack("inner/in_hops", ih, None, self._in_dirty or do_full)
            self._pack("inner/in_offs", io_, "<i8", self._in_dirty or do_full)

            # Tombstone sections (optional): the serving side needs the
            # removed DAG edges plus a live (tombstone-free) forward CSR
            # to demote suspect label positives to exact live answers.
            tombs = dyn.tombstones
            tomb_names = (
                "inner/tomb_u",
                "inner/tomb_v",
                "inner/live_offs",
                "inner/live_tgts",
            )
            if tombs:
                if self._tomb_dirty or do_full or tomb_names[0] not in self._sections:
                    from ..graph.csr import build_csr_arrays

                    live_offs, live_tgts = build_csr_arrays(dyn.live_out_adj())
                    self._sections["inner/tomb_u"] = pack_section(
                        [e[0] for e in tombs]
                    )
                    self._sections["inner/tomb_v"] = pack_section(
                        [e[1] for e in tombs]
                    )
                    self._sections["inner/live_offs"] = pack_section(
                        live_offs, "<i8"
                    )
                    self._sections["inner/live_tgts"] = pack_section(live_tgts)
                    self._sections_repacked += 4
                else:
                    self._sections_reused += 4
            else:
                for name in tomb_names:
                    self._sections.pop(name, None)

            # Graph certificates: the height filter must match the
            # *current* graph on every publish; the interval rounds are
            # full-compile-only (see the module docstring).
            t_cert0 = time.perf_counter()
            rounds: List[Tuple[object, object]] = []
            if do_full:
                from ..kernels.batchquery import compile_graph_aux

                height, rounds = compile_graph_aux(dyn.graph)
            else:
                from ..kernels.grail import compute_heights

                height = compute_heights(dyn.graph)
            stale_rounds = [
                name for name in self._sections if name.startswith("inner/iv_")
            ]
            for name in stale_rounds:
                del self._sections[name]
            if height is not None:
                self._sections["inner/height"] = pack_section(height)
                self._sections_repacked += 1
            else:  # pragma: no cover - the condensation DAG is acyclic
                self._sections.pop("inner/height", None)
            for i, (low, post) in enumerate(rounds):
                self._sections[f"inner/iv_low_{i}"] = pack_section(low)
                self._sections[f"inner/iv_post_{i}"] = pack_section(post)
                self._sections_repacked += 2
            t_cert1 = time.perf_counter()

            meta = {
                "original_n": self._original.n,
                "original_m": self._original.m,
                "dag_n": self._cond.dag.n,
                "dag_m": dyn.m,
                "method": "DL",
                "live": {
                    "inserts": self._inserts,
                    "removals": self._removals,
                    "tombstones": len(tombs),
                    "full_compile": do_full,
                },
                "inner": {
                    "kind": "labels",
                    "meta": {
                        "method": "DL",
                        "n": dyn.n,
                        "params": {"order": self._order},
                        "rank_space": True,
                        "reflexive": False,
                        "rounds": len(rounds),
                    },
                },
            }
            from ..serialization import PIPELINE_KIND

            nbytes = write_artifact(path, PIPELINE_KIND, meta, dict(self._sections))
            if do_full:
                self._full_compiles += 1
            else:
                self._incremental_compiles += 1
            self._full_pending = False
            self._in_dirty = False
            self._tomb_dirty = False
            compile_s = time.perf_counter() - t0
            if self._compile_hist is not None:
                self._compile_hist.observe_s(compile_s)
                self._pack_hist.observe_s(t_cert0 - t_pack0)
                self._cert_hist.observe_s(t_cert1 - t_cert0)
            return {
                "bytes": nbytes,
                "full": do_full,
                "sections_reused": self._sections_reused - reused0,
                "sections_repacked": self._sections_repacked - repacked0,
                "compile_s": compile_s,
            }

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "n": self._original.n,
                "m": self._original.m,
                "dag_n": self._cond.dag.n,
                "inserts": self._inserts,
                "intra_scc_edges": self._intra_scc,
                "noop_inserts": self._noop_inserts,
                "duplicate_edges": self._duplicate_edges,
                "auto_rebuilds": self._auto_rebuilds,
                "scc_merges": self._scc_merges,
                "removals": self._removals,
                "absent_removals": self._absent_removals,
                "intra_scc_removals": self._intra_scc_removals,
                "multi_edge_removals": self._multi_edge_removals,
                "tombstoned_removals": self._tombstoned_removals,
                "scc_splits": self._scc_splits,
                "compacts": self._compacts,
                "tombstones": self._dyn.stats()["tombstones"],
                "dirt_ratio": self._dyn.dirt_ratio,
                "full_compiles": self._full_compiles,
                "incremental_compiles": self._incremental_compiles,
                "sections_reused": self._sections_reused,
                "sections_repacked": self._sections_repacked,
                "index_size_ints": self._dyn.index_size_ints(),
                "oracle": self._dyn.stats(),
            }

    def __repr__(self) -> str:
        return (
            f"IncrementalCompiler(n={self._original.n}, m={self._original.m}, "
            f"inserts={self._inserts})"
        )
