"""Epoch-versioned artifact store: load side-by-side, flip, drain.

A running server must move from artifact version N to N+1 without
dropping a connection or mixing versions inside a batch.  The store
gives that three guarantees:

* **Monotone epochs.**  Every :meth:`VersionedArtifactStore.publish`
  loads the new artifact *next to* the live one and assigns the next
  integer epoch; the current-epoch pointer flips atomically under the
  store lock.  Epoch numbers never repeat or go backwards, so an epoch
  is a valid cache-key component (stale entries become unreachable the
  moment the pointer moves — no global cache flush).
* **Leased reads.**  A batch executor takes an :class:`EpochLease`
  (refcount +1 on that epoch's entry), answers the whole batch against
  the leased oracle, and releases.  One batch therefore sees exactly
  one version — never a mix — whatever publishes happen meanwhile.
* **Deterministic drain.**  A publish retires the previous epoch; its
  mmap is closed (and its file unlinked, when the store owns it) as
  soon as its refcount reaches zero — immediately if nothing is in
  flight, otherwise when the last leased batch resolves.  A serving
  process's address space holds at most ``1 + in-flight versions``
  mappings, not one per publish ever made.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from typing import Callable, Dict, List, Optional

__all__ = ["EpochLease", "VersionedArtifactStore", "artifact_of"]


def _default_loader(path: str):
    from ..serialization import load_artifact

    return load_artifact(path, mmap=True)


def artifact_of(oracle):
    """The backing :class:`~repro.artifact.Artifact`, if the oracle has one.

    Compiled method oracles carry it as ``oracle.artifact``; a
    serve-mode facade carries it on its inner index.  Shared by the
    store's drain path and the worker processes' epoch-swap path — the
    one place that knows where an oracle keeps its mapping.
    """
    art = getattr(oracle, "artifact", None)
    if art is None:
        art = getattr(getattr(oracle, "index", None), "artifact", None)
    return art


class _Epoch:
    """One loaded artifact version and its lease bookkeeping."""

    __slots__ = ("epoch", "path", "oracle", "refs", "retired", "owns_file")

    def __init__(self, epoch: int, path: str, oracle, owns_file: bool) -> None:
        self.epoch = epoch
        self.path = path
        self.oracle = oracle
        self.refs = 0
        self.retired = False
        self.owns_file = owns_file


class EpochLease:
    """A refcounted read lease on one epoch's oracle.

    Hold it for exactly one batch: every answer produced under the
    lease comes from one artifact version, and releasing it is what
    lets a retired version's mmap actually unmap.  Usable as a context
    manager; releasing twice is a no-op.
    """

    __slots__ = ("epoch", "oracle", "path", "_store", "_released")

    def __init__(self, store: "VersionedArtifactStore", entry: _Epoch) -> None:
        self.epoch = entry.epoch
        self.oracle = entry.oracle
        self.path = entry.path
        self._store = store
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self.oracle = None  # the lease must not outlive its refcount
        self._store._release(self.epoch)

    def __enter__(self) -> "EpochLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else "held"
        return f"EpochLease(epoch={self.epoch}, {state})"


class VersionedArtifactStore:
    """Artifact versions behind an atomic current-epoch pointer.

    Parameters
    ----------
    loader:
        ``loader(path) -> oracle`` used by :meth:`publish`; defaults to
        :func:`repro.serialization.load_artifact` with ``mmap=True``.
        The returned oracle only needs ``query``/``query_batch``.

    ``publish(path, owns_file=True)`` transfers the file to the store:
    it is unlinked when that epoch drains (the incremental compiler
    publishes a fresh temp file per epoch and would otherwise leak one
    per update).  Externally owned files (``owns_file=False``, the
    default) are never touched on disk.
    """

    def __init__(self, loader: Optional[Callable[[str], object]] = None) -> None:
        self._loader = loader or _default_loader
        self._lock = threading.Lock()
        self._entries: Dict[int, _Epoch] = {}
        self._next_epoch = 1
        self._current: Optional[_Epoch] = None
        self._closed = False
        self._publishes = 0
        self._drains = 0
        self._snap_dir: Optional[str] = None
        self._snap_seq = 0
        self._publish_hooks: List[Callable[[int, str], None]] = []

    # -- publishing ----------------------------------------------------
    def add_publish_hook(self, hook: Callable[[int, str], None]) -> None:
        """Register ``hook(epoch, path)`` to fire after every flip.

        Hooks run on the publishing thread, after the pointer moved and
        outside the store lock; exceptions are swallowed (an observer —
        a replication shipper, a log line — must never fail a publish).
        Anything that needs the epoch's *content* must ``acquire()`` a
        lease inside the hook (or later): the path alone may be
        unlinked once the epoch drains.
        """
        with self._lock:
            self._publish_hooks.append(hook)

    def publish(self, path, *, owns_file: bool = False,
                epoch: Optional[int] = None) -> int:
        """Load ``path`` as the next epoch and flip the pointer to it.

        The load happens *outside* the store lock (readers keep leasing
        the live epoch throughout), the flip inside it.  Returns the
        new epoch.  A load failure leaves the store exactly as it was.

        ``epoch`` pins the new version's number instead of taking the
        next local one — the replication path, where a replica must
        mirror the primary's epoch so clients see one monotone epoch
        sequence whichever replica answers.  An explicit epoch that is
        not strictly greater than the current one raises ``ValueError``
        and changes nothing: epoch numbers never repeat or go
        backwards, on replicas exactly as on the primary.
        """
        path = str(path)
        if epoch is not None:
            epoch = int(epoch)
            with self._lock:
                current = None if self._current is None else self._current.epoch
                if epoch <= (current or 0):
                    raise ValueError(
                        f"explicit epoch {epoch} is not ahead of the "
                        f"current epoch {current} (epochs are monotone)"
                    )
        oracle = self._loader(path)  # may raise: store state untouched
        drain: List[_Epoch] = []
        stale: Optional[str] = None
        with self._lock:
            if self._closed:
                raise RuntimeError("artifact store is closed")
            if epoch is not None:
                current = None if self._current is None else self._current.epoch
                if epoch <= (current or 0):  # re-check: publishes raced
                    stale = (
                        f"explicit epoch {epoch} is not ahead of the "
                        f"current epoch {current} (epochs are monotone)"
                    )
                else:
                    number = epoch
                    self._next_epoch = max(self._next_epoch, epoch + 1)
            else:
                number = self._next_epoch
                self._next_epoch += 1
            if stale is None:
                entry = _Epoch(number, path, oracle, owns_file)
                self._entries[entry.epoch] = entry
                previous, self._current = self._current, entry
                self._publishes += 1
                hooks = list(self._publish_hooks)
                if previous is not None:
                    previous.retired = True
                    if previous.refs == 0:
                        drain.append(self._entries.pop(previous.epoch))
        if stale is not None:
            # Unmap the version we just loaded but will never serve.
            art = artifact_of(oracle)
            del oracle
            if art is not None:
                art.close()
            raise ValueError(stale)
        for old in drain:
            self._drain(old)
        for hook in hooks:
            try:
                hook(entry.epoch, path)
            except Exception:  # pragma: no cover - observers must not fail us
                pass
        return entry.epoch

    def publish_snapshot(self, path, *, epoch: Optional[int] = None) -> int:
        """Publish a *pinned* copy of ``path`` as the next epoch.

        The file at ``path`` is hard-linked (byte-copied where linking
        is impossible) under a store-private name, and the snapshot —
        not the caller's path — becomes the epoch's file, owned and
        unlinked by the store on drain.  This is mandatory for any
        externally-owned file that may be replaced or deleted while an
        epoch still references it: an epoch-aware worker re-opens the
        epoch's path on its first batch of that epoch, and the caller's
        path would alias whatever content is there *by then*.  The
        snapshot pins the exact inode published, so epoch → content
        holds however the original file churns.

        ``epoch`` pins the published epoch number (replication; see
        :meth:`publish`).
        """
        path = str(path)
        with self._lock:
            if self._closed:
                raise RuntimeError("artifact store is closed")
            if self._snap_dir is None:
                self._snap_dir = tempfile.mkdtemp(prefix="repro-store-")
            self._snap_seq += 1
            snap = os.path.join(self._snap_dir, f"snap-{self._snap_seq:06d}.rpro")
        try:
            os.link(path, snap)
        except OSError:  # cross-device or FS without hard links
            shutil.copy2(path, snap)
        try:
            return self.publish(snap, owns_file=True, epoch=epoch)
        except BaseException:
            try:
                os.unlink(snap)
            except OSError:  # pragma: no cover - already gone
                pass
            raise

    # -- leasing -------------------------------------------------------
    def acquire(self) -> EpochLease:
        """Lease the current epoch (refcount +1) for one batch."""
        with self._lock:
            entry = self._current
            if entry is None or self._closed:
                raise RuntimeError(
                    "artifact store has no published epoch"
                    if not self._closed
                    else "artifact store is closed"
                )
            entry.refs += 1
            return EpochLease(self, entry)

    def _release(self, epoch: int) -> None:
        drain: Optional[_Epoch] = None
        with self._lock:
            entry = self._entries.get(epoch)
            if entry is None:  # already drained (double release is a no-op)
                return
            entry.refs -= 1
            if entry.retired and entry.refs == 0:
                drain = self._entries.pop(epoch)
        if drain is not None:
            self._drain(drain)
            snap_dir = None
            with self._lock:
                if self._closed and not self._entries:
                    snap_dir, self._snap_dir = self._snap_dir, None
            if snap_dir is not None:  # last lease after close: tidy up
                shutil.rmtree(snap_dir, ignore_errors=True)

    # -- drain ---------------------------------------------------------
    def _drain(self, entry: _Epoch) -> None:
        """Unmap a fully-released retired epoch (and unlink owned files)."""
        oracle, entry.oracle = entry.oracle, None
        art = artifact_of(oracle)
        del oracle  # drop the last array references before closing
        if art is not None:
            art.close()
        if entry.owns_file:
            try:
                os.unlink(entry.path)
            except OSError:  # pragma: no cover - already gone
                pass
        with self._lock:
            self._drains += 1

    # -- introspection -------------------------------------------------
    @property
    def current_epoch(self) -> Optional[int]:
        with self._lock:
            return None if self._current is None else self._current.epoch

    @property
    def current_path(self) -> Optional[str]:
        with self._lock:
            return None if self._current is None else self._current.path

    def current_oracle(self):
        """The live oracle *without* a lease — metadata peeks only.

        Anything that answers queries must :meth:`acquire` instead, or
        a concurrent publish may unmap the arrays mid-read.
        """
        with self._lock:
            return None if self._current is None else self._current.oracle

    def loaded_epochs(self) -> List[int]:
        with self._lock:
            return sorted(self._entries)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            current = self._current
            return {
                "epoch": None if current is None else current.epoch,
                "path": None if current is None else current.path,
                "loaded_versions": len(self._entries),
                "retired_waiting": sum(
                    1 for e in self._entries.values() if e.retired
                ),
                "in_flight_leases": sum(e.refs for e in self._entries.values()),
                "publishes": self._publishes,
                "drains": self._drains,
            }

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Retire everything; versions with live leases drain on release."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._current = None
            drain = [e for e in self._entries.values() if e.refs == 0]
            for entry in drain:
                del self._entries[entry.epoch]
            for entry in self._entries.values():
                entry.retired = True
        for entry in drain:
            self._drain(entry)
        if self._snap_dir is not None and not self._entries:
            shutil.rmtree(self._snap_dir, ignore_errors=True)
            self._snap_dir = None

    def __enter__(self) -> "VersionedArtifactStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"VersionedArtifactStore(epoch={self.current_epoch}, "
            f"loaded={len(self._entries)})"
        )
