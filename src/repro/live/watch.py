"""File watcher: republish an artifact path when the file is replaced.

The ``serve --watch`` deployment shape: an external build job writes a
new artifact and atomically renames it over the served path; the
watcher notices the identity change and publishes the new file into the
store — the running server flips epochs without a restart.

Polling (default 0.5 s) keeps this stdlib-only.  The change signature
is ``(st_ino, st_size, st_mtime_ns)``, so the *write-new-then-rename*
discipline is what publishers must follow: renaming changes the inode
atomically, while rewriting a served file in place would mutate pages
the old epoch still has mapped.  A half-written file that fails to load
(bad magic, short read) is retried on the next tick and counted, never
published.

What the watcher actually publishes is a **snapshot** (see
:meth:`~repro.live.store.VersionedArtifactStore.publish_snapshot`):
the watched *path* would alias every epoch — an epoch-aware worker
re-opening it after a second replacement would map content the parent
never leased — while the snapshot pins the exact inode the signature
saw, so the epoch → content binding holds however fast the file is
replaced.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Callable, Dict, Optional, Tuple

from .store import VersionedArtifactStore

__all__ = ["ArtifactWatcher"]

_Sig = Tuple[int, int, int]


def _signature(path: str) -> Optional[_Sig]:
    try:
        st = os.stat(path)
    except OSError:
        return None
    return (st.st_ino, st.st_size, st.st_mtime_ns)


class ArtifactWatcher:
    """Poll ``path``; publish into ``store`` whenever the file changes.

    Construct the watcher *before* publishing the initial version and
    call :meth:`publish_current` for epoch 1 — that closes the race
    where a replacement lands between the first load and the first
    stat (the baseline signature is captured before each load, so a
    concurrent replace only causes one redundant republish, never a
    missed one).  ``on_swap(epoch, path)`` (optional) fires after each
    successful publish — the CLI uses it to log swaps.
    """

    #: Consecutive publish failures after which the watcher surfaces a
    #: ``RuntimeWarning`` (once per losing streak): a file that stays
    #: unloadable this long is not a half-written replace racing the
    #: poll — it is a broken publisher, and silent retrying would hide
    #: it forever.
    WARN_AFTER = 5

    #: Retry backoff ceiling, as a multiple of ``interval_s``.
    MAX_BACKOFF_TICKS = 8

    def __init__(
        self,
        store: VersionedArtifactStore,
        path: str,
        *,
        interval_s: float = 0.5,
        on_swap: Optional[Callable[[int, str], None]] = None,
        warn_after: Optional[int] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.store = store
        self.path = str(path)
        self.interval_s = interval_s
        self._on_swap = on_swap
        self._published_sig: Optional[_Sig] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._swaps = 0
        self._failures = 0
        self._last_error = ""
        self.warn_after = self.WARN_AFTER if warn_after is None else warn_after
        self._consecutive_failures = 0
        self._warned = False

    # ------------------------------------------------------------------
    def publish_current(self) -> int:
        """Publish the file as it stands now (the initial epoch).

        The signature is captured *before* the load: a replacement
        landing mid-load costs one redundant republish on the next
        tick, never a missed one.  Raises whatever the load raises — a
        server must not start on an unloadable artifact.
        """
        sig = _signature(self.path)
        epoch = self.store.publish_snapshot(self.path)
        self._published_sig = sig
        return epoch

    # ------------------------------------------------------------------
    def start(self) -> "ArtifactWatcher":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._poll_loop, name="repro-live-watch", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ArtifactWatcher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def poll_once(self) -> Optional[int]:
        """One poll step: publish if the file changed; returns the epoch.

        Exposed for tests and for callers that schedule their own
        ticks; the background thread just calls this on its interval.

        A publish failure (typically a half-written file caught between
        the publisher's write and its atomic rename) is retried — but
        not silently forever: consecutive failures back the poll
        interval off exponentially (up to :data:`MAX_BACKOFF_TICKS` ×
        ``interval_s``) and, after :attr:`warn_after` in a row, surface
        one ``RuntimeWarning`` naming the path and the last error.  Any
        success (or an untouched file) resets the streak and the
        backoff.
        """
        sig = _signature(self.path)
        if sig is None or sig == self._published_sig:
            self._consecutive_failures = 0
            self._warned = False
            return None
        try:
            epoch = self.store.publish_snapshot(self.path)
        except Exception as exc:  # half-written file: retry with backoff
            self._failures += 1
            self._consecutive_failures += 1
            self._last_error = repr(exc)
            if self._consecutive_failures >= self.warn_after and not self._warned:
                self._warned = True
                warnings.warn(
                    f"ArtifactWatcher: {self.path!r} has failed to load "
                    f"{self._consecutive_failures} times in a row "
                    f"(last error: {exc!r}); still serving the previous "
                    "epoch — check the publisher writes a complete file "
                    "and renames it atomically",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return None
        self._published_sig = sig
        self._swaps += 1
        self._consecutive_failures = 0
        self._warned = False
        if self._on_swap is not None:
            try:
                self._on_swap(epoch, self.path)
            except Exception:  # pragma: no cover - observer must not kill us
                pass
        return epoch

    def backoff_interval_s(self) -> float:
        """The wait before the next poll, grown by the failure streak."""
        ticks = min(
            self.MAX_BACKOFF_TICKS, 1 << min(self._consecutive_failures, 30)
        ) if self._consecutive_failures else 1
        return self.interval_s * ticks

    def _poll_loop(self) -> None:
        while not self._stop.wait(self.backoff_interval_s()):
            try:
                self.poll_once()
            except Exception as exc:  # pragma: no cover - stat races
                self._failures += 1
                self._last_error = repr(exc)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "interval_s": self.interval_s,
            "swaps": self._swaps,
            "failures": self._failures,
            "consecutive_failures": self._consecutive_failures,
            "backoff_interval_s": self.backoff_interval_s(),
            "last_error": self._last_error,
        }

    def __repr__(self) -> str:
        return f"ArtifactWatcher(path={self.path!r}, swaps={self._swaps})"
