"""repro — reachability oracles from "Simple, Fast, and Scalable
Reachability Oracle" (Jin & Wang, VLDB 2013), with every baseline the
paper evaluates against.

Quick start
-----------
>>> from repro import DiGraph, Reachability
>>> g = DiGraph(5)
>>> for u, v in [(0, 1), (1, 2), (2, 3), (1, 4)]:
...     _ = g.add_edge(u, v)
>>> oracle = Reachability(g)          # Distribution-Labeling by default
>>> oracle.query(0, 3)
True
>>> oracle.query(4, 2)
False

Main entry points
-----------------
* :class:`Reachability` — facade for arbitrary digraphs (condenses SCCs).
* :class:`DistributionLabeling` / :class:`HierarchicalLabeling` — the
  paper's two labeling algorithms, operating on DAGs.
* :func:`get_method` — registry of all indices by paper abbreviation
  (``DL``, ``HL``, ``PT``, ``INT``, ``PW8``, ``KR``, ``GL``, ``GL*``,
  ``PT*``, ``2HOP``, ``TF``, ``PL``, ``BFS``, ``DFS``, ``CH``).
* :mod:`repro.bench` / ``python -m repro.cli`` — regenerate the paper's
  tables and figures on synthetic stand-in datasets.
* :mod:`repro.server` / ``python -m repro.cli serve`` — serve a
  compiled artifact to concurrent clients: binary wire protocol,
  micro-batching, sharded result cache, worker processes over one
  shared mmap.
"""

from .graph.digraph import DiGraph
from .graph.scc import condense
from .core.base import ReachabilityIndex, get_method, method_registry
from .core.compiled import CompiledOracle
from .core.distribution import DistributionLabeling
from .core.dynamic import DynamicDL
from .core.hierarchical import HierarchicalLabeling
from .facade import Reachability
from .serialization import load_artifact, load_labels, save_artifact, save_labels

# Importing these modules registers every baseline in the method registry.
from . import baselines as _baselines  # noqa: F401
from .scarab import framework as _scarab  # noqa: F401

__version__ = "1.0.0"

__all__ = [
    "DiGraph",
    "condense",
    "ReachabilityIndex",
    "get_method",
    "method_registry",
    "DistributionLabeling",
    "DynamicDL",
    "HierarchicalLabeling",
    "Reachability",
    "CompiledOracle",
    "save_labels",
    "load_labels",
    "save_artifact",
    "load_artifact",
    "__version__",
]
