"""Persistence for built label oracles.

Index construction is the expensive step (that is the paper's whole
subject), so a production deployment builds once and serves many query
processes.  This module saves and restores the label-based oracles
(DL, HL, TF) as a single JSON document: graph shape, method parameters,
and the label arrays.

Non-label indices (interval/bitvector closures) rebuild quickly relative
to their size on disk and are deliberately not serialised.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .core.distribution import DistributionLabeling
from .core.hierarchical import HierarchicalLabeling
from .core.labels import LabelSet

__all__ = ["save_labels", "load_labels", "FrozenOracle"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


class FrozenOracle:
    """A deserialised label oracle: queries only, no graph attached."""

    def __init__(self, labels: LabelSet, method: str, rank_space: bool) -> None:
        self.labels = labels
        self.method = method
        self.rank_space = rank_space

    def query(self, u: int, v: int) -> bool:
        """Whether ``u`` reaches ``v`` per the stored labels."""
        return self.labels.query(u, v)

    def query_batch(self, pairs):
        """Batch queries over the sealed labels.

        Large batches on the arena layout route through the vectorized
        engine (label-only stages — a frozen oracle carries no graph,
        so the height/interval filters are skipped).
        """
        from .kernels.batchquery import engine_query_batch

        return engine_query_batch(self, self.labels, None, pairs)

    def index_size_ints(self) -> int:
        """Stored-integer count of the labels."""
        return self.labels.size_ints()

    def __repr__(self) -> str:
        return f"FrozenOracle(method={self.method}, n={self.labels.n})"


def save_labels(index, path: PathLike) -> None:
    """Serialise a DL/HL/TF oracle's labels to ``path`` (JSON).

    Raises
    ------
    TypeError
        If the index is not a label-based oracle.
    """
    if not isinstance(index, (DistributionLabeling, HierarchicalLabeling)):
        raise TypeError(
            f"only label oracles are serialisable, got {type(index).__name__}"
        )
    doc = {
        "format_version": _FORMAT_VERSION,
        "method": index.short_name,
        "n": index.graph.n,
        "m": index.graph.m,
        "labels": index.labels.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)


def load_labels(path: PathLike) -> FrozenOracle:
    """Restore a :class:`FrozenOracle` saved by :func:`save_labels`.

    Query semantics match the original index exactly: DL labels live in
    rank space and HL labels in vertex-id space, but both query by label
    intersection on the ids as stored, so no translation is needed.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    version = doc.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported label file version: {version!r}")
    labels = LabelSet.from_dict(doc["labels"])
    # Validate before sealing: seal trusts sorted, non-negative hops
    # (mask building shifts by them), so a corrupt file must be
    # rejected first.
    if not labels.check_sorted():
        raise ValueError("corrupt label file: labels are not sorted")
    if any(
        lab and lab[0] < 0 for side in (labels.lout, labels.lin) for lab in side
    ):
        raise ValueError("corrupt label file: negative hop id")
    # A frozen oracle never mutates its labels, so masks are safe.
    labels.seal(build_masks=True)
    method = str(doc.get("method", "?"))
    return FrozenOracle(labels, method, rank_space=(method == "DL"))
