"""Persistence for built oracles: v1 JSON labels and v2 binary artifacts.

Index construction is the expensive step (that is the paper's whole
subject), so a production deployment builds once and serves many query
processes.  Two formats are supported:

* **v2 binary artifacts** (:func:`save_artifact` / :func:`load_artifact`)
  — the build → compile → serve path.  Any
  :class:`~repro.core.base.ReachabilityIndex` (compiled on the fly),
  any :class:`~repro.core.compiled.CompiledOracle`, and the full
  :class:`~repro.facade.Reachability` pipeline (condensation included)
  round-trip through the container in :mod:`repro.artifact` with
  bit-identical query answers.  Loading memory-maps the arrays, so N
  serving processes share one physical copy.
* **v1 JSON label dumps** (:func:`save_labels` / :func:`load_labels`)
  — the original format, kept for back compatibility.  It covers only
  the DL/HL/TF label oracles and stores no condensation; new code
  should prefer artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .artifact import read_artifact, read_artifact_header, write_artifact
from .core.base import ReachabilityIndex
from .core.compiled import CompiledLabelOracle, CompiledOracle, compiled_kind
from .core.distribution import DistributionLabeling
from .core.hierarchical import HierarchicalLabeling
from .core.labels import LabelSet

__all__ = [
    "save_labels",
    "load_labels",
    "save_artifact",
    "load_artifact",
    "FrozenOracle",
]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

#: Artifact kind used for the facade's full-pipeline artifacts.
PIPELINE_KIND = "pipeline"


class FrozenOracle(CompiledLabelOracle):
    """A deserialised v1 label oracle: queries only, no graph attached.

    Kept as the :func:`load_labels` return type for back compatibility;
    it is now a :class:`~repro.core.compiled.CompiledLabelOracle`, so
    v1 files migrate to v2 artifacts by passing the loaded oracle to
    :func:`save_artifact` (or calling :meth:`compile`, a no-op alias).
    """

    def __init__(self, labels: LabelSet, method: str, rank_space: bool) -> None:
        super().__init__(labels, method, rank_space=rank_space)

    def compile(self) -> CompiledLabelOracle:
        """This object already is its compiled form."""
        return self

    def __repr__(self) -> str:
        return f"FrozenOracle(method={self.method}, n={self.labels.n})"


def save_labels(index, path: PathLike) -> None:
    """Serialise a DL/HL/TF oracle's labels to ``path`` (v1 JSON).

    Raises
    ------
    TypeError
        If the index is not a label-based oracle.  A facade
        :class:`~repro.facade.Reachability` is rejected by name — its
        SCC condensation would be silently lost here; use
        ``Reachability.save(path)``, which persists the full pipeline.
    """
    from .facade import Reachability

    if isinstance(index, Reachability):
        raise TypeError(
            "save_labels received a facade Reachability; its SCC "
            "condensation does not fit the v1 label format — use "
            "Reachability.save(path) to persist the full pipeline"
        )
    if not isinstance(index, (DistributionLabeling, HierarchicalLabeling)):
        raise TypeError(
            f"only label oracles are serialisable, got {type(index).__name__}"
        )
    doc = {
        "format_version": _FORMAT_VERSION,
        "method": index.short_name,
        "n": index.graph.n,
        "m": index.graph.m,
        "labels": index.labels.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)


def load_labels(path: PathLike) -> FrozenOracle:
    """Restore a :class:`FrozenOracle` saved by :func:`save_labels`.

    Query semantics match the original index exactly: DL labels live in
    rank space and HL labels in vertex-id space, but both query by label
    intersection on the ids as stored, so no translation is needed.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    version = doc.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported label file version: {version!r}")
    labels = LabelSet.from_dict(doc["labels"])
    # Validate before sealing: seal trusts sorted, non-negative hops
    # (mask building shifts by them), so a corrupt file must be
    # rejected first.
    if not labels.check_sorted():
        raise ValueError("corrupt label file: labels are not sorted")
    if any(
        lab and lab[0] < 0 for side in (labels.lout, labels.lin) for lab in side
    ):
        raise ValueError("corrupt label file: negative hop id")
    # A frozen oracle never mutates its labels, so masks are safe.
    labels.seal(build_masks=True)
    method = str(doc.get("method", "?"))
    return FrozenOracle(labels, method, rank_space=(method == "DL"))


# ----------------------------------------------------------------------
# v2 binary artifacts (build → compile → serve)
# ----------------------------------------------------------------------
#: Artifact save profiles.  ``mmap`` (default) writes raw little-endian
#: sections for zero-copy memory-mapped serving — N processes share one
#: physical copy — and bakes in every engine certificate.  ``compact``
#: deflates the sections and drops the poorly-compressible accessory
#: arrays: the interval-round certificates (extra negative filtering
#: only) and the DL witness-translation map (``witness`` raises, every
#: ``query`` is unaffected).  The smallest file, at the price of
#: private-memory loading.  Query answers are bit-identical under
#: every profile.
PROFILES = ("mmap", "compact")


def save_artifact(obj, path: PathLike, profile: str = "mmap") -> int:
    """Persist ``obj`` as a v2 binary artifact; returns bytes written.

    Accepts a live :class:`~repro.core.base.ReachabilityIndex`
    (compiled on the fly via :meth:`~repro.core.base.ReachabilityIndex.compile`),
    an already-compiled :class:`~repro.core.compiled.CompiledOracle`
    (including a v1 :class:`FrozenOracle` — the migration path), or a
    facade :class:`~repro.facade.Reachability`, whose artifact keeps
    the SCC condensation so original-graph queries survive the trip.
    See :data:`PROFILES` for the ``profile`` trade-off.
    """
    if profile not in PROFILES:
        raise ValueError(f"profile must be one of {PROFILES}, got {profile!r}")
    from .facade import Reachability

    if isinstance(obj, Reachability):
        kind = PIPELINE_KIND
        meta, sections = _pipeline_payload(obj)
    else:
        if isinstance(obj, CompiledOracle):
            compiled = obj
        elif isinstance(obj, ReachabilityIndex):
            compiled = obj.compile()
        else:
            raise TypeError(
                "save_artifact needs a ReachabilityIndex, CompiledOracle or "
                f"Reachability, got {type(obj).__name__}"
            )
        kind = compiled.kind
        meta, sections = compiled.to_payload()
    if profile == "compact":
        meta, sections = _compact_payload(kind, meta, sections)
    return write_artifact(path, kind, meta, sections, compress=(profile == "compact"))


def _compact_payload(kind, meta, sections):
    """Strip the accessory arrays for the compact profile.

    Applies to label payloads at any nesting depth (top-level, inside a
    pipeline, inside SCARAB): the ``iv_*`` interval-certificate
    sections and the ``hop_vertex`` witness map go (both are
    near-incompressible permutation-like arrays), ``rounds`` drops
    to 0.  Everything else — labels, heights, CSR snapshots — stays;
    query answers are never affected.
    """
    meta = json.loads(json.dumps(meta))  # deep copy (JSON-shaped by spec)

    def strip(doc_kind, doc_meta):
        if doc_kind == "labels":
            doc_meta["rounds"] = 0
        inner = doc_meta.get("inner")
        if isinstance(inner, dict) and "kind" in inner:
            strip(inner["kind"], inner["meta"])

    strip(kind, meta)
    # Sections are flat (nesting via name prefixes), so one pass removes
    # every stripped section at any depth.
    dropped = ("iv_low_", "iv_post_", "hop_vertex")
    sections = {
        name: payload
        for name, payload in sections.items()
        if not any(tag in name for tag in dropped)
    }
    return meta, sections


def load_artifact(path: PathLike, mmap: bool = True):
    """Restore whatever :func:`save_artifact` wrote.

    Returns a :class:`~repro.core.compiled.CompiledOracle` for method
    artifacts, or a serve-mode :class:`~repro.facade.Reachability` for
    pipeline artifacts.  With ``mmap=True`` (default) the arrays are
    zero-copy views over a shared read-only mapping; pass
    ``mmap=False`` to read a private copy instead.
    """
    art = read_artifact(path, mmap=mmap)
    if art.kind == PIPELINE_KIND:
        from .facade import Reachability

        return Reachability.from_artifact(art)
    return _oracle_from_artifact(art)


def artifact_info(path: PathLike) -> dict:
    """Header-only peek: kind, meta and section table of an artifact."""
    return read_artifact_header(path)


def _oracle_from_artifact(art, prefix: str = "") -> CompiledOracle:
    """Instantiate the compiled oracle stored (possibly nested) in ``art``."""
    if prefix:
        meta = art.meta
        for part in prefix.split("/"):
            meta = meta[part]
        kind = str(meta["kind"])
        meta = meta["meta"]
        section = lambda name: art.section(f"{prefix}/{name}")  # noqa: E731
    else:
        kind = art.kind
        meta = art.meta
        section = art.section
    oracle = compiled_kind(kind).from_payload(meta, section)
    # Keep the parsed artifact (and through it the mmap) reachable.
    oracle.artifact = art
    return oracle


def _pipeline_payload(reach):
    """``(meta, sections)`` for a facade pipeline artifact."""
    if reach.original is None:
        raise TypeError(
            "this Reachability is already serve-mode (loaded from an "
            "artifact); re-saving is not supported — keep the original "
            "artifact file instead"
        )
    compiled = reach.index.compile()
    inner_meta, inner_sections = compiled.to_payload()
    meta = {
        "original_n": reach.original.n,
        "original_m": reach.original.m,
        "dag_n": reach.condensation.dag.n,
        "dag_m": reach.condensation.dag.m,
        "method": compiled.short_name,
        "inner": {"kind": compiled.kind, "meta": inner_meta},
    }
    from .artifact import pack_section

    sections = {"comp": pack_section(reach.condensation.comp)}
    for name, packed in inner_sections.items():
        sections[f"inner/{name}"] = packed
    return meta, sections
