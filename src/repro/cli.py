"""Command-line entry point: paper tables/figures and artifact serving.

Usage::

    python -m repro.cli table2                  # full Table-2 sweep
    python -m repro.cli table5 --queries 4000   # fewer queries
    python -m repro.cli figure3 --datasets kegg,arxiv
    python -m repro.cli table1                  # dataset statistics
    python -m repro.cli list                    # available experiments
    python -m repro.cli ablation-rank           # design-choice ablation

    # build → compile → serve through binary artifacts:
    python -m repro.cli build --dataset kegg --method DL --out kegg.rpro
    python -m repro.cli query --artifact kegg.rpro --random 10000
    python -m repro.cli query --artifact kegg.rpro --pairs -   # stdin
    python -m repro.cli serve --artifact kegg.rpro --port 7431 \
        --workers 4 --batch-window 1.0 --cache-size 65536
    python -m repro.cli serve --artifact kegg.rpro --watch   # hot swap on
                                                 # atomic file replace
    python -m repro.cli serve --live kegg --port 7431        # updatable
    printf '0 7\n3 9\n' | python -m repro.cli update --port 7431 --edges -
    printf -- '- 0 7\n+ 2 5\n' | python -m repro.cli update --port 7431 \
        --edges -                                # mixed insert/remove batch
    python -m repro.cli top --port 7431          # live qps/latency/health

    # fault-tolerant tier: replicas + epoch-shipping router
    python -m repro.cli serve --artifact kegg.rpro --replicas 3
    python -m repro.cli route --replica h1:7431 --replica h2:7431

``build`` runs the full pipeline (SCC condensation + index) and writes
a compiled artifact; ``query`` serves a workload from the artifact in a
fresh process — no graph, arrays memory-mapped — which is exactly the
production split the lifecycle is designed around.  ``serve`` keeps
going: a TCP server (binary wire protocol, optional JSON/HTTP port)
with a micro-batching front end, a sharded result cache, and an
optional pool of worker processes that each mmap the same artifact.

Output of the table experiments is a text table shaped like the
paper's (datasets × methods, "—" for methods over budget).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .bench.experiments import EXPERIMENTS, get_experiment
from .bench.harness import RunResult, render_table, run_dataset
from .datasets.catalog import DATASETS, load, table1_rows

__all__ = ["main"]


def _print_table1() -> None:
    rows = table1_rows()
    header = (
        f"{'Dataset':<18}{'suite':<8}{'paper |V|':>12}{'paper |E|':>12}"
        f"{'standin |V|':>13}{'standin |E|':>13}"
    )
    print("Table 1: datasets — paper sizes vs synthetic stand-ins")
    print("=" * len(header))
    print(header)
    print("-" * len(header))
    for name, suite, pn, pm, sn, sm in rows:
        print(f"{name:<18}{suite:<8}{pn:>12,}{pm:>12,}{sn:>13,}{sm:>13,}")


def _run_standard(
    exp_id: str,
    datasets: Optional[List[str]],
    queries: Optional[int],
    repeats: int,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> None:
    exp = get_experiment(exp_id)
    ds = datasets or exp.datasets
    q = queries or exp.queries
    all_results: List[RunResult] = []
    for name in ds:
        t0 = time.perf_counter()
        print(f"[{exp_id}] running {name} ...", file=sys.stderr, flush=True)
        results = run_dataset(
            name,
            exp.methods,
            workload_kinds=exp.workloads or ["equal"],
            queries=q,
            budgets=exp.budgets,
            query_repeats=repeats,
            backend=backend,
            workers=workers,
        )
        all_results.extend(results)
        print(
            f"[{exp_id}] {name} done in {time.perf_counter() - t0:.1f}s",
            file=sys.stderr,
            flush=True,
        )
    workload = exp.workloads[0] if exp.workloads else "equal"
    title = f"{exp.title} (batch = {q} queries)" if exp.metric == "query" else exp.title
    print(render_table(all_results, exp.metric, workload=workload, title=title))


def _run_ablation_rank(datasets: Optional[List[str]]) -> None:
    from .core.distribution import DistributionLabeling

    exp = get_experiment("ablation-rank")
    ds = datasets or exp.datasets
    orders = ["degree_product", "degree_sum", "random", "topo_center"]
    print(exp.title)
    print("=" * len(exp.title))
    header = f"{'Dataset':<16}" + "".join(f"{o:>16}" for o in orders)
    print(header)
    print("-" * len(header))
    for name in ds:
        graph = load(name)
        cells = []
        for order in orders:
            idx = DistributionLabeling(graph, order=order)
            cells.append(f"{idx.index_size_ints() / 1000.0:>16.1f}")
        print(f"{name:<16}" + "".join(cells))
    print("(label size, thousands of integers; lower is better)")


def _run_ablation_labelstore(datasets: Optional[List[str]], queries: int) -> None:
    """Four label-storage strategies on identical DL labels.

    The paper (§1) attributes hop labeling's historical query-time gap
    to hash-set label storage in C++ and recommends sorted vectors.  In
    CPython the constants invert (C-implemented ``isdisjoint`` and
    bigint ``&`` vs an interpreted merge loop); the library therefore
    seals labels behind bigint masks where the hop space allows and
    falls back to the *hybrid* (sorted lists probed against frozenset
    mirrors of the out side) elsewhere — both measured here.
    """
    from .core.distribution import DistributionLabeling
    from .core.labels import intersects
    from .datasets.workloads import equal_workload

    exp = get_experiment("ablation-labelstore")
    ds = datasets or exp.datasets
    print(exp.title)
    print("=" * len(exp.title))
    header = (
        f"{'Dataset':<14}{'merge (ms)':>13}{'hybrid (ms)':>13}"
        f"{'masks (ms)':>13}{'two-sets (ms)':>15}"
    )
    print(header)
    print("-" * len(header))
    for name in ds:
        graph = load(name)
        idx = DistributionLabeling(graph)
        wl = equal_workload(graph, queries, seed=7, oracle=idx)
        labels = idx.labels
        lout, lin = labels.lout, labels.lin

        t0 = time.perf_counter()
        for u, v in wl.pairs:
            intersects(lout[u], lin[v])
        merge_ms = (time.perf_counter() - t0) * 1000.0

        # Bigint-mask layout (the library default where the hop space
        # fits); fall back gracefully if this build has no masks.
        if labels._out_masks is not None:
            t0 = time.perf_counter()
            labels.query_batch(wl.pairs)
            masks_cell = f"{(time.perf_counter() - t0) * 1000.0:>13.1f}"
            labels.drop_masks()  # re-seals onto the hybrid mirrors
        else:
            # Sparse builds ride the sets core and never attach masks.
            masks_cell = f"{'—':>13}"

        labels.arena()  # warm the lazy arena so it isn't billed below
        t0 = time.perf_counter()
        labels.query_batch(wl.pairs)  # sealed hybrid (frozenset mirrors)
        hybrid_ms = (time.perf_counter() - t0) * 1000.0

        lout_sets = [frozenset(x) for x in lout]
        lin_sets = [frozenset(x) for x in lin]
        t0 = time.perf_counter()
        for u, v in wl.pairs:
            _ = not lout_sets[u].isdisjoint(lin_sets[v])
        sets_ms = (time.perf_counter() - t0) * 1000.0

        print(
            f"{name:<14}{merge_ms:>13.1f}{hybrid_ms:>13.1f}"
            f"{masks_cell}{sets_ms:>15.1f}"
        )
    print(
        "(merge = pure sorted-vector intersection; masks = library default "
        "where the hop space fits, hybrid otherwise)"
    )


def _run_stats(datasets: Optional[List[str]]) -> None:
    """Structural metrics for datasets (drives family-fit discussions)."""
    from .graph.metrics import compute_metrics

    names = datasets or list(DATASETS)
    header = (
        f"{'Dataset':<18}{'n':>8}{'m':>8}{'m/n':>7}{'depth':>7}"
        f"{'srcs':>7}{'sinks':>7}{'maxout':>7}{'avgTC':>9}"
    )
    print("Dataset structural metrics (stand-ins)")
    print("=" * len(header))
    print(header)
    print("-" * len(header))
    for name in names:
        g = load(name)
        m = compute_metrics(g)
        approx = "" if m.closure_exact else "~"
        print(
            f"{name:<18}{m.n:>8,}{m.m:>8,}{m.density:>7.2f}{m.depth:>7}"
            f"{m.sources:>7}{m.sinks:>7}{m.max_out_degree:>7}"
            f"{approx + format(m.avg_closure, '.1f'):>9}"
        )


def _run_verify(datasets: Optional[List[str]], samples: int) -> int:
    """Cross-check every registered method against BFS on sampled pairs."""
    import random as _random

    from .baselines.online import OnlineBFS
    from .core.base import get_method, method_registry
    from .bench.experiments import get_experiment

    names = datasets or ["kegg", "arxiv"]
    methods = [m for m in sorted(method_registry()) if m not in ("BFS", "DFS")]
    budgets = get_experiment("table2").budgets
    failures = 0
    for name in names:
        g = load(name)
        truth = OnlineBFS(g)
        rng = _random.Random(99)
        pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(samples)]
        expected = truth.query_batch(pairs)
        for method in methods:
            budget = budgets.get(method)
            params = budget.params if budget else {}
            try:
                idx = get_method(method)(g, **params)
            except MemoryError:
                print(f"{name}/{method}: skipped (budget)")
                continue
            got = idx.query_batch(pairs)
            bad = sum(1 for a, b in zip(got, expected) if a != b)
            status = "ok" if bad == 0 else f"FAIL ({bad} mismatches)"
            if bad:
                failures += 1
            print(f"{name}/{method}: {status}")
    return 1 if failures else 0


def _run_export(datasets: Optional[List[str]], out_dir: str) -> None:
    """Write stand-in datasets as edge-list files (header: n m)."""
    import os

    from .graph.io import write_edge_list

    os.makedirs(out_dir, exist_ok=True)
    names = datasets or list(DATASETS)
    for name in names:
        g = load(name)
        path = os.path.join(out_dir, f"{name}.txt")
        write_edge_list(g, path)
        print(f"wrote {path} ({g.n} vertices, {g.m} edges)")


def _run_build(argv: List[str]) -> int:
    """``build``: graph -> pipeline -> compiled artifact on disk."""
    from .facade import Reachability
    from .graph.io import read_edge_list

    parser = argparse.ArgumentParser(
        prog="repro-bench build",
        description="Build a reachability pipeline and save it as a "
        "binary artifact (the build half of build → compile → serve).",
    )
    src = parser.add_mutually_exclusive_group(required=True)
    src.add_argument("--dataset", help="stand-in dataset name (see 'table1')")
    src.add_argument("--edges", help="edge-list file (header: n m; one 'u v' per line)")
    parser.add_argument("--method", default="DL", help="paper abbreviation (default DL)")
    parser.add_argument("--out", required=True, help="artifact output path")
    parser.add_argument(
        "--backend", choices=["auto", "python", "numpy"], default=None,
        help="kernel backend for the build (DL/HL/GL/PL)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="shard DL construction over N forked processes",
    )
    parser.add_argument(
        "--compact", action="store_true",
        help="deflated artifact (smallest file; serving loads a private "
        "copy instead of sharing one mmap)",
    )
    args = parser.parse_args(argv)

    if args.dataset:
        if args.dataset not in DATASETS:
            parser.error(f"unknown dataset {args.dataset!r}")
        graph = load(args.dataset)
        source = args.dataset
    else:
        graph = read_edge_list(args.edges)
        source = args.edges

    from .bench.harness import BACKEND_METHODS, WORKER_METHODS

    key = args.method.upper()
    params = {}
    if args.backend is not None and key in BACKEND_METHODS:
        params["backend"] = args.backend
    if args.workers is not None and key in WORKER_METHODS:
        params["workers"] = args.workers

    t0 = time.perf_counter()
    reach = Reachability(graph, args.method, **params)
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    nbytes = reach.save(args.out, profile="compact" if args.compact else "mmap")
    save_s = time.perf_counter() - t0
    stats = reach.stats()
    print(f"built {args.method} on {source}: n={graph.n:,} m={graph.m:,} "
          f"dag_n={stats['dag_n']:,} in {build_s:.2f}s")
    print(f"wrote {args.out}: {nbytes:,} bytes "
          f"({stats['index']['index_size_ints']:,} stored ints) in {save_s:.3f}s")
    return 0


def _parse_pairs(lines) -> List[tuple]:
    """``(u, v)`` pairs from an iterable of 'u v' lines (blanks skipped)."""
    pairs = []
    for line in lines:
        parts = line.split()
        if len(parts) >= 2:
            pairs.append((int(parts[0]), int(parts[1])))
    return pairs


def _parse_ops(lines) -> List[tuple]:
    """Update ops from 'u v' / '+ u v' / '- u v' lines (blanks skipped).

    A bare ``u v`` line inserts; a leading ``+`` or ``-`` token makes
    the op explicit (``-`` removes the edge from the live graph).
    """
    ops = []
    for line in lines:
        parts = line.split()
        if not parts:
            continue
        if parts[0] in ("+", "-"):
            if len(parts) >= 3:
                ops.append((parts[0], int(parts[1]), int(parts[2])))
        elif len(parts) >= 2:
            ops.append(("+", int(parts[0]), int(parts[1])))
    return ops


def _run_query(argv: List[str]) -> int:
    """``query``: serve a workload from an artifact, no graph in memory."""
    import random as _random

    from .serialization import load_artifact

    parser = argparse.ArgumentParser(
        prog="repro-bench query",
        description="Answer a reachability workload from a saved "
        "artifact (the serve half of build → compile → serve).",
    )
    parser.add_argument("--artifact", required=True, help="artifact path from 'build'")
    parser.add_argument("--pairs",
                        help="file of 'u v' query pairs (one per line); "
                        "'-' reads stdin, so shell pipelines and the load "
                        "generator can feed this command directly")
    parser.add_argument("--random", type=int, default=None, metavar="N",
                        help="generate N uniform random pairs instead")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3, help="batch timing repeats")
    parser.add_argument("--no-mmap", action="store_true",
                        help="read a private copy instead of memory-mapping")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    oracle = load_artifact(args.artifact, mmap=not args.no_mmap)
    load_ms = (time.perf_counter() - t0) * 1000.0

    stats = oracle.stats()
    n = stats.get("original_n") or stats.get("n") or 0
    if args.pairs:
        if args.pairs == "-":
            pairs = _parse_pairs(sys.stdin)
        else:
            with open(args.pairs, "r", encoding="utf-8") as f:
                pairs = _parse_pairs(f)
    else:
        count = args.random or 10_000
        rng = _random.Random(args.seed)
        pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]
    if not pairs:
        parser.error("empty workload")

    t0 = time.perf_counter()
    first = oracle.query(*pairs[0])
    first_us = (time.perf_counter() - t0) * 1e6

    best = None
    answers = None
    for _ in range(max(1, args.repeats)):
        t0 = time.perf_counter()
        answers = oracle.query_batch(pairs)
        elapsed = (time.perf_counter() - t0) * 1000.0
        if best is None or elapsed < best:
            best = elapsed

    method = stats.get("method") or stats.get("index", {}).get("method")
    print(f"loaded {args.artifact} ({method}) in {load_ms:.2f} ms "
          f"(mmap={'no' if args.no_mmap else 'yes'})")
    print(f"first query: {first_us:.1f} µs (-> {first})")
    print(f"{len(pairs):,} queries in {best:.2f} ms "
          f"({sum(answers):,} reachable)")
    print(f"stats: {stats}")
    return 0


def _run_serve(argv: List[str]) -> int:
    """``serve``: a long-running query server over a saved artifact."""
    from .server.service import HttpFrontend, serve_artifact

    parser = argparse.ArgumentParser(
        prog="repro-bench serve",
        description="Serve reachability queries from a saved artifact "
        "over the binary wire protocol (the production half of "
        "build → compile → serve).  --watch hot-swaps the served "
        "version when the artifact file is atomically replaced; "
        "--live builds a dataset in-process and accepts edge "
        "insertions over the wire ('update' subcommand).",
    )
    src = parser.add_mutually_exclusive_group(required=True)
    src.add_argument("--artifact", help="artifact path from 'build'")
    src.add_argument("--live", metavar="DATASET",
                     help="build this stand-in dataset in-process and "
                     "serve it live: edge insertions (the 'update' "
                     "subcommand / OP_UPDATE op) publish new epochs "
                     "behind the running server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7431,
                        help="TCP port for the binary protocol (0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=0,
                        help="answer processes, each mmap-loading the "
                        "artifact (0 = answer in-process)")
    parser.add_argument("--replicas", type=int, default=0, metavar="N",
                        help="serve through a fault-tolerant tier: N "
                        "replica processes behind an epoch-shipping "
                        "router with retries, health checks and hedged "
                        "dispatch (needs --artifact; see also the "
                        "'route' subcommand for external replicas)")
    parser.add_argument("--data-dir", default=None, metavar="DIR",
                        help="with --live: journal updates in DIR (WAL + "
                        "epoch manifest) so every acked update survives "
                        "kill -9; re-serving the same DIR recovers the "
                        "journaled state instead of rebuilding the dataset")
    parser.add_argument("--sync", default="interval",
                        choices=("always", "interval", "off"),
                        help="journal fsync policy for --data-dir: 'always' "
                        "fsyncs per update (survives power loss), "
                        "'interval' group-commits (default), 'off' trusts "
                        "the OS page cache (survives kill -9 only)")
    parser.add_argument("--dirt-threshold", type=float, default=0.25,
                        metavar="R",
                        help="with --live: background-recompile once "
                        "removed-edge tombstones reach this fraction of "
                        "the graph's edges (0 disables automatic "
                        "compaction)")
    parser.add_argument("--batch-window", type=float, default=1.0, metavar="MS",
                        help="micro-batching window in milliseconds "
                        "(0 disables coalescing)")
    parser.add_argument("--adaptive-window", action="store_true",
                        help="shrink the micro-batch window toward 0 "
                        "under low arrival rate (the ceiling stays "
                        "--batch-window)")
    parser.add_argument("--watch", action="store_true",
                        help="poll the --artifact file and hot-swap the "
                        "served version when it is atomically replaced "
                        "(write new + rename)")
    parser.add_argument("--watch-interval", type=float, default=0.5, metavar="S",
                        help="poll interval for --watch, in seconds")
    parser.add_argument("--cache-size", type=int, default=65536,
                        help="LRU result-cache entries (0 disables)")
    parser.add_argument("--max-batch", type=int, default=65536,
                        help="pair-count ceiling per dispatched batch")
    parser.add_argument("--http-port", type=int, default=None, metavar="PORT",
                        help="also serve the JSON/HTTP fallback on this "
                        "port (0 = ephemeral)")
    parser.add_argument("--no-shutdown-op", action="store_true",
                        help="ignore the protocol's remote-shutdown frame")
    parser.add_argument("--allow-remote-shutdown", action="store_true",
                        help="honour the shutdown op even on a "
                        "non-loopback --host (off by default there: the "
                        "frame is unauthenticated)")
    parser.add_argument("--ready-file", default=None, metavar="PATH",
                        help="write 'host port [http_port]' here once "
                        "listening (lets scripts wait for startup)")
    args = parser.parse_args(argv)

    # allow_shutdown=None delegates the loopback-only default to
    # ReachServer (one policy, not a CLI re-implementation).
    if args.no_shutdown_op:
        allow_shutdown = False
    elif args.allow_remote_shutdown:
        allow_shutdown = True
    else:
        allow_shutdown = None
    if args.watch and not args.artifact:
        parser.error("--watch needs --artifact (a --live server updates "
                     "through the wire protocol instead)")
    if args.data_dir and not args.live:
        parser.error("--data-dir needs --live (a static artifact server "
                     "has nothing to journal)")
    if args.replicas:
        if not args.artifact:
            parser.error("--replicas needs --artifact (replication ships "
                         "frozen artifact epochs)")
        if args.watch:
            parser.error("--replicas and --watch are mutually exclusive")
        if args.workers:
            parser.error("--replicas spawns its own replica processes; "
                         "drop --workers")

    if args.replicas:
        from .cluster import serve_replicated

        server = serve_replicated(
            args.artifact,
            host=args.host,
            port=args.port,
            replicas=args.replicas,
            allow_shutdown=allow_shutdown,
        )
        ports = ", ".join(str(proc.port) for proc in server.replicas)
        served = f"{args.artifact} (router over {args.replicas} replicas " \
                 f"on ports {ports})"
    elif args.live:
        if args.live not in DATASETS:
            parser.error(f"unknown dataset {args.live!r}")
        from .facade import Reachability

        print(f"building {args.live} (DL) for live serving ...",
              file=sys.stderr, flush=True)
        reach = Reachability(load(args.live), "DL")
        server = reach.serve(
            host=args.host,
            port=args.port,
            workers=args.workers,
            batch_window_s=args.batch_window / 1000.0,
            adaptive_window=args.adaptive_window,
            max_batch=args.max_batch,
            cache_size=args.cache_size,
            allow_shutdown=allow_shutdown,
            live=True,
            data_dir=args.data_dir,
            sync=args.sync,
            dirt_threshold=args.dirt_threshold,
        )
        served = f"{args.live} (live, epoch {reach.live_epoch})"
        if args.data_dir:
            info = reach._primary.recovery_info
            mode = "recovered" if info.get("recovered") else "initialised"
            served += (
                f" [durable: {mode} {args.data_dir}, sync={args.sync}"
                + (
                    f", replayed {info['records_replayed']} journal records"
                    if info.get("recovered") else ""
                )
                + "]"
            )
    else:
        server = serve_artifact(
            args.artifact,
            host=args.host,
            port=args.port,
            workers=args.workers,
            window_s=args.batch_window / 1000.0,
            adaptive_window=args.adaptive_window,
            max_batch=args.max_batch,
            cache_size=args.cache_size,
            allow_shutdown=allow_shutdown,
            watch=args.watch,
            watch_interval_s=args.watch_interval,
        )
        served = args.artifact + (" (watching)" if args.watch else "")
    if allow_shutdown is None and not server.allow_shutdown:
        print(
            f"note: remote shutdown disabled on non-loopback host "
            f"{args.host!r} (pass --allow-remote-shutdown to enable)",
            file=sys.stderr,
        )
    http = None
    try:
        if args.http_port is not None:
            # /shutdown must stop the whole service, not just the HTTP
            # frontend — mirror the binary OP_SHUTDOWN semantics.
            http = HttpFrontend(
                server.service,
                host=args.host,
                port=args.http_port,
                allow_shutdown=server.allow_shutdown,
                on_shutdown=server.close,
            ).start()
        host, port = server.address
        print(
            f"serving {served} on {host}:{port} "
            f"(workers={args.workers}, batch_window={args.batch_window:g} ms, "
            f"cache={args.cache_size:,})",
            flush=True,
        )
        if http is not None:
            print(f"http fallback on {http.host}:{http.port}", flush=True)
        if args.ready_file:
            extra = f" {http.port}" if http is not None else ""
            with open(args.ready_file, "w", encoding="utf-8") as f:
                f.write(f"{host} {port}{extra}\n")
        try:
            server.wait()
        except KeyboardInterrupt:
            print("interrupted; shutting down", file=sys.stderr)
        return 0
    finally:
        if http is not None:
            http.close()
        server.close()


def _parse_address(text: str) -> tuple:
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return (host or "127.0.0.1", int(port))


def _run_route(argv: List[str]) -> int:
    """``route``: a fault-tolerant router over already-running replicas."""
    from .cluster import ReplicaRouter
    from .server.service import ReachServer

    parser = argparse.ArgumentParser(
        prog="repro-bench route",
        description="Front a set of running reachability servers with "
        "the fault-tolerant router: batches fan out over healthy "
        "replicas, failed or slow sub-batches are retried on another "
        "replica with jittered backoff, tail requests are hedged, and "
        "overload is shed explicitly (OP_OVERLOADED) instead of "
        "queueing unboundedly.  Replicas are health-checked via "
        "OP_EPOCH heartbeats with ejection and half-open re-admission.",
    )
    parser.add_argument("--replica", action="append", required=True,
                        metavar="HOST:PORT", dest="replicas",
                        help="a replica address (repeat per replica)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7430,
                        help="router's TCP port (0 = ephemeral)")
    parser.add_argument("--max-attempts", type=int, default=4,
                        help="dispatches per sub-batch before giving up")
    parser.add_argument("--request-timeout", type=float, default=5.0,
                        metavar="S", help="per-replica request deadline")
    parser.add_argument("--hedge-after", type=float, default=100.0,
                        metavar="MS", help="duplicate a quiet dispatch to "
                        "a second replica after this long (0 disables)")
    parser.add_argument("--max-inflight", type=int, default=1024,
                        help="admission cap; beyond it requests are shed "
                        "with OP_OVERLOADED")
    parser.add_argument("--eject-after", type=int, default=3,
                        help="consecutive failures before ejection")
    parser.add_argument("--probation-delay", type=float, default=1.0,
                        metavar="S", help="cool-off before a half-open "
                        "re-admission probe")
    parser.add_argument("--ready-file", default=None, metavar="PATH",
                        help="write 'host port' here once listening")
    args = parser.parse_args(argv)

    try:
        addresses = [_parse_address(a) for a in args.replicas]
    except ValueError as exc:
        parser.error(str(exc))
    router = ReplicaRouter(
        addresses,
        max_attempts=args.max_attempts,
        request_timeout_s=args.request_timeout,
        hedge_after_s=(args.hedge_after / 1000.0) or None,
        max_inflight=args.max_inflight,
        eject_after=args.eject_after,
        probation_delay_s=args.probation_delay,
    ).start()
    server = ReachServer(router, args.host, args.port, owns_service=True)
    try:
        server.start()
        host, port = server.address
        names = ", ".join(f"{h}:{p}" for h, p in addresses)
        print(f"routing {host}:{port} -> [{names}] "
              f"(epoch {router.current_epoch}, "
              f"routable {len(router.health.routable())}/{len(addresses)})",
              flush=True)
        if args.ready_file:
            with open(args.ready_file, "w", encoding="utf-8") as f:
                f.write(f"{host} {port}\n")
        try:
            server.wait()
        except KeyboardInterrupt:
            print("interrupted; shutting down", file=sys.stderr)
        return 0
    finally:
        server.close()


def _run_update(argv: List[str]) -> int:
    """``update``: stream edge inserts/removes into a running live server."""
    from .server.client import ReachClient

    parser = argparse.ArgumentParser(
        prog="repro-bench update",
        description="Apply edge updates to a running live server "
        "(serve --live, or Reachability.serve(live=True)); the server "
        "hot-swaps to the updated artifact epoch before replying.  "
        "Each line is 'u v' (insert) or '+ u v' / '- u v' (explicit "
        "insert / remove); the whole stream applies as one atomic "
        "batch.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7431)
    parser.add_argument("--edges", required=True,
                        help="file of 'u v' / '+ u v' / '- u v' update "
                        "lines; '-' reads stdin")
    args = parser.parse_args(argv)

    if args.edges == "-":
        ops = _parse_ops(sys.stdin)
    else:
        with open(args.edges, "r", encoding="utf-8") as f:
            ops = _parse_ops(f)
    if not ops:
        parser.error("empty update stream")

    with ReachClient(args.host, args.port) as client:
        summary = client.update(ops)
    inserts = summary.get("inserts", sum(1 for op, _, _ in ops if op == "+"))
    removals = summary.get("removals", sum(1 for op, _, _ in ops if op == "-"))
    applied = f"inserted {inserts} edges"
    if removals:
        applied += f", removed {removals}"
    print(
        f"{applied} "
        f"({summary.get('changed', '?')} changed reachability) -> "
        f"epoch {summary.get('epoch')} "
        f"({'full' if summary.get('full') else 'incremental'} compile, "
        f"{summary.get('swap_s', 0.0) * 1000.0:.1f} ms swap)"
    )
    return 0


def _hist_delta(curr: dict, prev: Optional[dict]) -> dict:
    """Bucket-wise ``curr - prev`` of two telemetry histogram snapshots.

    Counters and histograms are cumulative; ``top`` wants "what
    happened since the last poll", so each refresh subtracts the
    previous snapshot.  ``prev=None`` (first poll) returns ``curr``
    unchanged — the first line of output covers the server's lifetime.
    """
    if not curr or not prev:
        return curr or {}
    pb = prev.get("buckets", {})
    buckets = {
        k: c - pb.get(k, 0)
        for k, c in curr.get("buckets", {}).items()
        if c - pb.get(k, 0) > 0
    }
    return {
        "count": curr.get("count", 0) - prev.get("count", 0),
        "sum": curr.get("sum", 0) - prev.get("sum", 0),
        "unit": curr.get("unit", "ns"),
        "buckets": buckets,
    }


def _top_line(doc: dict, prev: Optional[dict], elapsed: float) -> str:
    """One ``top`` refresh rendered from a stats document (+ previous)."""
    from .stats import histogram_percentiles

    tel = doc.get("telemetry") or {}
    hists = tel.get("histograms") or {}
    gauges = tel.get("gauges") or {}
    req_hist = hists.get("repro_request_seconds") or {}
    prev_hist = (
        ((prev or {}).get("telemetry") or {}).get("histograms") or {}
    ).get("repro_request_seconds")
    window = _hist_delta(req_hist, prev_hist)
    n_req = window.get("count", 0)
    qps = n_req / elapsed if elapsed > 0 else 0.0
    pct = histogram_percentiles(window)  # ns upper bounds
    lat = " ".join(
        f"{name}={pct.get('p' + name[1:], 0.0) / 1e6:.2f}"
        for name in ("p50", "p95", "p99", "p99.9")
    ) if pct else "p50=- p95=- p99=- p99.9=-"

    cache = doc.get("cache") or {}
    hit = cache.get("hit_rate")
    hit_s = f"{hit * 100.0:5.1f}%" if isinstance(hit, (int, float)) else "    -"
    epoch = doc.get("epoch")
    age = gauges.get("repro_epoch_age_seconds")
    age_s = f"{age:.1f}s" if isinstance(age, (int, float)) else "-"
    lag = gauges.get("repro_journal_fsync_lag_bytes")
    lag_s = f"{int(lag)}B" if isinstance(lag, (int, float)) else "-"
    line = (
        f"{qps:>9,.0f} q/s | {lat} ms | cache {hit_s} | "
        f"epoch {epoch if epoch is not None else '-'} (age {age_s}) | "
        f"fsync lag {lag_s}"
    )
    replicas = (doc.get("health") or {}).get("replicas")
    if replicas:
        states = " ".join(
            f"{r['name']}={r['state']}{'*' if r.get('stale') else ''}"
            f"@{r.get('epoch', 0)}"
            for r in replicas
        )
        line += f" | replicas: {states}"
    degraded = doc.get("degraded")
    if degraded:
        line += f" | DEGRADED: {','.join(degraded)}"
    return line


def _run_top(argv: List[str]) -> int:
    """``top``: live operational dashboard for a running server."""
    from .server.client import ReachClient

    parser = argparse.ArgumentParser(
        prog="repro-bench top",
        description="Poll a running server's OP_STATS and render a "
        "top-style line per refresh: request rate and latency "
        "percentiles over the refresh window (from the server's "
        "mergeable log2 latency histogram), cache hit rate, serving "
        "epoch and its age, journal fsync lag, and — when pointed at "
        "a router — per-replica health states.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7431)
    parser.add_argument("--interval", type=float, default=2.0, metavar="S",
                        help="seconds between refreshes")
    parser.add_argument("--iterations", type=int, default=0,
                        help="stop after N refreshes (0 = until ^C)")
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit "
                        "(same as --iterations 1)")
    args = parser.parse_args(argv)
    iterations = 1 if args.once else args.iterations

    with ReachClient(args.host, args.port) as client:
        prev = None
        prev_t = None
        done = 0
        try:
            while True:
                doc = client.stats()
                now = time.perf_counter()
                # First poll rates over the server's uptime (the
                # histogram is cumulative); later polls over the window.
                elapsed = (
                    now - prev_t if prev_t is not None
                    else float(doc.get("uptime_s") or 0.0)
                )
                print(_top_line(doc, prev, elapsed), flush=True)
                prev, prev_t = doc, now
                done += 1
                if iterations and done >= iterations:
                    return 0
                time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # Artifact subcommands take their own option sets; route them before
    # the experiment parser sees the arguments.
    if argv and argv[0] == "build":
        return _run_build(argv[1:])
    if argv and argv[0] == "query":
        return _run_query(argv[1:])
    if argv and argv[0] == "serve":
        return _run_serve(argv[1:])
    if argv and argv[0] == "route":
        return _run_route(argv[1:])
    if argv and argv[0] == "update":
        return _run_update(argv[1:])
    if argv and argv[0] == "top":
        return _run_top(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate tables/figures from 'Simple, Fast, and "
        "Scalable Reachability Oracle' (Jin & Wang, VLDB 2013).",
    )
    parser.add_argument("experiment", help="experiment id (see 'list')")
    parser.add_argument("--datasets", help="comma-separated dataset subset")
    parser.add_argument("--queries", type=int, default=None, help="workload batch size")
    parser.add_argument("--repeats", type=int, default=3, help="query timing repeats")
    parser.add_argument("--out", default="exported_datasets", help="output dir for 'export'")
    parser.add_argument(
        "--backend",
        choices=["auto", "python", "numpy"],
        default=None,
        help="kernel backend for DL/HL/GL/PL (default: REPRO_BACKEND or auto); "
        "labels and answers are identical across backends",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard DL construction over N forked processes "
        "(default: REPRO_WORKERS or 1); labels are identical for any N",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for exp_id, exp in EXPERIMENTS.items():
            print(f"{exp_id:<22}{exp.title}")
        print(f"{'stats':<22}Structural metrics of the dataset stand-ins")
        print(f"{'verify':<22}Cross-check every method against BFS (sampled)")
        print(f"{'export':<22}Write stand-in datasets as edge-list files")
        print(f"{'build':<22}Build a pipeline and save a binary artifact")
        print(f"{'query':<22}Serve a workload from a saved artifact")
        print(f"{'serve':<22}Run a TCP query server over a saved artifact")
        print(f"{'route':<22}Fault-tolerant router over running replicas")
        print(f"{'update':<22}Insert edges into a running live server")
        print(f"{'top':<22}Live qps/latency/health dashboard for a server")
        return 0

    datasets = args.datasets.split(",") if args.datasets else None
    if datasets:
        unknown = [d for d in datasets if d not in DATASETS]
        if unknown:
            parser.error(f"unknown datasets: {', '.join(unknown)}")

    if args.experiment == "table1":
        _print_table1()
    elif args.experiment == "stats":
        _run_stats(datasets)
    elif args.experiment == "verify":
        return _run_verify(datasets, args.queries or 300)
    elif args.experiment == "export":
        _run_export(datasets, args.out)
    elif args.experiment == "ablation-rank":
        _run_ablation_rank(datasets)
    elif args.experiment == "ablation-labelstore":
        _run_ablation_labelstore(datasets, args.queries or 10_000)
    else:
        _run_standard(
            args.experiment,
            datasets,
            args.queries,
            args.repeats,
            backend=args.backend,
            workers=args.workers,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
