"""The query service: cache → micro-batcher → oracle (or worker pool).

Topology
--------
::

    clients ──TCP──▶ ReachServer ──▶ QueryService
                                        │  cache (sharded LRU)
                                        │  MicroBatcher (≤ window_s)
                                        ▼
                       workers == 0: in-process CompiledOracle
                       workers  > 0: WorkerPool — N processes, each
                                     mmap-loading the SAME artifact
                                     (one physical copy, per PR 3)

Every batch is answered by ``query_batch`` on a compiled oracle (the
staged vectorized engine underneath), singletons by scalar ``query`` —
so a served answer is bit-identical to asking the oracle directly.

The worker pool exists for two reasons: CPU parallelism on multicore
hosts (each worker is a full process, no GIL sharing), and memory
safety — the artifact's arrays are mapped read-only and shared, so N
workers cost one physical copy of the index no matter how large it is.
Task payloads ride the wire codec from :mod:`repro.server.protocol`
(packed pairs out, packed answer bits back), which keeps the IPC cost
per *batch* instead of per query — exactly the economics micro-batching
is there to exploit.
"""

from __future__ import annotations

import json
import os
import socket as _socket
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .batching import Batch, MicroBatcher
from .cache import ShardedLRUCache
from . import protocol as proto

__all__ = ["QueryService", "WorkerPool", "ReachServer", "HttpFrontend", "serve_artifact"]

Pair = Tuple[int, int]


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
def _worker_main(artifact_path: str, tasks, results) -> None:
    """Worker process: mmap-load the artifact, answer batches forever.

    Messages in: ``(batch_id, payload)`` with the wire pair encoding,
    or ``None`` to exit.  Messages out: ``("ready", pid)`` once, then
    ``("ok", batch_id, payload)`` with packed answer bits or
    ``("err", batch_id, message)``.
    """
    from ..serialization import load_artifact

    oracle = load_artifact(artifact_path, mmap=True)
    results.put(("ready", os.getpid()))
    while True:
        task = tasks.get()
        if task is None:
            break
        batch_id, payload = task
        try:
            pairs = proto.decode_pairs(payload)
            if len(pairs) == 1:
                answers = [bool(oracle.query(*pairs[0]))]
            else:
                answers = oracle.query_batch(pairs)
            results.put(("ok", batch_id, proto.encode_answers(answers)))
        except Exception as exc:  # keep the worker alive; report per batch
            results.put(("err", batch_id, repr(exc)))


class WorkerPool:
    """N answer processes over one mmap-shared artifact.

    Prefers the ``fork`` start method (instant start, no re-import);
    falls back to ``spawn`` elsewhere.  The pool is created *before*
    any server thread starts, so forking is safe.  Dispatch is
    asynchronous: batches queue to whichever worker frees up first,
    and a reader thread resolves them, so up to N batches execute
    concurrently.
    """

    def __init__(self, artifact_path: str, workers: int, start_timeout: float = 60.0) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        import multiprocessing as mp

        self.artifact_path = str(artifact_path)
        self.workers = workers
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            ctx = mp.get_context("spawn")
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._lock = threading.Lock()
        self._pending: Dict[int, Batch] = {}
        self._next_id = 0
        self._dispatched = 0
        self._errors = 0
        self._closed = False
        self._reader: Optional[threading.Thread] = None
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(self.artifact_path, self._tasks, self._results),
                daemon=True,
                name=f"repro-serve-worker-{i}",
            )
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()
        # Block until every worker has its oracle mapped — a server that
        # accepts traffic before the pool is warm would stall its first
        # window of batches behind artifact loads.
        import queue as _queue

        deadline = time.monotonic() + start_timeout
        ready = 0
        while ready < workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise RuntimeError(
                    f"worker pool startup timed out ({ready}/{workers} ready)"
                )
            try:
                # Short slices so a worker that dies loading the
                # artifact fails the pool immediately instead of
                # burning the whole start timeout.
                msg = self._results.get(timeout=min(0.25, remaining))
            except _queue.Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if not dead:
                    continue
                self.close()
                raise RuntimeError(
                    f"{len(dead)} worker(s) died loading "
                    f"{self.artifact_path!r} before reporting ready "
                    f"({ready}/{workers} ready)"
                ) from None
            if msg[0] == "ready":
                ready += 1
        self._reader = threading.Thread(
            target=self._read_results, name="repro-pool-reader", daemon=True
        )
        self._reader.start()

    # -- dispatch ------------------------------------------------------
    def dispatch(self, batch: Batch) -> None:
        """Queue a batch; the reader thread resolves it on completion."""
        payload = proto.encode_pairs(batch.pairs)
        with self._lock:
            if self._closed:
                batch.fail(RuntimeError("worker pool closed"))
                return
            batch_id = self._next_id
            self._next_id += 1
            self._pending[batch_id] = batch
            self._dispatched += 1
        self._tasks.put((batch_id, payload))

    def _read_results(self) -> None:
        while True:
            msg = self._results.get()
            if msg is None:
                return
            kind, batch_id, payload = msg
            with self._lock:
                batch = self._pending.pop(batch_id, None)
            if batch is None:  # late reply after close; nothing waits
                continue
            if kind == "ok":
                batch.resolve(proto.decode_answers(payload))
            else:
                with self._lock:
                    self._errors += 1
                batch.fail(RuntimeError(f"worker failed: {payload}"))

    # -- lifecycle -----------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop workers and the reader; fail anything still pending."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
        for batch in pending:
            batch.fail(RuntimeError("worker pool closed"))
        for _ in self._procs:
            self._tasks.put(None)
        for proc in self._procs:
            proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        if self._reader is not None:
            self._results.put(None)
            self._reader.join(timeout=timeout)
        self._tasks.close()
        self._results.close()

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "dispatched_batches": self._dispatched,
                "in_flight": len(self._pending),
                "worker_errors": self._errors,
            }


# ----------------------------------------------------------------------
# Query service
# ----------------------------------------------------------------------
def _oracle_bound(oracle) -> int:
    """The exclusive vertex-id bound the oracle accepts."""
    original = getattr(oracle, "original", None)
    if original is not None:  # build-mode facade
        return original.n
    condensation = getattr(oracle, "condensation", None)
    if condensation is not None:  # serve-mode facade: comp maps originals
        return len(condensation.comp)
    n = getattr(oracle, "n", None)  # compiled method oracle
    if isinstance(n, int):
        return n
    raise TypeError(f"cannot infer vertex bound of {type(oracle).__name__}")


class QueryService:
    """Cache → batcher → oracle; the answer path shared by all frontends.

    Exactly one of ``artifact_path`` / ``oracle`` picks the answer
    source.  With ``workers == 0`` the oracle runs in-process (loading
    the artifact if only a path was given); with ``workers > 0`` the
    service needs ``artifact_path`` so every worker process can
    mmap-load the same file.

    ``window_s`` is the micro-batching window (0 disables coalescing),
    ``cache_size`` the LRU entry budget (0 disables the cache).
    """

    def __init__(
        self,
        artifact_path: Optional[str] = None,
        oracle=None,
        *,
        workers: int = 0,
        window_s: float = 0.001,
        max_batch: int = 65536,
        cache_size: int = 65536,
        cache_shards: int = 8,
    ) -> None:
        if (artifact_path is None) == (oracle is None):
            raise ValueError("pass exactly one of artifact_path / oracle")
        if workers > 0 and artifact_path is None:
            raise ValueError(
                "worker processes mmap-load the artifact themselves; "
                "serving a live oracle requires workers=0 (or save it "
                "to an artifact first)"
            )
        self.artifact_path = None if artifact_path is None else str(artifact_path)
        self.workers = workers
        self.window_s = window_s
        self.cache = ShardedLRUCache(cache_size, shards=cache_shards)
        self._oracle = oracle
        self._pool: Optional[WorkerPool] = None
        self._batcher = MicroBatcher(self._route, window_s=window_s, max_batch=max_batch)
        self._started = False
        self._closed = False
        self._started_at: Optional[float] = None
        self._stat_lock = threading.Lock()
        self._requests = 0
        self._pairs_in = 0
        self._singles = 0
        self._bound: Optional[int] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "QueryService":
        if self._started:
            return self
        if self.workers > 0:
            self._pool = WorkerPool(self.artifact_path, self.workers)
        elif self._oracle is None:
            from ..serialization import load_artifact

            self._oracle = load_artifact(self.artifact_path, mmap=True)
        if self._oracle is not None:
            self._bound = _oracle_bound(self._oracle)
        else:
            # Workers own the oracle; read the bound from the header.
            from ..serialization import artifact_info

            meta = artifact_info(self.artifact_path)["meta"]
            self._bound = int(meta.get("original_n") or meta.get("n"))
        self._batcher.start()
        self._started = True
        self._started_at = time.monotonic()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._batcher.close()
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the answer path -----------------------------------------------
    def _route(self, batch: Batch) -> None:
        """Batcher dispatch target: pool when present, else in-process."""
        if batch.singleton:
            with self._stat_lock:
                self._singles += 1
        if self._pool is not None:
            self._pool.dispatch(batch)
            return
        try:
            if batch.singleton:
                u, v = batch.pairs[0]
                answers = [bool(self._oracle.query(u, v))]
            else:
                answers = self._oracle.query_batch(batch.pairs)
        except Exception as exc:
            batch.fail(exc)
            return
        batch.resolve(answers)

    def query_pairs_async(
        self,
        pairs: Sequence[Pair],
        callback: Callable[[Optional[List[bool]], Optional[BaseException]], None],
    ) -> None:
        """Answer a request without blocking the calling thread.

        ``callback(answers, error)`` fires exactly once — synchronously
        when the cache covers everything, otherwise from whichever
        thread resolves the batch.
        """
        if not self._started:
            raise RuntimeError("QueryService.start() has not been called")
        flush = getattr(callback, "flush_writer", None)
        bound = self._bound
        for u, v in pairs:
            if not (0 <= u < bound and 0 <= v < bound):
                callback(
                    None,
                    ValueError(
                        f"vertex pair ({u}, {v}) out of range for n={bound}"
                    ),
                )
                if flush is not None:
                    flush()
                return
        with self._stat_lock:
            self._requests += 1
            self._pairs_in += len(pairs)
        cached, missing = self.cache.get_many(pairs)
        if not missing:
            callback([bool(a) for a in cached], None)
            if flush is not None:
                flush()
            return
        missing_pairs = [pairs[i] for i in missing]

        def on_done(req) -> None:
            if req.error is not None:
                callback(None, req.error)
                return
            self.cache.put_many(missing_pairs, req.answers)
            for slot, answer in zip(missing, req.answers):
                cached[slot] = answer
            callback([bool(a) for a in cached], None)

        if flush is not None:
            # A buffering callback (TCP front end): the batch flushes
            # each distinct writer once after scattering every answer.
            on_done.flush_writer = flush
        self._batcher.submit_async(missing_pairs, on_done)

    def query_pairs(self, pairs: Sequence[Pair]) -> List[bool]:
        """Blocking :meth:`query_pairs_async` (HTTP and test path)."""
        done = threading.Event()
        box: List[object] = [None, None]

        def callback(answers, error) -> None:
            box[0], box[1] = answers, error
            done.set()

        self.query_pairs_async(pairs, callback)
        done.wait()
        if box[1] is not None:
            raise box[1]
        return box[0]

    def query(self, u: int, v: int) -> bool:
        """One blocking scalar query through the full service path."""
        return self.query_pairs([(u, v)])[0]

    # -- stats ---------------------------------------------------------
    def stats(self) -> dict:
        with self._stat_lock:
            requests, pairs_in, singles = self._requests, self._pairs_in, self._singles
        doc = {
            "artifact": self.artifact_path,
            "workers": self.workers,
            "n": self._bound,
            "uptime_s": (
                time.monotonic() - self._started_at if self._started_at else 0.0
            ),
            "requests": requests,
            "pairs": pairs_in,
            "single_dispatches": singles,
            "cache": self.cache.stats(),
            "batcher": self._batcher.stats(),
        }
        if self._pool is not None:
            doc["pool"] = self._pool.stats()
        if self._oracle is not None and hasattr(self._oracle, "stats"):
            try:
                doc["oracle"] = self._oracle.stats()
            except Exception:  # pragma: no cover - stats must never fail serving
                pass
        return doc


# ----------------------------------------------------------------------
# TCP front end
# ----------------------------------------------------------------------
def _is_loopback(host: str) -> bool:
    """Whether a bind host only reaches local clients."""
    return host in ("127.0.0.1", "localhost", "::1") or host.startswith("127.")


class _ConnWriter:
    """Per-connection response writer that batches frames per flush.

    Query completions *queue* frames; one :meth:`flush` per
    (batch, connection) concatenates and writes them — one syscall for
    a whole micro-batch of responses instead of one per request.
    Control replies (ping, stats, errors) use :meth:`send_now`.
    """

    __slots__ = ("_conn", "_frames", "_buf_lock", "_send_lock", "_dead")

    def __init__(self, conn) -> None:
        self._conn = conn
        self._frames: List[bytes] = []
        self._buf_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._dead = False

    def queue(self, op: int, request_id: int, payload: bytes = b"") -> None:
        frame = proto.pack_frame(op, request_id, payload)
        with self._buf_lock:
            if not self._dead:
                self._frames.append(frame)

    def flush(self) -> None:
        with self._buf_lock:
            if self._dead or not self._frames:
                return
            data = b"".join(self._frames)
            self._frames.clear()
        try:
            with self._send_lock:
                self._conn.sendall(data)
        except OSError:
            # A failed/timed-out sendall may have written PART of a
            # frame; anything sent afterwards would be parsed mid-frame
            # by the client.  The stream is unrecoverable: mark the
            # writer dead and drop the connection (the reader thread
            # wakes from recv() and cleans up).
            with self._buf_lock:
                self._dead = True
                self._frames.clear()
            try:
                self._conn.shutdown(_socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._conn.close()
            except OSError:  # pragma: no cover
                pass

    def send_now(self, op: int, request_id: int, payload: bytes = b"") -> None:
        self.queue(op, request_id, payload)
        self.flush()


class ReachServer:
    """Threaded TCP server speaking the binary frame protocol.

    One reader thread per connection; responses are written from
    whichever thread resolves the batch (a per-connection lock keeps
    frames whole), so a pipelining client gets true request
    concurrency — which is what feeds the micro-batcher.

    ``port=0`` binds an ephemeral port (see :attr:`address`).
    ``allow_shutdown`` honours the ``OP_SHUTDOWN`` frame.  The frame is
    unauthenticated, so the default (``None``) enables it only when
    ``host`` is loopback; binding other interfaces disables it unless a
    caller passes ``True`` explicitly.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        allow_shutdown: Optional[bool] = None,
        backlog: int = 128,
        owns_service: bool = False,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        if allow_shutdown is None:
            allow_shutdown = _is_loopback(host)
        self.allow_shutdown = allow_shutdown
        self.backlog = backlog
        self._owns_service = owns_service
        self._listener = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_lock = threading.Lock()
        self._conns: List[object] = []
        self._conn_threads: List[threading.Thread] = []
        self._done = threading.Event()
        self._closed = False
        self._connections_total = 0
        #: Files the server owns and deletes on close (e.g. the temp
        #: artifact a build-mode facade saved for its worker pool).
        self.cleanup_paths: List[str] = []

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ReachServer":
        # Resolve the bind family from the host ('::1' needs AF_INET6).
        family, socktype, protocol, _cname, addr = _socket.getaddrinfo(
            self.host, self.port, type=_socket.SOCK_STREAM
        )[0]
        sock = _socket.socket(family, socktype, protocol)
        sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_REUSEADDR, 1)
        sock.bind(addr)
        sock.listen(self.backlog)
        self._listener = sock
        self.port = sock.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server closes; True if it did."""
        return self._done.wait(timeout)

    def close(self) -> None:
        """Stop accepting, drop connections, join threads."""
        with self._conn_lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns)
            threads = list(self._conn_threads)
        if self._listener is not None:
            # shutdown() is what actually wakes a thread blocked in
            # accept(); close() alone leaves it sleeping on Linux.
            try:
                self._listener.shutdown(_socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        for conn in conns:
            # Same shutdown-then-close dance as the listener: close()
            # alone leaves a thread blocked in recv() sleeping forever.
            try:
                conn.shutdown(_socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        current = threading.current_thread()
        if self._accept_thread is not None and self._accept_thread is not current:
            self._accept_thread.join(timeout=5.0)
        for thread in threads:
            if thread is not current:
                thread.join(timeout=5.0)
        if self._owns_service:
            self.service.close()
        for path in self.cleanup_paths:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - already gone
                pass
        self._done.set()

    def __enter__(self) -> "ReachServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- connection handling -------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed
                return
            conn.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
            # A send timeout (send only — recv must keep blocking for
            # idle keep-alive clients) so one client that stops reading
            # cannot park the shared resolver thread in sendall()
            # forever and head-of-line-block every other connection.
            try:
                import struct as _struct

                conn.setsockopt(
                    _socket.SOL_SOCKET,
                    _socket.SO_SNDTIMEO,
                    _struct.pack("ll", 30, 0),
                )
            except (AttributeError, OSError):  # pragma: no cover
                pass  # platform without SO_SNDTIMEO: degrade gracefully
            with self._conn_lock:
                if self._closed:
                    conn.close()
                    return
                self._conns.append(conn)
                self._connections_total += 1
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name="repro-server-conn",
                    daemon=True,
                )
                self._conn_threads.append(thread)
                # Start under the lock: close() must never snapshot a
                # registered-but-unstarted thread (join would raise and
                # abort shutdown half-done).
                thread.start()

    def _serve_connection(self, conn) -> None:
        reader = proto.FrameReader(conn)
        writer = _ConnWriter(conn)
        send = writer.send_now
        try:
            while True:
                try:
                    frame = reader.read_frame()
                except proto.ProtocolError as exc:
                    send(
                        proto.OP_ERROR,
                        proto.CONNECTION_ERROR_ID,
                        repr(exc).encode("utf-8"),
                    )
                    return
                except OSError:
                    return
                if frame is None:
                    return
                op, request_id, payload = frame
                if op == proto.OP_QUERY:
                    self._handle_query(request_id, payload, writer)
                elif op == proto.OP_PING:
                    send(proto.OP_PONG, request_id)
                elif op == proto.OP_STATS:
                    doc = dict(self.service.stats())
                    doc["connections_total"] = self._connections_total
                    send(
                        proto.OP_STATS_REPLY,
                        request_id,
                        json.dumps(doc).encode("utf-8"),
                    )
                elif op == proto.OP_SHUTDOWN:
                    if self.allow_shutdown:
                        send(proto.OP_PONG, request_id)
                        self.close()
                        return
                    send(
                        proto.OP_ERROR,
                        request_id,
                        b"shutdown disabled on this server",
                    )
                else:
                    send(
                        proto.OP_ERROR,
                        request_id,
                        f"unexpected opcode {op}".encode("utf-8"),
                    )
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            current = threading.current_thread()
            with self._conn_lock:
                if conn in self._conns:
                    self._conns.remove(conn)
                # Drop the finished thread's bookkeeping too, or a
                # long-lived server grows a list of dead threads (one
                # per connection ever accepted).
                if current in self._conn_threads:
                    self._conn_threads.remove(current)

    def _handle_query(self, request_id: int, payload: bytes, writer) -> None:
        try:
            pairs = proto.decode_pairs(payload)
        except proto.ProtocolError as exc:
            writer.send_now(proto.OP_ERROR, request_id, repr(exc).encode("utf-8"))
            return

        def on_answers(answers, error) -> None:
            if error is not None:
                writer.queue(
                    proto.OP_ERROR, request_id, repr(error).encode("utf-8")
                )
            else:
                writer.queue(
                    proto.OP_ANSWERS, request_id, proto.encode_answers(answers)
                )

        # Completions only queue; the batch (or the service's
        # synchronous paths) flushes each connection once per batch.
        on_answers.flush_writer = writer.flush
        self.service.query_pairs_async(pairs, on_answers)


# ----------------------------------------------------------------------
# HTTP front end (JSON fallback)
# ----------------------------------------------------------------------
class HttpFrontend:
    """The stdlib JSON/HTTP fallback mounted on the same service.

    ``on_shutdown`` is what a ``POST /shutdown`` actually stops.  It
    defaults to closing just this frontend; a deployment that mounts
    HTTP next to a :class:`ReachServer` (the CLI does) passes the whole
    server's ``close`` so the documented shutdown route takes the
    entire service down, exactly like the binary ``OP_SHUTDOWN``.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        allow_shutdown: bool = True,
        on_shutdown: Optional[Callable[[], None]] = None,
    ) -> None:
        from http.server import ThreadingHTTPServer

        handler = proto.make_http_handler(service, allow_shutdown=allow_shutdown)
        family = _socket.getaddrinfo(host, port, type=_socket.SOCK_STREAM)[0][0]
        server_cls = ThreadingHTTPServer
        if family != ThreadingHTTPServer.address_family:
            server_cls = type(
                "ReachHTTPServer", (ThreadingHTTPServer,), {"address_family": family}
            )
        self._httpd = server_cls((host, port), handler)
        self._on_shutdown = on_shutdown
        self._httpd.request_shutdown = self.close_async
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    def start(self) -> "HttpFrontend":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-server-http",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def close_async(self) -> None:
        """Run the shutdown target without blocking the handler thread."""
        target = self._on_shutdown or self.close
        threading.Thread(target=target, daemon=True).start()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# ----------------------------------------------------------------------
# Convenience entry point
# ----------------------------------------------------------------------
def serve_artifact(
    artifact_path: str,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    workers: int = 0,
    window_s: float = 0.001,
    max_batch: int = 65536,
    cache_size: int = 65536,
    allow_shutdown: Optional[bool] = None,
) -> ReachServer:
    """Start a TCP server over a saved artifact; returns the running server.

    The one-call deployment path::

        server = serve_artifact("kegg.rpro", port=7431, workers=4)
        server.wait()

    The returned server owns its :class:`QueryService` — ``close()``
    (or a client's ``OP_SHUTDOWN``) tears down the pool as well.
    ``allow_shutdown=None`` (default) honours the unauthenticated
    shutdown frame only on loopback hosts.
    """
    service = QueryService(
        artifact_path,
        workers=workers,
        window_s=window_s,
        max_batch=max_batch,
        cache_size=cache_size,
    ).start()
    try:
        return ReachServer(
            service,
            host,
            port,
            allow_shutdown=allow_shutdown,
            owns_service=True,
        ).start()
    except BaseException:
        service.close()
        raise
