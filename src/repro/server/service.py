"""The query service: cache → micro-batcher → oracle (or worker pool).

Topology
--------
::

    clients ──TCP──▶ ReachServer ──▶ QueryService
                                        │  cache (sharded LRU)
                                        │  MicroBatcher (≤ window_s)
                                        ▼
                       workers == 0: in-process CompiledOracle
                       workers  > 0: WorkerPool — N processes, each
                                     mmap-loading the SAME artifact
                                     (one physical copy, per PR 3)

Every batch is answered by ``query_batch`` on a compiled oracle (the
staged vectorized engine underneath), singletons by scalar ``query`` —
so a served answer is bit-identical to asking the oracle directly.

The worker pool exists for two reasons: CPU parallelism on multicore
hosts (each worker is a full process, no GIL sharing), and memory
safety — the artifact's arrays are mapped read-only and shared, so N
workers cost one physical copy of the index no matter how large it is.
Task payloads ride the wire codec from :mod:`repro.server.protocol`
(packed pairs out, packed answer bits back), which keeps the IPC cost
per *batch* instead of per query — exactly the economics micro-batching
is there to exploit.
"""

from __future__ import annotations

import json
import os
import socket as _socket
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .batching import Batch, MicroBatcher
from .cache import ShardedLRUCache
from . import protocol as proto
from ..telemetry import Telemetry

__all__ = ["QueryService", "WorkerPool", "ReachServer", "HttpFrontend", "serve_artifact"]

Pair = Tuple[int, int]


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
def _close_oracle_artifact(oracle) -> None:
    """Close the mmap behind a worker's retired oracle (best effort)."""
    from ..live.store import artifact_of

    art = artifact_of(oracle)
    if art is not None:
        try:
            art.close()
        except Exception:  # pragma: no cover - GC will unmap eventually
            pass


def _worker_main(
    artifact_path: str,
    initial_epoch: int,
    tasks,
    results,
    task_sem,
    lazy: bool = False,
) -> None:
    """Worker process: mmap-load the artifact, answer batches forever.

    Messages in: ``(batch_id, epoch, path, payload)`` with the wire
    pair encoding, or ``None`` to exit.  Messages out:
    ``("ready", pid)`` once, then per task ``("start", batch_id, pid)``
    followed by ``("ok", batch_id, payload)`` with packed answer bits
    or ``("err", batch_id, message)``.  The ``start`` message is the
    pool's death ledger: it tells the parent *which* batch a worker was
    holding, so a SIGKILLed worker fails exactly that batch instead of
    hanging it forever.

    Epoch-aware serving: static pools dispatch epoch 0 forever and the
    startup artifact serves every batch; a versioned pool dispatches
    each batch with its leased ``(epoch, path)``, and a task carrying a
    *different* epoch than the one currently mapped makes the worker
    load that version's file before answering (the retired mapping is
    closed) — each worker picks up a hot swap on its first batch of the
    new epoch, with no coordination message and no idle reload churn.
    The parent holds the batch's epoch lease until the reply arrives,
    which is what keeps the file mappable here.

    ``lazy=True`` (respawned workers) skips the startup load: the
    startup path may already have drained from a versioned store, so
    the replacement maps whichever file its first task leases instead
    (falling back to ``artifact_path`` for static pools, whose file the
    store never owns).
    """
    from ..serialization import load_artifact

    if lazy:
        oracle = None
        current_epoch: Optional[int] = None
    else:
        oracle = load_artifact(artifact_path, mmap=True)
        current_epoch = initial_epoch
    import queue as _queue

    results.put(("ready", os.getpid()))
    pid = os.getpid()
    while True:
        # Block on the semaphore, not inside ``tasks.get()``: a queue
        # read holds the queue's shared reader lock for the whole wait,
        # and a worker SIGKILLed there would take the lock to its grave
        # and poison the queue for every replacement.  Blocked semaphore
        # waiters hold nothing, so idle kills are survivable; the get()
        # below finds its item already buffered and returns at once.
        #
        # The get timeout is kept very short so the rlock is held for
        # at most 0.05s per wait (shrinking — not eliminating, see the
        # reaper docstring — the window where a SIGKILL lands on a
        # worker holding the rlock and wedges the queue).  But an Empty
        # poll does NOT yet prove the token was a compensating one from
        # the reaper: ``mp.Queue.put`` hands the item to a feeder
        # thread, and on a loaded single-core host the feeder can lag
        # the semaphore release by far more than one poll.  Swallowing
        # the token on first Empty would strand its task in the queue
        # with no token forever — in steady state that is always the
        # run's *last* batch, a client-visible hang.  So keep polling
        # for a generous deadline before concluding the token had no
        # task behind it.
        task_sem.acquire()
        task = None
        deadline = time.monotonic() + 1.0
        while True:
            try:
                task = tasks.get(timeout=0.05)
                break
            except _queue.Empty:
                if time.monotonic() >= deadline:
                    break  # a compensating token with no task behind it
        if task is None:
            continue
        if task is None:
            break
        batch_id, epoch, path, payload = task
        results.put(("start", batch_id, pid))
        try:
            if oracle is None or epoch != current_epoch:
                fresh = load_artifact(path or artifact_path, mmap=True)
                if oracle is not None:
                    _close_oracle_artifact(oracle)
                oracle = fresh
                current_epoch = epoch
            pairs = proto.decode_pairs(payload)
            if len(pairs) == 1:
                answers = [bool(oracle.query(*pairs[0]))]
            else:
                answers = oracle.query_batch(pairs)
            results.put(("ok", batch_id, proto.encode_answers(answers)))
        except Exception as exc:  # keep the worker alive; report per batch
            results.put(("err", batch_id, repr(exc)))


class WorkerPool:
    """N answer processes over one mmap-shared artifact.

    Prefers the ``fork`` start method (instant start, no re-import);
    falls back to ``spawn`` elsewhere.  The pool is created *before*
    any server thread starts, so forking is safe.  Dispatch is
    asynchronous: batches queue to whichever worker frees up first,
    and a reader thread resolves them, so up to N batches execute
    concurrently.

    The reader doubles as the pool's supervisor: workers announce each
    batch they pick up (``("start", batch_id, pid)``), and the reader
    polls liveness whenever the result queue goes quiet — a worker
    killed mid-batch (OOM killer, operator SIGKILL) fails exactly its
    announced batch with a clear error instead of hanging it forever,
    and a replacement worker is respawned to keep the pool at full
    strength.  Respawned workers load lazily from their first task's
    leased path (the original startup file may have drained).
    """

    #: Result-queue poll slice; also the upper bound on how long a dead
    #: worker can go unnoticed once the queue is quiet.
    POLL_INTERVAL_S = 0.2

    def __init__(
        self,
        artifact_path: str,
        workers: int,
        start_timeout: float = 60.0,
        initial_epoch: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        import multiprocessing as mp

        self.artifact_path = str(artifact_path)
        self.workers = workers
        self.initial_epoch = initial_epoch
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            ctx = mp.get_context("spawn")
        self._ctx = ctx
        self._tasks = ctx.Queue()
        #: One token per queued task.  Workers block here instead of
        #: inside ``tasks.get()`` so an idle SIGKILL cannot die holding
        #: the queue's reader lock (which would wedge every survivor).
        self._task_sem = ctx.Semaphore(0)
        self._results = ctx.Queue()
        self._lock = threading.Lock()
        self._pending: Dict[int, Batch] = {}
        self._active: Dict[int, int] = {}  # worker pid -> batch_id it holds
        self._next_id = 0
        self._dispatched = 0
        self._errors = 0
        self._respawns = 0
        self._spawn_seq = workers
        self._closed = False
        self._reader: Optional[threading.Thread] = None
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(
                    self.artifact_path,
                    initial_epoch,
                    self._tasks,
                    self._results,
                    self._task_sem,
                ),
                daemon=True,
                name=f"repro-serve-worker-{i}",
            )
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()
        # Block until every worker has its oracle mapped — a server that
        # accepts traffic before the pool is warm would stall its first
        # window of batches behind artifact loads.
        import queue as _queue

        deadline = time.monotonic() + start_timeout
        ready = 0
        while ready < workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise RuntimeError(
                    f"worker pool startup timed out ({ready}/{workers} ready)"
                )
            try:
                # Short slices so a worker that dies loading the
                # artifact fails the pool immediately instead of
                # burning the whole start timeout.
                msg = self._results.get(timeout=min(0.25, remaining))
            except _queue.Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if not dead:
                    continue
                self.close()
                raise RuntimeError(
                    f"{len(dead)} worker(s) died loading "
                    f"{self.artifact_path!r} before reporting ready "
                    f"({ready}/{workers} ready)"
                ) from None
            if msg[0] == "ready":
                ready += 1
        self._reader = threading.Thread(
            target=self._read_results, name="repro-pool-reader", daemon=True
        )
        self._reader.start()

    # -- dispatch ------------------------------------------------------
    def dispatch(self, batch: Batch, lease=None) -> None:
        """Queue a batch; the reader thread resolves it on completion.

        ``lease`` (live serving) pins one artifact epoch for the whole
        batch: its ``(epoch, path)`` ride the task so the worker maps
        the right version, and the lease is released only once the
        batch resolves — which is what keeps the epoch's file on disk
        until every worker that needs it has mapped it.
        """
        payload = proto.encode_pairs(batch.pairs)
        if lease is None:
            epoch, path = 0, ""
        else:
            epoch, path = lease.epoch, lease.path
        with self._lock:
            if self._closed:
                if lease is not None:
                    lease.release()
                batch.fail(RuntimeError("worker pool closed"))
                return
            batch_id = self._next_id
            self._next_id += 1
            self._pending[batch_id] = (batch, lease)
            self._dispatched += 1
        self._tasks.put((batch_id, epoch, path, payload))
        self._task_sem.release()

    def _read_results(self) -> None:
        import queue as _queue

        while True:
            try:
                msg = self._results.get(timeout=self.POLL_INTERVAL_S)
            except _queue.Empty:
                # Quiet queue: every message a dead worker managed to
                # send has been drained, so is_alive() is now a truthful
                # verdict on its announced batch.
                if self._closed:
                    return
                self._reap_dead_workers()
                continue
            if msg is None:
                return
            kind = msg[0]
            if kind == "ready":  # a respawned replacement came up
                continue
            if kind == "start":
                _kind, batch_id, pid = msg
                with self._lock:
                    self._active[pid] = batch_id
                continue
            kind, batch_id, payload = msg
            with self._lock:
                entry = self._pending.pop(batch_id, None)
                for pid, held in list(self._active.items()):
                    if held == batch_id:
                        del self._active[pid]
            if entry is None:  # late reply after close; nothing waits
                continue
            batch, lease = entry
            try:
                if kind == "ok":
                    batch.resolve(
                        proto.decode_answers(payload),
                        epoch=None if lease is None else lease.epoch,
                    )
                else:
                    with self._lock:
                        self._errors += 1
                    batch.fail(RuntimeError(f"worker failed: {payload}"))
            finally:
                if lease is not None:
                    lease.release()

    def _reap_dead_workers(self) -> None:
        """Fail dead workers' announced batches; respawn replacements.

        Called from the reader thread only, and only when the result
        queue is drained — so an announced-but-unanswered batch held by
        a dead process really is lost, not merely queued.  Two residual
        windows remain:

        * A worker dying between ``tasks.get()`` and its ``start``
          announcement: that batch's task vanished with the process and
          times out at the client instead of failing fast.  The window
          is a few instructions wide.
        * A worker dying *inside* ``tasks.get()`` — reachable when a
          compensating token from this reaper wakes it with no task
          behind it — dies holding the queue's shared reader lock and
          wedges the queue for every survivor.  The get timeout is kept
          very short (0.05s) precisely to shrink this window; it cannot
          be closed entirely without replacing ``mp.Queue``.
        """
        with self._lock:
            if self._closed:
                return
            dead = [p for p in self._procs if not p.is_alive()]
        for proc in dead:
            pid = proc.pid
            with self._lock:
                if self._closed:
                    return
                self._procs.remove(proc)
                batch_id = self._active.pop(pid, None)
                entry = (
                    self._pending.pop(batch_id, None)
                    if batch_id is not None
                    else None
                )
                self._respawns += 1
                if entry is not None:
                    self._errors += 1
                name = f"repro-serve-worker-r{self._spawn_seq}"
                self._spawn_seq += 1
                replacement = self._ctx.Process(
                    target=_worker_main,
                    args=(
                        self.artifact_path,
                        self.initial_epoch,
                        self._tasks,
                        self._results,
                        self._task_sem,
                        True,  # lazy: the startup file may have drained
                    ),
                    daemon=True,
                    name=name,
                )
                self._procs.append(replacement)
            replacement.start()
            # The dead worker may have consumed a task token without
            # finishing the task (killed between acquire and get, or
            # mid-batch).  A compensating token keeps tokens >= queued
            # tasks; at worst a spurious token costs one Empty poll.
            self._task_sem.release()
            if entry is not None:
                batch, lease = entry
                if lease is not None:
                    lease.release()
                batch.fail(
                    RuntimeError(
                        f"worker process (pid {pid}, exit code "
                        f"{proc.exitcode}) died while answering this "
                        "batch; a replacement worker was respawned — "
                        "the request is safe to retry"
                    )
                )

    # -- lifecycle -----------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop workers and the reader; fail anything still pending."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
            self._active.clear()
        for batch, lease in pending:
            if lease is not None:
                lease.release()
            batch.fail(RuntimeError("worker pool closed"))
        for _ in self._procs:
            self._tasks.put(None)
            self._task_sem.release()
        for proc in self._procs:
            try:
                proc.join(timeout=timeout)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=1.0)
            except (AssertionError, ValueError):  # pragma: no cover
                pass  # a respawned replacement raced close() before start()
        if self._reader is not None:
            self._results.put(None)
            self._reader.join(timeout=timeout)
        self._tasks.close()
        self._results.close()

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "dispatched_batches": self._dispatched,
                "in_flight": len(self._pending),
                "worker_errors": self._errors,
                "respawns": self._respawns,
            }


# ----------------------------------------------------------------------
# Query service
# ----------------------------------------------------------------------
def _oracle_bound(oracle) -> int:
    """The exclusive vertex-id bound the oracle accepts."""
    original = getattr(oracle, "original", None)
    if original is not None:  # build-mode facade
        return original.n
    condensation = getattr(oracle, "condensation", None)
    if condensation is not None:  # serve-mode facade: comp maps originals
        return len(condensation.comp)
    n = getattr(oracle, "n", None)  # compiled method oracle
    if isinstance(n, int):
        return n
    raise TypeError(f"cannot infer vertex bound of {type(oracle).__name__}")


def _memory_dedupe_updater(apply_updates):
    """Wrap a live index's update path with an in-memory dedupe window.

    Gives a plain (non-journaled) live server the same
    ``updater(edges, *, client=None, seq=None)`` shape as a
    :class:`~repro.durability.JournaledPrimary`, so ``OP_UPDATE_SEQ``
    re-sends after a lost ack dedupe instead of double-applying.  The
    window lives in memory only: idempotency holds for this server
    process's lifetime, not across a restart — durable dedupe is the
    journaled primary's job.  Un-sequenced calls (``client=None``)
    pass straight through.
    """
    from ..durability import DedupeWindow

    window = DedupeWindow()
    lock = threading.Lock()

    def updater(edges, *, client=None, seq=None):
        if client is None:
            return apply_updates(edges)
        with lock:
            cached = window.check(client, int(seq))
            if cached is not None:
                return dict(cached, deduped=True)
            summary = dict(apply_updates(edges))
            summary.update(client=client, seq=int(seq), deduped=False)
            window.record(client, int(seq), summary)
            return dict(summary)

    return updater


class QueryService:
    """Cache → batcher → oracle; the answer path shared by all frontends.

    Exactly one of ``artifact_path`` / ``oracle`` / ``store`` / ``live``
    picks the answer source:

    * ``artifact_path`` — a static artifact file (loaded in-process, or
      mmap-loaded by each worker when ``workers > 0``).
    * ``oracle`` — a live in-process oracle (``workers == 0`` only).
    * ``store`` — a :class:`repro.live.VersionedArtifactStore`: every
      batch leases the store's current epoch, so hot swaps published
      into the store take effect batch-atomically.  Works with worker
      pools (the lease's epoch + path ride each task).
    * ``live`` — a :class:`repro.live.LiveIndex`: its store serves as
      above *and* its update path is mounted as :attr:`updater`, which
      the TCP front end exposes as the ``OP_UPDATE`` /
      ``OP_UPDATE_SEQ`` wire ops (sequenced updates dedupe through an
      in-memory window — idempotency holds for the server's lifetime
      but not across a restart).
    * ``primary`` — a :class:`repro.durability.JournaledPrimary`: its
      live index serves, and :attr:`updater` is the *journaled* update
      path — the ack implies the batch is on disk, and the dedupe
      window itself is persisted, so sequenced re-sends stay idempotent
      across a crash + recovery.

    ``window_s`` is the micro-batching window (0 disables coalescing)
    and ``adaptive_window`` lets it shrink under low arrival rate;
    ``cache_size`` the LRU entry budget (0 disables the cache) — in
    versioned modes cache keys carry the epoch, so a swap never serves
    a stale cached answer and never needs a flush.  ``owns_store``
    makes :meth:`close` close the store/live index too.

    ``allow_empty_store`` lets :meth:`start` succeed on a store with no
    published epoch — the shape of a blank replica waiting for its
    first shipped snapshot.  Queries before the first publish fail with
    a clear "no published epoch" error (never a crash), and serving
    begins the moment an epoch lands.  Requires ``workers == 0``: a
    pool has no file to map until something is published.
    """

    def __init__(
        self,
        artifact_path: Optional[str] = None,
        oracle=None,
        *,
        store=None,
        live=None,
        primary=None,
        workers: int = 0,
        window_s: float = 0.001,
        adaptive_window: bool = False,
        max_batch: int = 65536,
        cache_size: int = 65536,
        cache_shards: int = 8,
        owns_store: bool = False,
        allow_empty_store: bool = False,
        telemetry=True,
    ) -> None:
        sources = sum(
            x is not None for x in (artifact_path, oracle, store, live, primary)
        )
        if sources != 1:
            raise ValueError(
                "pass exactly one of artifact_path / oracle / store / live "
                "/ primary"
            )
        self._primary = primary
        if primary is not None:
            self._live = primary.live
            self._store = primary.live.store
            self.updater = primary.apply_update
        elif live is not None:
            self._live = live
            self._store = live.store
            self.updater = _memory_dedupe_updater(live.apply_updates)
        else:
            self._live = None
            self._store = store
            #: ``updater(edges, *, client=None, seq=None) -> summary``
            #: for the wire ``OP_UPDATE`` / ``OP_UPDATE_SEQ``; None on
            #: servers without an update path.
            self.updater = None
        if workers > 0 and artifact_path is None and self._store is None:
            raise ValueError(
                "worker processes mmap-load the artifact themselves; "
                "serving a live oracle requires workers=0 (or save it "
                "to an artifact first)"
            )
        if allow_empty_store:
            if self._store is None:
                raise ValueError("allow_empty_store requires a store/live source")
            if workers > 0:
                raise ValueError(
                    "allow_empty_store requires workers=0: a pool has "
                    "no artifact to map until an epoch is published"
                )
        self.allow_empty_store = allow_empty_store
        self.artifact_path = None if artifact_path is None else str(artifact_path)
        self.workers = workers
        self.window_s = window_s
        self.cache = ShardedLRUCache(cache_size, shards=cache_shards)
        self._oracle = oracle
        self._owns_store = owns_store
        self._pool: Optional[WorkerPool] = None
        self._batcher = MicroBatcher(
            self._route,
            window_s=window_s,
            max_batch=max_batch,
            adaptive=adaptive_window,
        )
        self._started = False
        self._closed = False
        self._started_at: Optional[float] = None
        self._stat_lock = threading.Lock()
        self._requests = 0
        self._pairs_in = 0
        self._singles = 0
        self._bound: Optional[int] = None
        self._epoch_bounds: Dict[int, int] = {}
        self._store_error = ""
        #: The service's observability bundle (``telemetry=True`` builds
        #: a fresh :class:`repro.telemetry.Telemetry`; ``False`` turns
        #: every instrument off; passing an instance shares one registry
        #: across co-hosted components).  Instrument handles are cached
        #: as attributes so the hot path never does a registry lookup.
        if isinstance(telemetry, bool):
            self.telemetry = Telemetry() if telemetry else None
        else:
            self.telemetry = telemetry
        self._req_hist = None
        self._req_errors = None
        self._stats_errors = None
        self._cache_hist = None
        self._lat_every = 1
        # -1 disables the sampling gate outright: ``n & -1`` is never 0
        # for a positive tick, so the hot path needs no separate
        # "telemetry off?" test.
        self._lat_mask = -1
        self._trace_mask = -1
        if self.telemetry is not None:
            registry = self.telemetry.registry
            # Sampling gates, pre-flattened into masks: the request
            # counter (already bumped under the stat lock) doubles as
            # the sampling tick, so an unsampled request pays exactly
            # one bitmask test for all of telemetry.
            self._lat_every = self.telemetry.latency_every
            self._lat_mask = self._lat_every - 1
            self._trace_mask = self.telemetry.sample_every - 1
            self._req_hist = registry.histogram(
                "repro_request_seconds",
                "service-side query latency, 1-in-%d sampled"
                % self._lat_every,
            )
            self._req_errors = registry.counter(
                "repro_request_errors_total", "requests completed with an error"
            )
            self._stats_errors = registry.counter(
                "repro_stats_errors_total",
                "stats() subsections that raised and were reported degraded",
            )
            registry.gauge(
                "repro_epoch",
                "artifact epoch currently serving (0 = static)",
                fn=lambda: self.current_epoch or 0,
            )
            registry.gauge(
                "repro_uptime_seconds",
                "seconds since the service started",
                fn=lambda: (
                    time.monotonic() - self._started_at if self._started_at else 0.0
                ),
            )
            # The cache-lookup histogram is observed *here* rather
            # than via ``cache.bind_metrics`` so the lookup is only
            # clocked on sampled requests and the cache's own hot path
            # stays identical with telemetry on or off.
            self._cache_hist = registry.histogram(
                "repro_cache_lookup_seconds",
                "wall time of one batched cache lookup (get_many), "
                "1-in-%d sampled" % self._lat_every,
            )
            self._batcher.bind_metrics(
                registry, sample_weight=self.telemetry.sample_every
            )
            # Versioned sources carry their own instrumentation points
            # (journal fsync, swap timing, compile stages): hand every
            # distinct component the same registry so one scrape sees
            # the whole pipeline.
            bound_components = []
            for component in (self._primary, self._live, self._store):
                if component is None or component in bound_components:
                    continue
                bound_components.append(component)
                bind = getattr(component, "bind_metrics", None)
                if bind is not None:
                    bind(registry)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "QueryService":
        if self._started:
            return self
        if self._store is not None:
            if self._store.current_epoch is None and not self.allow_empty_store:
                raise RuntimeError("the artifact store has no published epoch")
            if self.workers > 0:
                # Lease the epoch across pool startup so a concurrent
                # publish cannot drain (and unlink) the file the
                # workers are busy mapping.
                with self._store.acquire() as lease:
                    self._pool = WorkerPool(
                        lease.path, self.workers, initial_epoch=lease.epoch
                    )
        elif self.workers > 0:
            self._pool = WorkerPool(self.artifact_path, self.workers)
        elif self._oracle is None:
            from ..serialization import load_artifact

            self._oracle = load_artifact(self.artifact_path, mmap=True)
        if self._oracle is not None:
            self._bound = _oracle_bound(self._oracle)
        elif self._store is None:
            # Workers own the oracle; read the bound from the header.
            from ..serialization import artifact_info

            meta = artifact_info(self.artifact_path)["meta"]
            self._bound = int(meta.get("original_n") or meta.get("n"))
        self._batcher.start()
        self._started = True
        self._started_at = time.monotonic()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._batcher.close()
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._owns_store:
            if self._primary is not None:
                self._primary.close()
            elif self._live is not None:
                self._live.close()
            elif self._store is not None:
                self._store.close()

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the answer path -----------------------------------------------
    @property
    def current_epoch(self) -> Optional[int]:
        """The serving artifact epoch (None for static sources)."""
        return None if self._store is None else self._store.current_epoch

    def _bound_for(self, lease) -> int:
        """Memoized vertex-id bound of one leased epoch (the single
        implementation shared by ingress validation and _route)."""
        bound = self._epoch_bounds.get(lease.epoch)
        if bound is None:
            bound = _oracle_bound(lease.oracle)
            # Tiny monotone map (one entry per published epoch); prune
            # so a long-lived server doesn't grow one int per publish.
            if len(self._epoch_bounds) > 8:
                self._epoch_bounds.clear()
            self._epoch_bounds[lease.epoch] = bound
        return bound

    def _epoch_and_bound(self) -> Tuple[Optional[int], Optional[int]]:
        """One consistent ``(epoch, bound)`` snapshot for a request.

        Taken under a single lease: epoch and oracle must come from the
        SAME version (separate current_epoch/current_oracle reads could
        straddle a publish and cache the new oracle's bound under the
        old epoch key).  ``(None, None)`` only when a versioned store
        is unavailable — closed mid-request, or nothing published yet
        on a blank replica; the store's own message lands in
        ``_store_error`` and callers turn it into a clean error, never
        compare ids against it.
        """
        if self._store is None:
            return None, self._bound
        try:
            lease = self._store.acquire()
        except RuntimeError as exc:  # closed, or no epoch yet (blank replica)
            self._store_error = str(exc)
            return None, None
        try:
            return lease.epoch, self._bound_for(lease)
        finally:
            lease.release()

    def _current_bound(self) -> Optional[int]:
        """Vertex-id bound of whatever will answer the next batch."""
        return self._epoch_and_bound()[1]

    def _route(self, batch: Batch) -> None:
        """Batcher dispatch target: pool when present, else in-process.

        Versioned sources lease the store's current epoch here — one
        lease per batch, released when the batch resolves — so every
        answer in a batch comes from exactly one artifact version.
        """
        if batch.singleton:
            with self._stat_lock:
                self._singles += 1
        lease = None
        if self._store is not None:
            try:
                lease = self._store.acquire()
            except Exception as exc:
                batch.fail(exc)
                return
            # Ingress validated against the *submission* epoch's bound;
            # if a swap to a smaller graph flipped in between, catch it
            # here with a clear error instead of letting the oracle
            # index out of range (which would surface as an opaque
            # worker/engine exception).  Only the requests that carry
            # an out-of-range pair fail — innocent requests coalesced
            # into the same batch are re-batched and answered normally.
            bound = self._bound_for(lease)
            if any(u >= bound or v >= bound for u, v in batch.pairs):
                bad = [
                    req
                    for req in batch.requests
                    if any(u >= bound or v >= bound for u, v in req.pairs)
                ]
                good = [req for req in batch.requests if req not in bad]
                Batch(bad).fail(
                    ValueError(
                        f"request contains a vertex pair out of range for "
                        f"n={bound}: the served artifact changed to a "
                        f"smaller graph (epoch {lease.epoch}) after the "
                        "request was validated"
                    )
                )
                if not good:
                    lease.release()
                    return
                batch = Batch(good)
        if self._pool is not None:
            self._pool.dispatch(batch, lease)
            return
        try:
            oracle = self._oracle if lease is None else lease.oracle
            if batch.singleton:
                u, v = batch.pairs[0]
                answers = [bool(oracle.query(u, v))]
            else:
                answers = oracle.query_batch(batch.pairs)
            batch.resolve(answers, epoch=None if lease is None else lease.epoch)
        except Exception as exc:
            batch.fail(exc)
        finally:
            if lease is not None:
                lease.release()

    def query_pairs_async(
        self,
        pairs: Sequence[Pair],
        callback: Callable[[Optional[List[bool]], Optional[BaseException]], None],
        trace=None,
    ) -> None:
        """Answer a request without blocking the calling thread.

        ``callback(answers, error)`` fires exactly once — synchronously
        when the cache covers everything, otherwise from whichever
        thread resolves the batch.  ``trace`` (a telemetry
        :class:`~repro.telemetry.TraceContext`, usually decoded from an
        ``OP_QUERY_TRACED`` frame) collects per-stage spans; with
        telemetry enabled and no client trace, every K-th request is
        auto-traced so the tail sampler fills with organic exemplars.
        """
        if not self._started:
            raise RuntimeError("QueryService.start() has not been called")
        flush = getattr(callback, "flush_writer", None)
        req_errors = self._req_errors
        # One lease yields the request's consistent (epoch, bound):
        # the bound validates ingress, the epoch keys the cache reads.
        epoch, bound = self._epoch_and_bound()
        if bound is None:
            if req_errors is not None:
                req_errors.inc()
            callback(
                None,
                RuntimeError(self._store_error or "the artifact store is closed"),
            )
            if flush is not None:
                flush()
            return
        for u, v in pairs:
            if not (0 <= u < bound and 0 <= v < bound):
                if req_errors is not None:
                    req_errors.inc()
                callback(
                    None,
                    ValueError(
                        f"vertex pair ({u}, {v}) out of range for n={bound}"
                    ),
                )
                if flush is not None:
                    flush()
                return
        with self._stat_lock:
            self._requests = n_req = self._requests + 1
            self._pairs_in += len(pairs)
        # Telemetry gate.  The request counter just bumped under the
        # stat lock doubles as the sampling tick, so an unsampled,
        # untraced request pays exactly one bitmask test for the whole
        # observability layer (``_lat_mask`` is -1 when telemetry is
        # off, which no positive tick can mask to 0); clocks, closures,
        # and histogram locks only run for the sampled 1-in-K, whose
        # observations carry ``weight=K`` to keep the histograms
        # population-accurate.
        lat_weight = 0
        if trace is not None or not n_req & self._lat_mask:
            telemetry = self.telemetry
            if not n_req & self._lat_mask:
                lat_weight = self._lat_every
                if trace is None and not n_req & self._trace_mask:
                    trace = telemetry.new_trace(origin="server")
            t_start_ns = time.perf_counter_ns()
            if trace is not None:
                trace.meta["pairs"] = len(pairs)
            inner_callback = callback
            req_hist = self._req_hist

            def callback(answers, error):
                if lat_weight:
                    req_hist.observe_ns(
                        time.perf_counter_ns() - t_start_ns, lat_weight
                    )
                inner_callback(answers, error)

            if trace is not None:
                # The trace closes after the last work done on the
                # request's behalf: the writer flush when one exists
                # (timed as the "flush" span), else the callback.
                finished = [False]

                def _finish_trace(end_ns=None):
                    if not finished[0]:
                        finished[0] = True
                        trace.finish(end_ns)
                        if telemetry is not None:  # explicit trace, telemetry off
                            telemetry.offer(trace)

                if flush is not None:
                    inner_flush = flush

                    def flush():
                        f0 = time.perf_counter_ns()
                        inner_flush()
                        end = time.perf_counter_ns()
                        if not finished[0]:
                            trace.add_span("flush", f0, end)
                        _finish_trace(end)
                else:
                    inner_traced = callback

                    def callback(answers, error):
                        inner_traced(answers, error)
                        _finish_trace()

        # Cache reads use the epoch current at submission (from the
        # snapshot above); writes (in on_done) use the epoch that
        # actually answered the batch.  Both are correct for their own
        # version — entries never cross epochs.
        versioned = self._store is not None
        if lat_weight or trace is not None:
            c0 = time.perf_counter_ns()
            cached, missing = self.cache.get_many(pairs, epoch=epoch)
            c1 = time.perf_counter_ns()
            if trace is not None:
                trace.add_span("cache_lookup", c0, c1)
            if lat_weight:
                self._cache_hist.observe_ns(c1 - c0, lat_weight)
        else:
            cached, missing = self.cache.get_many(pairs, epoch=epoch)
        if not missing:
            callback([bool(a) for a in cached], None)
            if flush is not None:
                flush()
            return
        missing_pairs = [pairs[i] for i in missing]
        had_hits = len(missing) < len(pairs)

        def on_done(req) -> None:
            if req.error is not None:
                if req_errors is not None:
                    req_errors.inc()
                callback(None, req.error)
                return
            self.cache.put_many(
                missing_pairs,
                req.answers,
                epoch=req.epoch if versioned else None,
            )
            if versioned and had_hits and req.epoch != epoch:
                # A publish landed between the cache read (epoch) and
                # the batch lease (req.epoch): combining them would mix
                # versions inside one reply.  Re-ask the *whole* request
                # from the batcher — it rides one batch, hence one
                # epoch, so the retry cannot mix (and needs no loop).
                def on_retry(req2) -> None:
                    if req2.error is not None:
                        if req_errors is not None:
                            req_errors.inc()
                        callback(None, req2.error)
                        return
                    self.cache.put_many(pairs, req2.answers, epoch=req2.epoch)
                    callback([bool(a) for a in req2.answers], None)

                if flush is not None:
                    on_retry.flush_writer = flush
                self._batcher.submit_async(pairs, on_retry, trace)
                return
            for slot, answer in zip(missing, req.answers):
                cached[slot] = answer
            callback([bool(a) for a in cached], None)

        if flush is not None:
            # A buffering callback (TCP front end): the batch flushes
            # each distinct writer once after scattering every answer.
            on_done.flush_writer = flush
        self._batcher.submit_async(missing_pairs, on_done, trace)

    def query_pairs(self, pairs: Sequence[Pair]) -> List[bool]:
        """Blocking :meth:`query_pairs_async` (HTTP and test path)."""
        done = threading.Event()
        box: List[object] = [None, None]

        def callback(answers, error) -> None:
            box[0], box[1] = answers, error
            done.set()

        self.query_pairs_async(pairs, callback)
        done.wait()
        if box[1] is not None:
            raise box[1]
        return box[0]

    def query(self, u: int, v: int) -> bool:
        """One blocking scalar query through the full service path."""
        return self.query_pairs([(u, v)])[0]

    # -- stats ---------------------------------------------------------
    def stats(self) -> dict:
        """The structured stats document (v2).

        Version 2 adds ``stats_version``, a ``telemetry`` section
        (mergeable histogram snapshots + counters/gauges — what the
        cluster scrape aggregates), and honest failure reporting: a
        subsection whose provider raises is *named* in ``degraded``
        and counted in ``repro_stats_errors_total`` instead of being
        silently dropped.  Stats still never fail serving — a broken
        subsection costs that subsection, not the document.
        """
        with self._stat_lock:
            requests, pairs_in, singles = self._requests, self._pairs_in, self._singles
        artifact = self.artifact_path
        if artifact is None and self._store is not None:
            artifact = self._store.current_path
        doc = {
            "stats_version": 2,
            "artifact": artifact,
            "workers": self.workers,
            "n": self._current_bound(),
            "epoch": self.current_epoch,
            "uptime_s": (
                time.monotonic() - self._started_at if self._started_at else 0.0
            ),
            "requests": requests,
            "pairs": pairs_in,
            "single_dispatches": singles,
            "cache": self.cache.stats(),
            "batcher": self._batcher.stats(),
        }
        if self._pool is not None:
            doc["pool"] = self._pool.stats()
        degraded: List[str] = []

        def subsection(name: str, provider) -> None:
            try:
                doc[name] = provider()
            except Exception:  # a failed provider must not fail serving
                degraded.append(name)
                if self._stats_errors is not None:
                    self._stats_errors.inc()

        if self._primary is not None:
            subsection("durability", self._primary.stats)
        if self._live is not None:
            subsection("live", self._live.stats)
        elif self._store is not None:
            subsection("store", self._store.stats)
        if self._oracle is not None and hasattr(self._oracle, "stats"):
            subsection("oracle", self._oracle.stats)
        if degraded:
            doc["degraded"] = degraded
        if self.telemetry is not None:
            doc["telemetry"] = self.telemetry.snapshot()
        return doc


# ----------------------------------------------------------------------
# TCP front end
# ----------------------------------------------------------------------
def _is_loopback(host: str) -> bool:
    """Whether a bind host only reaches local clients."""
    return host in ("127.0.0.1", "localhost", "::1") or host.startswith("127.")


class _ConnWriter:
    """Per-connection response writer that batches frames per flush.

    Query completions *queue* frames; one :meth:`flush` per
    (batch, connection) concatenates and writes them — one syscall for
    a whole micro-batch of responses instead of one per request.
    Control replies (ping, stats, errors) use :meth:`send_now`.
    """

    __slots__ = ("_conn", "_frames", "_buf_lock", "_send_lock", "_dead")

    def __init__(self, conn) -> None:
        self._conn = conn
        self._frames: List[bytes] = []
        self._buf_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._dead = False

    def queue(self, op: int, request_id: int, payload: bytes = b"") -> None:
        frame = proto.pack_frame(op, request_id, payload)
        with self._buf_lock:
            if not self._dead:
                self._frames.append(frame)

    def flush(self) -> None:
        with self._buf_lock:
            if self._dead or not self._frames:
                return
            data = b"".join(self._frames)
            self._frames.clear()
        try:
            with self._send_lock:
                self._conn.sendall(data)
        except OSError:
            # A failed/timed-out sendall may have written PART of a
            # frame; anything sent afterwards would be parsed mid-frame
            # by the client.  The stream is unrecoverable: mark the
            # writer dead and drop the connection (the reader thread
            # wakes from recv() and cleans up).
            with self._buf_lock:
                self._dead = True
                self._frames.clear()
            try:
                self._conn.shutdown(_socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._conn.close()
            except OSError:  # pragma: no cover
                pass

    def send_now(self, op: int, request_id: int, payload: bytes = b"") -> None:
        self.queue(op, request_id, payload)
        self.flush()


class ReachServer:
    """Threaded TCP server speaking the binary frame protocol.

    One reader thread per connection; responses are written from
    whichever thread resolves the batch (a per-connection lock keeps
    frames whole), so a pipelining client gets true request
    concurrency — which is what feeds the micro-batcher.

    ``port=0`` binds an ephemeral port (see :attr:`address`).
    ``allow_shutdown`` honours the ``OP_SHUTDOWN`` frame.  The frame is
    unauthenticated, so the default (``None``) enables it only when
    ``host`` is loopback; binding other interfaces disables it unless a
    caller passes ``True`` explicitly.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        allow_shutdown: Optional[bool] = None,
        backlog: int = 128,
        owns_service: bool = False,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        if allow_shutdown is None:
            allow_shutdown = _is_loopback(host)
        self.allow_shutdown = allow_shutdown
        self.backlog = backlog
        self._owns_service = owns_service
        self._listener = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_lock = threading.Lock()
        self._conns: List[object] = []
        self._conn_threads: List[threading.Thread] = []
        self._done = threading.Event()
        self._closed = False
        self._connections_total = 0
        #: Files the server owns and deletes on close (e.g. the temp
        #: artifact a build-mode facade saved for its worker pool).
        self.cleanup_paths: List[str] = []
        #: Callables run during close(), after connections drain but
        #: before the owned service shuts down — watchers, live
        #: indices, anything whose lifetime is tied to this server.
        #: Exceptions are swallowed: shutdown must finish.
        self.cleanup_callbacks: List[Callable[[], None]] = []
        #: Extension opcodes: ``{op: fn(request_id, payload, writer)}``,
        #: consulted before the "unexpected opcode" error.  This is how
        #: a replica mounts ``OP_SHIP`` (epoch replication) on a plain
        #: ReachServer without subclassing; handlers run on the
        #: connection's reader thread and reply through ``writer``.
        self.handlers: Dict[int, Callable[[int, bytes, _ConnWriter], None]] = {}

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ReachServer":
        # Resolve the bind family from the host ('::1' needs AF_INET6).
        family, socktype, protocol, _cname, addr = _socket.getaddrinfo(
            self.host, self.port, type=_socket.SOCK_STREAM
        )[0]
        sock = _socket.socket(family, socktype, protocol)
        try:
            sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_REUSEADDR, 1)
            sock.bind(addr)
            sock.listen(self.backlog)
        except BaseException:
            # A failed start leaves no socket behind, and close() on
            # the unstarted server stays a clean no-op.
            sock.close()
            raise
        self._listener = sock
        self.port = sock.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server closes; True if it did."""
        return self._done.wait(timeout)

    def close(self) -> None:
        """Stop accepting, drop connections, join threads."""
        with self._conn_lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns)
            threads = list(self._conn_threads)
        if self._listener is not None:
            # shutdown() is what actually wakes a thread blocked in
            # accept(); close() alone leaves it sleeping on Linux.
            try:
                self._listener.shutdown(_socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        for conn in conns:
            # Same shutdown-then-close dance as the listener: close()
            # alone leaves a thread blocked in recv() sleeping forever.
            try:
                conn.shutdown(_socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        current = threading.current_thread()
        if self._accept_thread is not None and self._accept_thread is not current:
            self._accept_thread.join(timeout=5.0)
        for thread in threads:
            if thread is not current:
                thread.join(timeout=5.0)
        # Callbacks first (watchers must stop publishing before the
        # service closes the store they publish into), then the service.
        for callback in self.cleanup_callbacks:
            try:
                callback()
            except Exception:  # pragma: no cover - shutdown must finish
                pass
        if self._owns_service:
            self.service.close()
        for path in self.cleanup_paths:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - already gone
                pass
        self._done.set()

    def __enter__(self) -> "ReachServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- connection handling -------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed
                return
            # Per-connection setup must not be able to kill the accept
            # loop: a client that connects and immediately resets can
            # make setsockopt raise on some platforms (the socket is
            # already dead), and losing the accept thread to one broken
            # peer would refuse every future connection.
            try:
                conn.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
                # A send timeout (send only — recv must keep blocking
                # for idle keep-alive clients) so one client that stops
                # reading cannot park the shared resolver thread in
                # sendall() forever and head-of-line-block every other
                # connection.
                try:
                    import struct as _struct

                    conn.setsockopt(
                        _socket.SOL_SOCKET,
                        _socket.SO_SNDTIMEO,
                        _struct.pack("ll", 30, 0),
                    )
                except (AttributeError, OSError):  # pragma: no cover
                    pass  # platform without SO_SNDTIMEO: degrade
            except OSError:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                continue
            with self._conn_lock:
                if self._closed:
                    conn.close()
                    return
                self._conns.append(conn)
                self._connections_total += 1
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name="repro-server-conn",
                    daemon=True,
                )
                self._conn_threads.append(thread)
                # Start under the lock: close() must never snapshot a
                # registered-but-unstarted thread (join would raise and
                # abort shutdown half-done).
                thread.start()

    def _serve_connection(self, conn) -> None:
        reader = proto.FrameReader(conn)
        writer = _ConnWriter(conn)
        send = writer.send_now
        try:
            while True:
                try:
                    frame = reader.read_frame()
                except proto.ProtocolError as exc:
                    send(
                        proto.OP_ERROR,
                        proto.CONNECTION_ERROR_ID,
                        repr(exc).encode("utf-8"),
                    )
                    return
                except OSError:
                    return
                if frame is None:
                    return
                op, request_id, payload = frame
                try:
                    if op == proto.OP_QUERY:
                        self._handle_query(request_id, payload, writer)
                    elif op == proto.OP_QUERY_TRACED:
                        self._handle_query(
                            request_id, payload, writer, traced=True
                        )
                    elif op == proto.OP_TRACE:
                        telemetry = getattr(self.service, "telemetry", None)
                        traces = (
                            []
                            if telemetry is None
                            else telemetry.sampler.snapshot()
                        )
                        send(
                            proto.OP_TRACE_REPLY,
                            request_id,
                            json.dumps(traces).encode("utf-8"),
                        )
                    elif op == proto.OP_PING:
                        send(proto.OP_PONG, request_id)
                    elif op == proto.OP_EPOCH:
                        send(
                            proto.OP_EPOCH_REPLY,
                            request_id,
                            proto.encode_epoch(self.service.current_epoch),
                        )
                    elif op == proto.OP_UPDATE:
                        self._handle_update(request_id, payload, send)
                    elif op == proto.OP_UPDATE_SEQ:
                        self._handle_update(
                            request_id, payload, send, sequenced=True
                        )
                    elif op == proto.OP_STATS:
                        doc = dict(self.service.stats())
                        doc["connections_total"] = self._connections_total
                        send(
                            proto.OP_STATS_REPLY,
                            request_id,
                            json.dumps(doc).encode("utf-8"),
                        )
                    elif op == proto.OP_SHUTDOWN:
                        if self.allow_shutdown:
                            send(proto.OP_PONG, request_id)
                            self.close()
                            return
                        send(
                            proto.OP_ERROR,
                            request_id,
                            b"shutdown disabled on this server",
                        )
                    elif op in self.handlers:
                        self.handlers[op](request_id, payload, writer)
                    else:
                        send(
                            proto.OP_ERROR,
                            request_id,
                            f"unexpected opcode {op}".encode("utf-8"),
                        )
                except Exception as exc:
                    # A handler bug (or a malformed payload it did not
                    # expect) costs the one request that triggered it,
                    # never the connection — and the accept loop is a
                    # different thread entirely, so the server keeps
                    # serving either way.
                    send(proto.OP_ERROR, request_id, repr(exc).encode("utf-8"))
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            current = threading.current_thread()
            with self._conn_lock:
                if conn in self._conns:
                    self._conns.remove(conn)
                # Drop the finished thread's bookkeeping too, or a
                # long-lived server grows a list of dead threads (one
                # per connection ever accepted).
                if current in self._conn_threads:
                    self._conn_threads.remove(current)

    def _handle_update(
        self, request_id: int, payload: bytes, send, *, sequenced: bool = False
    ) -> None:
        """``OP_UPDATE``(+``_SEQ``): apply an edge stream to a live index.

        Runs on the connection's reader thread — updates serialise on
        the live index's lock anyway, and a pipelining client can keep
        querying on other connections while its update compiles.  The
        reply is the JSON publish summary (new ``epoch``, ``changed``
        count, ``swap_s``…).  A sequenced request carries
        ``(client, seq)`` and its summary echoes them plus ``deduped``;
        a duplicate returns the original summary unapplied.
        """
        if self.service.updater is None:
            send(
                proto.OP_ERROR,
                request_id,
                b"this server has no update path (serve a live index: "
                b"Reachability.serve(live=True))",
            )
            return
        try:
            if sequenced:
                client, seq, ops = proto.decode_update_seq(payload)
            else:
                client, seq = None, None
                ops = proto.decode_ops(payload)
        except proto.ProtocolError as exc:
            send(proto.OP_ERROR, request_id, repr(exc).encode("utf-8"))
            return
        try:
            if sequenced:
                summary = self.service.updater(ops, client=client, seq=seq)
            else:
                summary = self.service.updater(ops)
        except Exception as exc:  # bad edges must not kill the connection
            send(proto.OP_ERROR, request_id, repr(exc).encode("utf-8"))
            return
        send(
            proto.OP_UPDATE_REPLY,
            request_id,
            json.dumps(summary).encode("utf-8"),
        )

    def _handle_query(
        self, request_id: int, payload: bytes, writer, *, traced: bool = False
    ) -> None:
        trace = None
        try:
            if traced:
                t0 = time.perf_counter_ns()
                trace_id, pairs = proto.decode_traced_query(payload)
                telemetry = getattr(self.service, "telemetry", None)
                if telemetry is not None:
                    # The client allocated the id; the span clock is
                    # this server's.  A telemetry-off server answers
                    # normally and just drops the id.
                    trace = telemetry.new_trace(trace_id)
                    trace.start_ns = t0  # the request began at decode
                    trace.add_span("decode", t0, time.perf_counter_ns())
            else:
                pairs = proto.decode_pairs(payload)
        except proto.ProtocolError as exc:
            writer.send_now(proto.OP_ERROR, request_id, repr(exc).encode("utf-8"))
            return

        def on_answers(answers, error) -> None:
            if error is None:
                writer.queue(
                    proto.OP_ANSWERS, request_id, proto.encode_answers(answers)
                )
            elif isinstance(error, proto.OverloadedError):
                # Distinct wire op: a shed request failed *because of
                # pressure*, not because it was wrong — a router retries
                # it on another replica, a client backs off.
                writer.queue(
                    proto.OP_OVERLOADED, request_id, str(error).encode("utf-8")
                )
            else:
                writer.queue(
                    proto.OP_ERROR, request_id, repr(error).encode("utf-8")
                )

        # Completions only queue; the batch (or the service's
        # synchronous paths) flushes each connection once per batch.
        on_answers.flush_writer = writer.flush
        self.service.query_pairs_async(pairs, on_answers, trace=trace)


# ----------------------------------------------------------------------
# HTTP front end (JSON fallback)
# ----------------------------------------------------------------------
class HttpFrontend:
    """The stdlib JSON/HTTP fallback mounted on the same service.

    ``on_shutdown`` is what a ``POST /shutdown`` actually stops.  It
    defaults to closing just this frontend; a deployment that mounts
    HTTP next to a :class:`ReachServer` (the CLI does) passes the whole
    server's ``close`` so the documented shutdown route takes the
    entire service down, exactly like the binary ``OP_SHUTDOWN``.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        allow_shutdown: bool = True,
        on_shutdown: Optional[Callable[[], None]] = None,
    ) -> None:
        from http.server import ThreadingHTTPServer

        handler = proto.make_http_handler(service, allow_shutdown=allow_shutdown)
        family = _socket.getaddrinfo(host, port, type=_socket.SOCK_STREAM)[0][0]
        server_cls = ThreadingHTTPServer
        if family != ThreadingHTTPServer.address_family:
            server_cls = type(
                "ReachHTTPServer", (ThreadingHTTPServer,), {"address_family": family}
            )
        self._httpd = server_cls((host, port), handler)
        self._on_shutdown = on_shutdown
        self._httpd.request_shutdown = self.close_async
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    def start(self) -> "HttpFrontend":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-server-http",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def close_async(self) -> None:
        """Run the shutdown target without blocking the handler thread."""
        target = self._on_shutdown or self.close
        threading.Thread(target=target, daemon=True).start()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# ----------------------------------------------------------------------
# Convenience entry point
# ----------------------------------------------------------------------
def serve_artifact(
    artifact_path: str,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    workers: int = 0,
    window_s: float = 0.001,
    adaptive_window: bool = False,
    max_batch: int = 65536,
    cache_size: int = 65536,
    allow_shutdown: Optional[bool] = None,
    watch: bool = False,
    watch_interval_s: float = 0.5,
    telemetry=True,
) -> ReachServer:
    """Start a TCP server over a saved artifact; returns the running server.

    The one-call deployment path::

        server = serve_artifact("kegg.rpro", port=7431, workers=4)
        server.wait()

    ``watch=True`` serves the artifact through an epoch-versioned store
    and polls the file every ``watch_interval_s``: atomically replacing
    it on disk (write new + ``os.rename``) hot-swaps the served version
    without dropping a connection.  The returned server owns its
    :class:`QueryService` (and, when watching, the store + watcher) —
    ``close()`` (or a client's ``OP_SHUTDOWN``) tears everything down.
    ``allow_shutdown=None`` (default) honours the unauthenticated
    shutdown frame only on loopback hosts.
    """
    watcher = None
    if watch:
        from ..live import ArtifactWatcher, VersionedArtifactStore

        store = VersionedArtifactStore()
        # The watcher publishes epoch 1 too: every epoch is a private
        # snapshot (hard link) of the watched file, so epoch -> content
        # stays bound however fast the operator replaces the path, and
        # the pre-load signature capture closes the replace-during-load
        # race.
        watcher = ArtifactWatcher(store, artifact_path, interval_s=watch_interval_s)
        try:
            watcher.publish_current()
        except BaseException:
            watcher.close()
            store.close()
            raise
        service = QueryService(
            store=store,
            workers=workers,
            window_s=window_s,
            adaptive_window=adaptive_window,
            max_batch=max_batch,
            cache_size=cache_size,
            owns_store=True,
            telemetry=telemetry,
        )
    else:
        service = QueryService(
            artifact_path,
            workers=workers,
            window_s=window_s,
            adaptive_window=adaptive_window,
            max_batch=max_batch,
            cache_size=cache_size,
            telemetry=telemetry,
        )
    try:
        service.start()
        server = ReachServer(
            service,
            host,
            port,
            allow_shutdown=allow_shutdown,
            owns_service=True,
        )
        if watcher is not None:
            # Stop polling before the service (and its store) go down.
            server.cleanup_callbacks.append(watcher.close)
            watcher.start()
        return server.start()
    except BaseException:
        if watcher is not None:
            watcher.close()
        service.close()
        raise
