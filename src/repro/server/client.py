"""Client for the reachability service + open/closed-loop load generator.

:class:`ReachClient` is the simple synchronous client: one request in
flight, answers in call order.  The load generator underneath
:func:`run_load` is the measuring instrument — per connection it keeps
``pipeline`` requests in flight (closed loop) or fires on a fixed
schedule regardless of completions (open loop), records per-request
latency from the pre-encoded frame's send to its matched response, and
reassembles every answer in workload order so callers can verify the
served bits against a direct oracle.

Closed loop measures the server's *capacity* (clients wait for their
turn); open loop measures *latency under a fixed arrival rate*,
queueing included — the number a latency SLO actually cares about.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from . import protocol as proto
from ..stats import percentiles

__all__ = ["ReachClient", "LoadReport", "run_load", "percentiles"]

Pair = Tuple[int, int]


#: Transport-level failures a client may transparently retry for
#: idempotent requests: socket errors (``ConnectionError`` and
#: ``socket.timeout`` are ``OSError`` subclasses) and a stream cut
#: mid-frame (``ProtocolError`` from the reader).  Server-*reported*
#: errors are ``RuntimeError`` and are never retried — the request
#: itself is wrong, and a new connection won't change that.
TRANSPORT_ERRORS = (OSError, proto.ProtocolError)


class ReachClient:
    """Blocking binary-protocol client: one request in flight at a time.

    Deadlines: ``connect_timeout`` bounds connection establishment,
    ``timeout`` bounds each request round-trip (both default 30 s; a
    hung server raises ``socket.timeout`` instead of blocking forever).

    Transient socket failures — a RST from a restarting server, an
    idle-connection drop, a frame cut mid-stream — do not surface for
    *idempotent* requests: the client reconnects with bounded
    exponential backoff and re-sends, up to ``reconnect_attempts``
    times, before raising ``ConnectionError``.  That covers
    query/ping/stats/epoch/ship *and* the default ``update`` path: each
    client carries a ``client_id`` and stamps every update batch with a
    monotonically increasing sequence number (``OP_UPDATE_SEQ``), so a
    re-send after a lost ack dedupes server-side instead of applying
    the edges twice.  Only ``update(..., idempotent=False)`` (the
    legacy un-sequenced ``OP_UPDATE``, for pre-PR-7 servers) and
    ``shutdown_server`` fail immediately on a transport error, leaving
    the re-send decision to the caller.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 30.0,
        *,
        connect_timeout: Optional[float] = None,
        reconnect_attempts: int = 2,
        reconnect_backoff_s: float = 0.05,
        client_id: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = timeout if connect_timeout is None else connect_timeout
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff_s = reconnect_backoff_s
        #: Stamped on sequenced updates; a client that reconnects under
        #: the *same* id (pass one explicitly) keeps its dedupe window.
        self.client_id = client_id or uuid.uuid4().hex
        self._next_id = 0
        self._update_seq = 0
        # update() draws its sequence number before _roundtrip takes
        # self._lock (which is not reentrant), so the counter gets its
        # own lock.
        self._seq_lock = threading.Lock()
        self._lock = threading.Lock()
        self._reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._reader: Optional[proto.FrameReader] = None
        self._connect()

    def _connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._reader = proto.FrameReader(sock)

    @property
    def reconnects(self) -> int:
        """How many times the client has re-established its connection."""
        return self._reconnects

    def _roundtrip(
        self, op: int, payload: bytes = b"", *, retryable: bool = True
    ) -> Tuple[int, bytes]:
        """Send one frame and wait for its (id-matched) response.

        ``retryable`` marks the request idempotent: a transport failure
        reconnects (bounded backoff) and re-sends the same frame rather
        than raising mid-load.
        """
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
            frame = proto.pack_frame(op, request_id, payload)
            attempts = self.reconnect_attempts if retryable else 0
            last_exc: Optional[BaseException] = None
            for attempt in range(attempts + 1):
                if attempt:
                    time.sleep(self.reconnect_backoff_s * (1 << (attempt - 1)))
                    self._reconnects += 1
                    try:
                        if self._sock is not None:
                            self._sock.close()
                        self._connect()
                    except OSError as exc:
                        last_exc = exc
                        continue
                try:
                    return self._exchange(frame, request_id)
                except TRANSPORT_ERRORS as exc:
                    last_exc = exc
                    if not retryable:
                        raise
            raise ConnectionError(
                f"request failed after {attempts} reconnect attempt(s): "
                f"{last_exc!r}"
            ) from last_exc

    def _exchange(self, frame: bytes, request_id: int) -> Tuple[int, bytes]:
        self._sock.sendall(frame)
        while True:
            reply = self._reader.read_frame()
            if reply is None:
                raise ConnectionError("server closed the connection")
            rop, rid, rpayload = reply
            if rop == proto.OP_ERROR and rid == proto.CONNECTION_ERROR_ID:
                raise ConnectionError(
                    f"server reported a connection-level error: "
                    f"{rpayload.decode('utf-8', 'replace')}"
                )
            if rid == request_id:
                if rop == proto.OP_ERROR:
                    raise RuntimeError(
                        f"server error: {rpayload.decode('utf-8', 'replace')}"
                    )
                if rop == proto.OP_OVERLOADED:
                    raise proto.OverloadedError(
                        rpayload.decode("utf-8", "replace")
                        or "server overloaded"
                    )
                return rop, rpayload
            # A stale frame (e.g. reply to an abandoned request):
            # skip — ids only move forward on this connection.

    # -- public API ----------------------------------------------------
    def query(self, u: int, v: int) -> bool:
        """Whether ``u`` reaches ``v``, by asking the server."""
        return self.query_batch([(u, v)])[0]

    def query_batch(self, pairs: Sequence[Pair]) -> List[bool]:
        """Answers for many pairs in one request frame."""
        _, payload = self._roundtrip(proto.OP_QUERY, proto.encode_pairs(pairs))
        return proto.decode_answers(payload)

    def query_batch_traced(
        self, pairs: Sequence[Pair], trace_id: Optional[int] = None
    ) -> Tuple[List[bool], int]:
        """Like :meth:`query_batch`, but the request carries a trace id.

        The id (allocated client-side unless given) rides the
        ``OP_QUERY_TRACED`` frame; the server records a span breakdown
        for this exact request and keeps it if it lands among the
        slowest exemplars — retrieve with :meth:`traces` and match on
        the returned id.  Answers are identical to the untraced path.
        """
        if trace_id is None:
            from ..telemetry import new_trace_id

            trace_id = new_trace_id()
        _, payload = self._roundtrip(
            proto.OP_QUERY_TRACED,
            proto.encode_traced_query(trace_id, pairs),
        )
        return proto.decode_answers(payload), trace_id

    def traces(self) -> List[dict]:
        """The server's slowest-trace exemplars (``OP_TRACE``).

        Each entry is a :meth:`repro.telemetry.TraceContext.to_doc`
        document: ``trace_id``, ``origin``, ``duration_ns``, and named
        ``spans`` with offsets relative to the trace start.  Slowest
        first; empty when the server runs with telemetry disabled.
        """
        _, payload = self._roundtrip(proto.OP_TRACE)
        return json.loads(payload.decode("utf-8"))

    def ping(self) -> float:
        """Round-trip time of an empty frame, in seconds."""
        t0 = time.perf_counter()
        self._roundtrip(proto.OP_PING)
        return time.perf_counter() - t0

    def stats(self) -> dict:
        """The server's stats document (service + cache + batcher)."""
        _, payload = self._roundtrip(proto.OP_STATS)
        return json.loads(payload.decode("utf-8"))

    def epoch(self) -> int:
        """The artifact epoch currently serving (0 = static server)."""
        _, payload = self._roundtrip(proto.OP_EPOCH)
        return proto.decode_epoch(payload)

    def update(
        self,
        edges: Sequence,
        *,
        seq: Optional[int] = None,
        client: Optional[str] = None,
        idempotent: bool = True,
    ) -> dict:
        """Apply edge churn to a live server; returns the publish summary.

        ``edges`` takes plain ``(u, v)`` pairs (insertions) and/or
        ``('+'|'-', u, v)`` triples — removals ride the same frame as
        a trailing bitmap, and an insert-only stream is byte-identical
        to the pre-removal wire format.  The server applies the whole
        stream in order and hot-swaps to the new artifact epoch before
        replying, so a subsequent query on *any* connection sees the
        updated graph.  Raises ``RuntimeError`` when the server has no
        live update path.

        By default the batch is *sequenced* (``OP_UPDATE_SEQ``): it
        carries ``client`` (default: this client's ``client_id``) and
        ``seq`` (default: the next value of this client's counter), the
        server echoes both in the summary, and a transport failure is
        transparently retried — a re-send of an already-applied batch
        returns the original summary with ``deduped: true`` instead of
        applying twice.  Pass an explicit ``seq`` to re-send a specific
        unacked batch after building a fresh client.

        ``idempotent=False`` sends the legacy un-sequenced
        ``OP_UPDATE`` (for pre-sequencing servers), which is **never**
        retried: a replay could apply the edge stream twice, so a
        transport error surfaces and the caller decides.
        """
        if not idempotent:
            if seq is not None or client is not None:
                raise ValueError("seq/client require idempotent=True")
            _, payload = self._roundtrip(
                proto.OP_UPDATE, proto.encode_ops(edges), retryable=False
            )
            return json.loads(payload.decode("utf-8"))
        if seq is None:
            with self._seq_lock:
                self._update_seq += 1
                seq = self._update_seq
        _, payload = self._roundtrip(
            proto.OP_UPDATE_SEQ,
            proto.encode_update_seq(client or self.client_id, seq, edges),
            retryable=True,
        )
        return json.loads(payload.decode("utf-8"))

    def ship(self, epoch: int, data: bytes) -> dict:
        """Ship one artifact epoch to a replica; returns its JSON verdict.

        Idempotent (and safe to retry): a replica that already holds
        ``epoch`` or newer answers ``{"applied": false}`` instead of
        regressing — the monotone-epoch invariant lives server-side.
        """
        _, payload = self._roundtrip(proto.OP_SHIP, proto.encode_ship(epoch, data))
        return json.loads(payload.decode("utf-8"))

    def shutdown_server(self) -> None:
        """Ask the server to stop (it acks before going down)."""
        self._roundtrip(proto.OP_SHUTDOWN, retryable=False)

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ReachClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """What a load run measured: throughput, latency shape, answers."""

    mode: str
    connections: int
    pipeline: int
    pairs_per_request: int
    total_pairs: int
    total_requests: int
    wall_s: float
    qps: float
    latency_ms: Dict[str, float] = field(default_factory=dict)
    errors: int = 0
    first_error: str = ""
    answers: List[bool] = field(default_factory=list)
    #: Per-request ``(completion_stamp, latency_s)`` samples, in
    #: ``time.perf_counter`` coordinates; filled only when
    #: :func:`run_load` is called with ``keep_samples=True``.  This is
    #: what lets the live bench slice "latency during the swap window"
    #: out of a run that straddles a hot swap.
    samples: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def positives(self) -> int:
        return sum(self.answers)

    def summary(self) -> str:
        lat = self.latency_ms
        pct = (
            f"p50={lat.get('p50', 0.0):.2f} p95={lat.get('p95', 0.0):.2f} "
            f"p99={lat.get('p99', 0.0):.2f} ms"
        )
        return (
            f"{self.mode}-loop: {self.total_pairs:,} pairs in {self.wall_s:.2f}s "
            f"= {self.qps:,.0f} q/s ({pct}, errors={self.errors})"
        )


class _LoadConnection:
    """One load connection: a sender, a reader, and its latency log."""

    def __init__(
        self,
        host: str,
        port: int,
        requests: List[Tuple[int, bytes, int]],
        mode: str,
        pipeline: int,
        send_times: Optional[List[float]],
        timeout: float,
    ) -> None:
        # requests: (request_id, prebuilt frame, n_pairs); ids are the
        # global request indices, so answers reassemble by id.
        self.requests = requests
        self.mode = mode
        self.pipeline = pipeline
        self.send_times = send_times  # open loop: offsets from the epoch
        self.latencies: List[float] = []
        self.stamps: List[float] = []  # completion time per latency entry
        self.answers: Dict[int, List[bool]] = {}
        self.errors = 0
        self.first_error = ""
        self.first_send: Optional[float] = None
        self.last_recv: Optional[float] = None
        self._sent_at: Dict[int, float] = {}
        self._outstanding = threading.Semaphore(pipeline)
        self._all_done = threading.Event()
        self._received = 0
        self._dead = False
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader_thread = threading.Thread(
            target=self._read_loop, name="repro-load-reader", daemon=True
        )
        self._sender_thread = threading.Thread(
            target=self._send_loop, name="repro-load-sender", daemon=True
        )

    def start(self, epoch: float) -> None:
        self._epoch = epoch
        self._reader_thread.start()
        self._sender_thread.start()

    def join(self, timeout: float) -> None:
        self._sender_thread.join(timeout)
        self._all_done.wait(timeout)
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass
        self._reader_thread.join(timeout)

    # -- sender --------------------------------------------------------
    def _send_loop(self) -> None:
        try:
            if self.mode == "closed":
                self._send_closed()
            else:
                self._send_open()
        except OSError as exc:
            self.errors += 1
            self.first_error = self.first_error or f"send failed: {exc!r}"
            self._all_done.set()

    def _send_closed(self) -> None:
        # Greedy slot draining: block for one free pipeline slot, then
        # scoop up every other free slot and write those requests as
        # one syscall — the client-side mirror of the server's
        # micro-batched responses, and what keeps a single-host bench
        # measuring the server instead of client sendall overhead.
        requests = self.requests
        i = 0
        while i < len(requests):
            self._outstanding.acquire()
            if self._dead:  # reader died; it released us to exit
                return
            group = [requests[i]]
            i += 1
            while i < len(requests) and self._outstanding.acquire(blocking=False):
                group.append(requests[i])
                i += 1
            now = time.perf_counter()
            if self.first_send is None:
                self.first_send = now
            for request_id, _frame, _n in group:
                self._sent_at[request_id] = now
            if len(group) == 1:
                self._sock.sendall(group[0][1])
            else:
                self._sock.sendall(b"".join(frame for _rid, frame, _n in group))

    def _send_open(self) -> None:
        # Fire on the schedule, completions ignored.
        for i, (request_id, frame, _n) in enumerate(self.requests):
            delay = self._epoch + self.send_times[i] - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            now = time.perf_counter()
            if self.first_send is None:
                self.first_send = now
            self._sent_at[request_id] = now
            self._sock.sendall(frame)

    # -- reader --------------------------------------------------------
    def _read_loop(self) -> None:
        reader = proto.FrameReader(self._sock)
        want = len(self.requests)
        try:
            while self._received < want:
                frame = reader.read_frame()
                if frame is None:
                    raise ConnectionError("server closed during load run")
                op, request_id, payload = frame
                if (
                    op == proto.OP_ERROR
                    and request_id == proto.CONNECTION_ERROR_ID
                ):
                    raise ConnectionError(
                        f"connection-level server error: "
                        f"{payload.decode('utf-8', 'replace')}"
                    )
                now = time.perf_counter()
                self.last_recv = now
                sent = self._sent_at.pop(request_id, None)
                if sent is not None:
                    self.latencies.append(now - sent)
                    self.stamps.append(now)
                if op == proto.OP_ANSWERS:
                    self.answers[request_id] = proto.decode_answers(payload)
                else:
                    self.errors += 1
                    if not self.first_error:
                        self.first_error = payload.decode("utf-8", "replace")
                self._received += 1
                if self.mode == "closed":
                    self._outstanding.release()
        except (OSError, ConnectionError, proto.ProtocolError) as exc:
            self.errors += 1
            self.first_error = self.first_error or repr(exc)
        finally:
            # Unblock a sender parked on the pipeline semaphore (it
            # would otherwise wait out the whole join timeout) and make
            # its next sendall fail fast.
            self._dead = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            for _ in range(self.pipeline):
                self._outstanding.release()
            self._all_done.set()


def run_load(
    host: str,
    port: int,
    pairs: Sequence[Pair],
    *,
    mode: str = "closed",
    connections: int = 4,
    pipeline: int = 32,
    pairs_per_request: int = 1,
    rate: Optional[float] = None,
    timeout: float = 120.0,
    keep_samples: bool = False,
) -> LoadReport:
    """Drive a server with a workload; returns throughput + latency.

    Parameters
    ----------
    pairs:
        The workload, answered in order in ``report.answers``.
    mode:
        ``"closed"`` — each connection keeps ``pipeline`` requests in
        flight and sends the next as one completes (capacity probe).
        ``"open"`` — requests fire on a fixed schedule derived from
        ``rate`` (required, in requests/second across all
        connections), whether or not earlier ones finished (latency
        under load, queueing included).
    pairs_per_request:
        How many pairs each request frame carries.  1 (default) is the
        interactive shape that exercises server-side micro-batching;
        larger values emulate clients that batch for themselves.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if mode == "open" and (rate is None or rate <= 0):
        raise ValueError("open-loop mode needs rate=<requests/second>")
    if not pairs:
        raise ValueError("empty workload")
    connections = max(1, min(connections, len(pairs)))

    # Pre-encode every frame so the timed region measures the server,
    # not the client's struct packing.
    requests: List[Tuple[int, bytes, int]] = []
    for request_id, start in enumerate(range(0, len(pairs), pairs_per_request)):
        chunk = list(pairs[start:start + pairs_per_request])
        frame = proto.pack_frame(
            proto.OP_QUERY, request_id, proto.encode_pairs(chunk)
        )
        requests.append((request_id, frame, len(chunk)))

    per_conn: List[List[Tuple[int, bytes, int]]] = [[] for _ in range(connections)]
    for i, req in enumerate(requests):
        per_conn[i % connections].append(req)

    conns: List[_LoadConnection] = []
    for reqs in per_conn:
        # Open loop: schedule by *global* request id so arrivals across
        # connections interleave uniformly at `rate` — per-connection
        # i*interval offsets would fire synchronized bursts instead.
        send_times = (
            [request_id / rate for request_id, _f, _n in reqs]
            if mode == "open" else None
        )
        conns.append(
            _LoadConnection(host, port, reqs, mode, pipeline, send_times, timeout)
        )

    epoch = time.perf_counter() + 0.005  # open-loop schedule t0
    for conn in conns:
        conn.start(epoch)
    for conn in conns:
        conn.join(timeout)

    latencies: List[float] = []
    samples: List[Tuple[float, float]] = []
    answers_by_id: Dict[int, List[bool]] = {}
    errors = 0
    first_error = ""
    first_send = None
    last_recv = None
    for conn in conns:
        latencies.extend(conn.latencies)
        if keep_samples:
            samples.extend(zip(conn.stamps, conn.latencies))
        answers_by_id.update(conn.answers)
        errors += conn.errors
        first_error = first_error or conn.first_error
        if conn.first_send is not None:
            first_send = (
                conn.first_send if first_send is None
                else min(first_send, conn.first_send)
            )
        if conn.last_recv is not None:
            last_recv = (
                conn.last_recv if last_recv is None
                else max(last_recv, conn.last_recv)
            )
    # Wall clock spans the first byte sent to the last answer received —
    # immune to thread start-up stagger on tiny runs.
    wall = (last_recv - first_send) if first_send and last_recv else 0.0

    answers: List[bool] = []
    for request_id, _frame, n in requests:
        answers.extend(answers_by_id.get(request_id, [False] * n))

    pct = percentiles(latencies)
    return LoadReport(
        mode=mode,
        connections=connections,
        pipeline=pipeline,
        pairs_per_request=pairs_per_request,
        total_pairs=len(pairs),
        total_requests=len(requests),
        wall_s=wall,
        qps=len(pairs) / wall if wall > 0 else 0.0,
        latency_ms={k: v * 1000.0 for k, v in pct.items()},
        errors=errors,
        first_error=first_error,
        answers=answers,
        samples=sorted(samples) if keep_samples else [],
    )
