"""Wire protocol for the reachability service: binary frames + HTTP.

The primary protocol is length-prefixed binary — the cheapest thing a
Python front end can parse per request, and self-delimiting so one
``recv`` can carry many pipelined frames:

========  =======  ==================================================
field     size     meaning
========  =======  ==================================================
length    u32 LE   payload byte count (excludes this 13-byte header)
opcode    u8       one of the ``OP_*`` constants below
request   u64 LE   client-chosen correlation id, echoed verbatim
payload   length   opcode-specific body
========  =======  ==================================================

Payloads:

* ``OP_QUERY``    — ``u32 count`` then ``count`` × (``u32 u``,
  ``u32 v``) little-endian vertex pairs.
* ``OP_ANSWERS``  — ``u32 count`` then ``ceil(count / 8)`` bytes of
  LSB-first answer bits (bit *i* = answer to pair *i*).
* ``OP_STATS`` / ``OP_STATS_REPLY`` — empty request; UTF-8 JSON reply.
* ``OP_PING`` / ``OP_PONG`` — empty; liveness and RTT probes.
* ``OP_SHUTDOWN`` — empty; the server acks with ``OP_PONG`` and stops
  (used by tests, CI, and the CLI for clean remote shutdown).
* ``OP_ERROR``    — UTF-8 message; sent instead of the normal reply.
* ``OP_UPDATE`` / ``OP_UPDATE_REPLY`` — edge churn for a live server:
  the request payload is the ``OP_QUERY`` pair encoding (each pair an
  edge ``u -> v``), optionally followed by a **removal bitmap** of
  ``ceil(count / 8)`` LSB-first bytes (bit *i* set = edge *i* is a
  removal, clear = insertion).  A payload of exactly
  ``4 + count * 8`` bytes is an insert-only stream — the pre-removal
  wire format, still emitted for insert-only batches, so old servers
  and new clients interoperate until a delete is actually sent.  The
  reply is a UTF-8 JSON summary (``epoch``, ``changed``,
  ``swap_s``…).  Servers without a live index answer ``OP_ERROR``.
* ``OP_UPDATE_SEQ`` — the idempotent update: the payload prefixes the
  ops encoding with a client id (``u16`` length + UTF-8 bytes) and a
  client-assigned ``u64`` sequence number, echoed back in the
  ``OP_UPDATE_REPLY`` JSON (``client``, ``seq``, ``deduped``).  A
  server that already applied this ``(client, seq)`` replies with the
  original summary and ``deduped: true`` instead of applying twice —
  which is what makes re-sending an unacked update after a reconnect
  safe (plain ``OP_UPDATE`` must never be retried).
* ``OP_EPOCH`` / ``OP_EPOCH_REPLY`` — empty request; the reply payload
  is one little-endian ``u64``: the artifact epoch currently serving,
  or 0 for a static (non-versioned) server.
* ``OP_OVERLOADED`` — UTF-8 message; sent instead of ``OP_ANSWERS``
  when the server (or the replica router) sheds the request rather
  than queueing it unboundedly.  Clients see
  :class:`OverloadedError`; a router treats it as "try another
  replica", never as a replica fault.
* ``OP_SHIP`` / ``OP_SHIP_REPLY`` — the replication channel: the
  request payload is ``u64 epoch`` followed by the raw artifact bytes
  of that epoch's file; the reply is UTF-8 JSON
  (``{"applied": bool, "epoch": int, "reason": str}``).  Replicas
  apply shipped epochs through
  :meth:`repro.live.VersionedArtifactStore.publish_snapshot` with the
  explicit epoch number, so replica epochs mirror the primary's and
  stay monotone.  Servers without a ship handler answer ``OP_ERROR``.
* ``OP_QUERY_TRACED`` — ``OP_QUERY`` with observability: the payload
  prefixes the pair encoding with a client-allocated non-zero ``u64``
  **trace id** (:func:`repro.telemetry.new_trace_id`).  The server
  answers with a normal ``OP_ANSWERS`` frame and records per-stage
  spans (decode → cache → batch wait → dispatch → flush) for the
  request into its slowest-trace tail sampler, keyed by that id.
  Servers running with telemetry disabled still answer — the trace id
  is simply dropped (tracing changes what is *recorded*, never what
  is answered).
* ``OP_TRACE`` / ``OP_TRACE_REPLY`` — the ``OP_STATS`` sibling for
  exemplars: empty request; the reply is UTF-8 JSON — a list of the
  slowest trace documents the server has retained (tail sampling),
  slowest first, each with its ``trace_id``, total ``duration_ns``
  and named spans with start offsets.  This is how a slow
  ``OP_QUERY_TRACED`` request is retrieved after the fact.

Responses may arrive out of submission order (micro-batching reorders
freely); the request id is the only correlation contract.

The **JSON/HTTP fallback** (:func:`make_http_handler`) serves the same
service to stdlib-only or shell clients: ``POST /query`` with
``{"pairs": [[u, v], ...]}`` returns ``{"answers": [...]}``;
``GET /stats`` returns the service stats document (v2: includes a
``telemetry`` section with mergeable histogram snapshots);
``GET /metrics`` returns the same telemetry in Prometheus text
exposition format (v0.0.4) for scrapers.  It exists for debuggability
and scraping, not throughput — the binary protocol is the fast path.
"""

from __future__ import annotations

import json
import struct
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "OP_QUERY",
    "OP_ANSWERS",
    "OP_STATS",
    "OP_STATS_REPLY",
    "OP_PING",
    "OP_PONG",
    "OP_SHUTDOWN",
    "OP_ERROR",
    "OP_UPDATE",
    "OP_UPDATE_REPLY",
    "OP_UPDATE_SEQ",
    "OP_EPOCH",
    "OP_EPOCH_REPLY",
    "OP_OVERLOADED",
    "OP_SHIP",
    "OP_SHIP_REPLY",
    "OP_TRACE",
    "OP_TRACE_REPLY",
    "OP_QUERY_TRACED",
    "HEADER",
    "MAX_PAYLOAD",
    "CONNECTION_ERROR_ID",
    "pack_frame",
    "unpack_header",
    "encode_pairs",
    "decode_pairs",
    "encode_ops",
    "decode_ops",
    "encode_answers",
    "decode_answers",
    "encode_epoch",
    "decode_epoch",
    "encode_ship",
    "decode_ship",
    "encode_update_seq",
    "decode_update_seq",
    "encode_traced_query",
    "decode_traced_query",
    "FrameReader",
    "ProtocolError",
    "OverloadedError",
    "make_http_handler",
]

OP_QUERY = 1
OP_ANSWERS = 2
OP_STATS = 3
OP_STATS_REPLY = 4
OP_PING = 5
OP_PONG = 6
OP_SHUTDOWN = 7
OP_ERROR = 8
OP_UPDATE = 9
OP_UPDATE_REPLY = 10
OP_EPOCH = 11
OP_EPOCH_REPLY = 12
OP_OVERLOADED = 13
OP_SHIP = 14
OP_SHIP_REPLY = 15
OP_UPDATE_SEQ = 16
OP_TRACE = 17
OP_TRACE_REPLY = 18
OP_QUERY_TRACED = 19

_OPS = frozenset(
    (OP_QUERY, OP_ANSWERS, OP_STATS, OP_STATS_REPLY, OP_PING, OP_PONG,
     OP_SHUTDOWN, OP_ERROR, OP_UPDATE, OP_UPDATE_REPLY, OP_EPOCH,
     OP_EPOCH_REPLY, OP_OVERLOADED, OP_SHIP, OP_SHIP_REPLY, OP_UPDATE_SEQ,
     OP_TRACE, OP_TRACE_REPLY, OP_QUERY_TRACED)
)

#: Frame header: payload length, opcode, request id.
HEADER = struct.Struct("<IBQ")

#: Hard per-frame payload cap — large enough for a 4M-pair batch,
#: small enough that a garbage length prefix fails fast instead of
#: allocating gigabytes.
MAX_PAYLOAD = 64 * 1024 * 1024

#: Request id reserved for connection-level ``OP_ERROR`` frames (a
#: framing error has no request to blame; clients number requests from
#: 0, so 0 would mis-attribute the error to a real in-flight request).
CONNECTION_ERROR_ID = (1 << 64) - 1

_COUNT = struct.Struct("<I")
_PAIR = struct.Struct("<II")


class ProtocolError(ValueError):
    """A malformed frame or payload (bad opcode, length, or body)."""


class OverloadedError(RuntimeError):
    """The server shed the request instead of queueing it unboundedly.

    Raised client-side on an ``OP_OVERLOADED`` reply, and raised (or
    passed to completion callbacks) server-side by admission control.
    A :class:`ReachServer` answering a query whose error is an
    ``OverloadedError`` sends ``OP_OVERLOADED`` rather than
    ``OP_ERROR`` — the two must stay distinguishable, because overload
    means "back off / try elsewhere" while an error means "this request
    can never succeed here".
    """


def pack_frame(op: int, request_id: int, payload: bytes = b"") -> bytes:
    """One wire frame: header + payload as a single bytes object."""
    if op not in _OPS:
        raise ProtocolError(f"unknown opcode {op}")
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds cap")
    return HEADER.pack(len(payload), op, request_id) + payload


def unpack_header(buf: bytes, offset: int = 0) -> Tuple[int, int, int]:
    """``(payload_len, opcode, request_id)`` from a header at ``offset``."""
    length, op, request_id = HEADER.unpack_from(buf, offset)
    if op not in _OPS:
        raise ProtocolError(f"unknown opcode {op}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"frame announces {length} bytes, cap is {MAX_PAYLOAD}")
    return length, op, request_id


def encode_pairs(pairs: Sequence[Tuple[int, int]]) -> bytes:
    """``OP_QUERY`` payload for a pair workload (u32 vertex ids)."""
    out = bytearray(_COUNT.pack(len(pairs)))
    pack = _PAIR.pack
    try:
        for u, v in pairs:
            out += pack(u, v)
    except struct.error as exc:
        raise ProtocolError(f"vertex id out of u32 range: {exc}") from None
    return bytes(out)


def decode_pairs(payload: bytes) -> List[Tuple[int, int]]:
    """Parse an ``OP_QUERY`` payload back into ``(u, v)`` tuples."""
    if len(payload) < _COUNT.size:
        raise ProtocolError("query payload shorter than its count field")
    (count,) = _COUNT.unpack_from(payload, 0)
    body = memoryview(payload)[_COUNT.size:]
    if len(body) != count * _PAIR.size:
        raise ProtocolError(
            f"query payload announces {count} pairs but carries {len(body)} bytes"
        )
    return list(_PAIR.iter_unpack(body))


def encode_ops(ops: Sequence[Tuple[str, int, int]]) -> bytes:
    """``OP_UPDATE`` payload for a mixed ``('+'|'-', u, v)`` op stream.

    Insert-only streams use the bare pair encoding (identical bytes to
    the pre-removal protocol); any removal appends the LSB-first
    removal bitmap.  Accepts plain ``(u, v)`` pairs too (inserts).
    """
    kinds: List[bool] = []
    pairs: List[Tuple[int, int]] = []
    for item in ops:
        fields = tuple(item)
        if len(fields) == 2:
            kinds.append(False)
            pairs.append((fields[0], fields[1]))
        else:
            op, u, v = fields
            if op == "+":
                kinds.append(False)
            elif op == "-":
                kinds.append(True)
            else:
                raise ProtocolError(f"unknown update op {op!r}")
            pairs.append((u, v))
    body = encode_pairs(pairs)
    if not any(kinds):
        return body
    bitmap = bytearray((len(kinds) + 7) // 8)
    for i, is_removal in enumerate(kinds):
        if is_removal:
            bitmap[i >> 3] |= 1 << (i & 7)
    return body + bytes(bitmap)


def decode_ops(payload: bytes) -> List[Tuple[str, int, int]]:
    """Parse an ``OP_UPDATE`` payload into ``('+'|'-', u, v)`` triples.

    A payload without the trailing removal bitmap (the pre-removal
    format) is an insert-only stream.
    """
    if len(payload) < _COUNT.size:
        raise ProtocolError("update payload shorter than its count field")
    (count,) = _COUNT.unpack_from(payload, 0)
    body = memoryview(payload)[_COUNT.size:]
    pairs_len = count * _PAIR.size
    bitmap_len = (count + 7) // 8
    if len(body) == pairs_len:
        bitmap = None
    elif len(body) == pairs_len + bitmap_len:
        bitmap = body[pairs_len:]
        body = body[:pairs_len]
    else:
        raise ProtocolError(
            f"update payload announces {count} ops but carries "
            f"{len(body)} bytes (expected {pairs_len} or "
            f"{pairs_len + bitmap_len})"
        )
    ops: List[Tuple[str, int, int]] = []
    for i, (u, v) in enumerate(_PAIR.iter_unpack(body)):
        removal = bitmap is not None and bool(bitmap[i >> 3] & (1 << (i & 7)))
        ops.append(("-" if removal else "+", u, v))
    return ops


def encode_answers(answers: Sequence[bool]) -> bytes:
    """``OP_ANSWERS`` payload: count + LSB-first packed answer bits."""
    count = len(answers)
    bits = bytearray((count + 7) // 8)
    for i, a in enumerate(answers):
        if a:
            bits[i >> 3] |= 1 << (i & 7)
    return _COUNT.pack(count) + bytes(bits)


def decode_answers(payload: bytes) -> List[bool]:
    """Parse an ``OP_ANSWERS`` payload back into a bool list."""
    if len(payload) < _COUNT.size:
        raise ProtocolError("answers payload shorter than its count field")
    (count,) = _COUNT.unpack_from(payload, 0)
    bits = memoryview(payload)[_COUNT.size:]
    if len(bits) != (count + 7) // 8:
        raise ProtocolError(
            f"answers payload announces {count} answers but carries "
            f"{len(bits)} bit bytes"
        )
    return [bool(bits[i >> 3] & (1 << (i & 7))) for i in range(count)]


_EPOCH = struct.Struct("<Q")


def encode_epoch(epoch: Optional[int]) -> bytes:
    """``OP_EPOCH_REPLY`` payload: the epoch as u64 (0 = static server)."""
    return _EPOCH.pack(0 if epoch is None else int(epoch))


def decode_epoch(payload: bytes) -> int:
    """Parse an ``OP_EPOCH_REPLY`` payload (0 means static serving)."""
    if len(payload) != _EPOCH.size:
        raise ProtocolError(
            f"epoch payload is {len(payload)} bytes, expected {_EPOCH.size}"
        )
    return _EPOCH.unpack(payload)[0]


def encode_ship(epoch: int, data: bytes) -> bytes:
    """``OP_SHIP`` payload: the epoch number + the artifact file bytes."""
    if epoch < 1:
        raise ProtocolError(f"shipped epochs start at 1, got {epoch}")
    if _EPOCH.size + len(data) > MAX_PAYLOAD:
        raise ProtocolError(
            f"artifact of {len(data)} bytes exceeds the frame payload cap"
        )
    return _EPOCH.pack(epoch) + data


def decode_ship(payload: bytes) -> Tuple[int, bytes]:
    """Parse an ``OP_SHIP`` payload into ``(epoch, artifact_bytes)``."""
    if len(payload) < _EPOCH.size:
        raise ProtocolError("ship payload shorter than its epoch field")
    epoch = _EPOCH.unpack_from(payload, 0)[0]
    if epoch < 1:
        raise ProtocolError(f"shipped epochs start at 1, got {epoch}")
    return epoch, bytes(memoryview(payload)[_EPOCH.size:])


_CLIENT_LEN = struct.Struct("<H")


def encode_update_seq(
    client: str, seq: int, ops: Sequence
) -> bytes:
    """``OP_UPDATE_SEQ`` payload: client id + sequence + ops stream.

    ``ops`` takes anything :func:`encode_ops` accepts — plain ``(u, v)``
    pairs and/or ``('+'|'-', u, v)`` triples.
    """
    cb = client.encode("utf-8")
    if not cb:
        raise ProtocolError("sequenced updates need a non-empty client id")
    if len(cb) > 0xFFFF:
        raise ProtocolError(f"client id of {len(cb)} bytes exceeds u16 cap")
    if seq < 0:
        raise ProtocolError(f"sequence numbers are unsigned, got {seq}")
    return (
        _CLIENT_LEN.pack(len(cb)) + cb + _EPOCH.pack(seq) + encode_ops(ops)
    )


def decode_update_seq(payload: bytes) -> Tuple[str, int, List[Tuple[str, int, int]]]:
    """Parse an ``OP_UPDATE_SEQ`` payload into ``(client, seq, ops)``.

    ``ops`` are canonical ``('+'|'-', u, v)`` triples (insert-only
    payloads in the pre-removal format decode to all-``'+'``).
    """
    view = memoryview(payload)
    if len(view) < _CLIENT_LEN.size:
        raise ProtocolError("sequenced update shorter than its client length")
    (client_len,) = _CLIENT_LEN.unpack_from(view, 0)
    off = _CLIENT_LEN.size
    if client_len == 0:
        raise ProtocolError("sequenced updates need a non-empty client id")
    if len(view) < off + client_len + _EPOCH.size:
        raise ProtocolError("sequenced update truncated before its sequence")
    client = bytes(view[off:off + client_len]).decode("utf-8")
    off += client_len
    (seq,) = _EPOCH.unpack_from(view, off)
    off += _EPOCH.size
    return client, seq, decode_ops(bytes(view[off:]))


_TRACE_ID = struct.Struct("<Q")


def encode_traced_query(trace_id: int, pairs: Sequence[Tuple[int, int]]) -> bytes:
    """``OP_QUERY_TRACED`` payload: non-zero u64 trace id + pair stream."""
    if not (0 < trace_id < (1 << 64)):
        raise ProtocolError(f"trace ids are non-zero u64, got {trace_id}")
    return _TRACE_ID.pack(trace_id) + encode_pairs(pairs)


def decode_traced_query(payload: bytes) -> Tuple[int, List[Tuple[int, int]]]:
    """Parse an ``OP_QUERY_TRACED`` payload into ``(trace_id, pairs)``."""
    if len(payload) < _TRACE_ID.size:
        raise ProtocolError("traced query shorter than its trace id")
    (trace_id,) = _TRACE_ID.unpack_from(payload, 0)
    if trace_id == 0:
        raise ProtocolError("trace ids are non-zero (0 means untraced)")
    return trace_id, decode_pairs(bytes(memoryview(payload)[_TRACE_ID.size:]))


class FrameReader:
    """Buffered frame parser over a socket (or any ``recv``-alike).

    One ``recv`` may deliver several pipelined frames or a fraction of
    one; the reader buffers across calls and yields complete frames.
    ``read_frame`` returns ``None`` on clean EOF and raises
    :class:`ProtocolError` on garbage.
    """

    def __init__(self, sock, recv_size: int = 1 << 16) -> None:
        self._sock = sock
        self._recv_size = recv_size
        self._buf = bytearray()

    def read_frame(self) -> Optional[Tuple[int, int, bytes]]:
        """The next ``(opcode, request_id, payload)``, or ``None`` at EOF."""
        if not self._fill(HEADER.size):
            if self._buf:
                raise ProtocolError("connection closed mid-header")
            return None
        length, op, request_id = unpack_header(self._buf)
        if not self._fill(HEADER.size + length):
            raise ProtocolError("connection closed mid-frame")
        payload = bytes(memoryview(self._buf)[HEADER.size:HEADER.size + length])
        del self._buf[:HEADER.size + length]
        return op, request_id, payload

    def _fill(self, want: int) -> bool:
        """Buffer until ``want`` bytes are available; False on EOF first."""
        while len(self._buf) < want:
            chunk = self._sock.recv(self._recv_size)
            if not chunk:
                return False
            self._buf += chunk
        return True

    def pending(self) -> int:
        """Buffered byte count (diagnostics only)."""
        return len(self._buf)


# ----------------------------------------------------------------------
# JSON/HTTP fallback
# ----------------------------------------------------------------------
def make_http_handler(service, allow_shutdown: bool = True):
    """An ``http.server`` handler class bound to a query service.

    Routes: ``POST /query`` (JSON pairs in, JSON answers out),
    ``GET /stats``, ``GET /metrics`` (Prometheus text exposition of
    the service's telemetry registry plus every numeric stats leaf),
    ``GET /traces`` (the tail-sampled slow-trace exemplars),
    ``GET /healthz``, and — when ``allow_shutdown`` —
    ``POST /shutdown``.  The handler calls the *blocking* service API,
    so each HTTP connection rides the same cache → batcher → oracle
    path as a binary client.
    """
    from http.server import BaseHTTPRequestHandler

    class ReachHTTPHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-reach/2"

        def _send_json(self, doc: dict, status: int = 200) -> None:
            body = json.dumps(doc).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_metrics(self) -> None:
            from ..telemetry import render_prometheus

            telemetry = getattr(service, "telemetry", None)
            registry = None if telemetry is None else telemetry.registry
            body = render_prometheus(registry, service.stats()).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
            if self.path == "/stats":
                self._send_json(service.stats())
            elif self.path == "/metrics":
                self._send_metrics()
            elif self.path == "/traces":
                telemetry = getattr(service, "telemetry", None)
                traces = (
                    [] if telemetry is None else telemetry.sampler.snapshot()
                )
                self._send_json({"traces": traces})
            elif self.path == "/healthz":
                self._send_json({"ok": True})
            else:
                self._send_json({"error": f"unknown path {self.path}"}, 404)

        def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
            if self.path == "/shutdown" and allow_shutdown:
                self._send_json({"ok": True, "shutting_down": True})
                shutdown = getattr(self.server, "request_shutdown", None)
                if shutdown is not None:
                    shutdown()
                return
            if self.path != "/query":
                self._send_json({"error": f"unknown path {self.path}"}, 404)
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                doc = json.loads(self.rfile.read(length) or b"{}")
                pairs = [(int(u), int(v)) for u, v in doc["pairs"]]
            except (KeyError, TypeError, ValueError) as exc:
                self._send_json({"error": f"bad request: {exc!r}"}, 400)
                return
            try:
                answers = service.query_pairs(pairs)
            except Exception as exc:  # surface, don't kill the thread
                self._send_json({"error": repr(exc)}, 500)
                return
            self._send_json({"count": len(answers), "answers": answers})

        def log_message(self, fmt, *args) -> None:  # quiet by default
            pass

    return ReachHTTPHandler
