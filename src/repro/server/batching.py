"""Micro-batching front end: coalesce concurrent requests into batches.

The PR 2 batch engine is fastest when queries arrive in large ndarray
batches, and a worker-pool dispatch pays one IPC round trip per task —
both favour *fewer, bigger* units of work.  Individual clients send
small requests, so the batcher buys throughput with a tiny latency
deposit: the first request of a batch waits up to ``window_s``
(default 1 ms) for company, then everything that accumulated is
dispatched as one batch.

The dispatch callback receives a :class:`Batch` and may complete it
asynchronously (the worker-pool path resolves from its result-reader
thread), so several batches can be in flight across workers at once.
A batch that coalesced nothing — one request, one pair — is flagged
``singleton`` so the executor can answer it with a scalar ``query``
instead of paying array-batch setup: micro-batching under low load
degrades to exactly the unbatched path plus the window wait.

``window_s=0`` disables coalescing entirely: every request is
dispatched synchronously from its submitting thread.  That is the
"batching off" axis of ``benchmarks/bench_server.py``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["QueryRequest", "Batch", "MicroBatcher"]

Pair = Tuple[int, int]


class QueryRequest:
    """One client request: its pairs and the completion callback."""

    __slots__ = ("pairs", "callback", "answers", "error", "epoch", "trace",
                 "t_submit_ns")

    def __init__(self, pairs: Sequence[Pair], callback, trace=None) -> None:
        self.pairs = pairs
        self.callback = callback
        self.answers: Optional[List[bool]] = None
        self.error: Optional[BaseException] = None
        #: Artifact epoch that answered this request (live serving only;
        #: set by :meth:`Batch.resolve`, None for static oracles).
        self.epoch: Optional[int] = None
        #: Optional :class:`repro.telemetry.TraceContext` riding the
        #: request; stages append spans as the request flows through.
        self.trace = trace
        #: ``perf_counter_ns`` at submission (0 = telemetry disabled or
        #: not sampled); the batch-wait span/histogram measures from here.
        self.t_submit_ns = 0

    def _complete(self) -> None:
        if self.callback is not None:
            self.callback(self)


class Batch:
    """A dispatch unit: one or more requests, pairs concatenated."""

    __slots__ = ("requests", "pairs", "t_created_ns")

    def __init__(self, requests: List[QueryRequest]) -> None:
        self.requests = requests
        if len(requests) == 1:
            self.pairs = list(requests[0].pairs)
        else:
            pairs: List[Pair] = []
            for req in requests:
                pairs.extend(req.pairs)
            self.pairs = pairs
        # Batches are built at dispatch time (window drain, window=0
        # pass-through, or a re-batch), so creation marks the start of
        # the "dispatch" span for every traced member request.
        self.t_created_ns = time.perf_counter_ns()

    @property
    def singleton(self) -> bool:
        """True when nothing coalesced: one request carrying one pair."""
        return len(self.requests) == 1 and len(self.pairs) == 1

    def resolve(self, answers: Sequence[bool], epoch: Optional[int] = None) -> None:
        """Scatter batch answers back to the member requests.

        ``epoch`` records which artifact version produced the answers
        (live serving): the whole batch was answered under one epoch
        lease, so every member request gets the same value — a batch is
        never a mix of versions.
        """
        if len(answers) != len(self.pairs):
            self.fail(
                RuntimeError(
                    f"executor returned {len(answers)} answers for "
                    f"{len(self.pairs)} pairs"
                )
            )
            return
        offset = 0
        now = 0
        for req in self.requests:
            take = len(req.pairs)
            req.answers = list(answers[offset:offset + take])
            req.epoch = epoch
            offset += take
            if req.trace is not None:
                if not now:
                    now = time.perf_counter_ns()
                req.trace.add_span("dispatch", self.t_created_ns, now)
            req._complete()
        self._flush_writers()

    def fail(self, error: BaseException) -> None:
        """Propagate one executor failure to every member request."""
        now = 0
        for req in self.requests:
            req.error = error
            if req.trace is not None:
                if not now:
                    now = time.perf_counter_ns()
                req.trace.add_span("dispatch", self.t_created_ns, now)
            req._complete()
        self._flush_writers()

    def _flush_writers(self) -> None:
        """Flush each distinct buffering callback once, after all scatter.

        A callback may expose ``flush_writer`` (see the TCP server's
        buffered connection writer): completions then only *queue*
        response bytes, and one flush per (batch, connection) writes
        them — one syscall instead of one per request, which is a large
        share of the per-request cost micro-batching amortizes.
        """
        flushes = []
        for req in self.requests:
            flush = getattr(req.callback, "flush_writer", None)
            if flush is not None and flush not in flushes:
                flushes.append(flush)
        for flush in flushes:
            flush()


class MicroBatcher:
    """Coalesce requests arriving within a window into one batch.

    Parameters
    ----------
    dispatch:
        ``dispatch(batch)`` — executes (or enqueues) a :class:`Batch`
        and eventually calls ``batch.resolve(answers)`` or
        ``batch.fail(error)``.  May complete on another thread.
    window_s:
        Coalescing window.  The first request of a batch waits this
        long for companions; 0 disables coalescing (synchronous
        pass-through dispatch).
    max_batch:
        Pair-count ceiling per dispatched batch.  A full window drains
        in several batches; a window whose first requests already
        exceed the cap dispatches without waiting it out.
    adaptive:
        Scale the window with the observed arrival rate.  The batcher
        keeps an EMA of request interarrival gaps (updated at submit
        time, so it works even while the effective window is 0); the
        window a collector round actually waits is::

            window_s * min(1, window_s / (ema_gap * ADAPTIVE_TARGET))

        i.e. at least :data:`ADAPTIVE_TARGET` arrivals per full window
        are needed to justify holding it open at the ceiling, and a
        low-rate stream (interactive clients) degrades smoothly to
        dispatch-on-arrival — the latency deposit shrinks toward 0
        exactly when there is nothing to coalesce.  ``window_s``
        remains the hard ceiling at saturation.
    """

    #: Arrivals per full window at which the adaptive window saturates
    #: to its ``window_s`` ceiling (below it, the wait shrinks
    #: proportionally — one expected companion halves the window, none
    #: collapses it).
    ADAPTIVE_TARGET = 2.0

    #: Smoothing factor for the interarrival-gap EMA (per submission).
    ADAPTIVE_ALPHA = 0.2

    def __init__(
        self,
        dispatch: Callable[[Batch], None],
        window_s: float = 0.001,
        max_batch: int = 65536,
        adaptive: bool = False,
    ) -> None:
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._dispatch = dispatch
        self.window_s = window_s
        self.max_batch = max_batch
        self.adaptive = adaptive and window_s > 0
        # Interarrival EMA state (under _lock).  Seeded at one full
        # window between arrivals (= half the ceiling effectively) so a
        # cold adaptive batcher neither stalls early clients for the
        # whole window nor needs a warm-up to start coalescing.
        self._ema_gap = window_s if window_s > 0 else 0.0
        self._last_arrival: Optional[float] = None
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: List[QueryRequest] = []
        self._pending_pairs = 0
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        # counters (under _lock)
        self._submitted = 0
        self._batches = 0
        self._batched_pairs = 0
        self._coalesced_batches = 0
        self._largest_batch = 0
        # telemetry (optional; see bind_metrics)
        self._wait_hist = None
        self._wait_weight = 1
        self._stamped = False

    def bind_metrics(self, registry, sample_weight: int = 1) -> None:
        """Record batch-wait latency into a telemetry registry.

        Only *traced* requests are stamped at submission — they are
        already the service's uniform 1-in-K sample, so their waits
        observed with ``weight=sample_weight`` (= that K) estimate
        every request's wait without the untraced hot path ever
        touching a clock.  Never binding keeps the batcher
        telemetry-free: the drain skips the observation loop entirely.
        """
        self._wait_weight = max(1, sample_weight)
        self._wait_hist = registry.histogram(
            "repro_batch_wait_seconds",
            "time a request spent waiting for its micro-batch window, "
            "1-in-%d sampled" % self._wait_weight,
        )

    def _observe_batch(self, batch: Batch) -> None:
        """Batch-wait histogram + span for each stamped member request."""
        hist = self._wait_hist
        now = batch.t_created_ns
        for req in batch.requests:
            t = req.t_submit_ns
            if t:
                if req.trace is not None:
                    req.trace.add_span("batch_wait", t, now)
                if hist is not None:
                    hist.observe_ns(now - t, self._wait_weight)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "MicroBatcher":
        """Start the collector thread (no-op when ``window_s == 0``)."""
        if self.window_s > 0 and self._thread is None:
            self._thread = threading.Thread(
                target=self._collect_loop, name="repro-batcher", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop collecting; in-flight pending requests are failed."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            leftovers = self._pending
            self._pending = []
            self._pending_pairs = 0
            self._wakeup.notify_all()
        for req in leftovers:
            req.error = RuntimeError("batcher closed")
            req._complete()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- submission ----------------------------------------------------
    def submit_async(
        self, pairs: Sequence[Pair], callback, trace=None
    ) -> QueryRequest:
        """Queue a request; ``callback(request)`` fires on completion.

        Empty requests complete immediately (no dispatch).  When the
        window is 0 the request is dispatched synchronously from this
        thread as its own batch.  ``trace`` (a telemetry
        :class:`~repro.telemetry.TraceContext`) rides the request and
        collects ``batch_wait`` / ``dispatch`` spans.
        """
        req = QueryRequest(pairs, callback, trace)
        if not pairs:
            req.answers = []
            req._complete()
            return req
        if trace is not None:
            req.t_submit_ns = time.perf_counter_ns()
        if self.window_s == 0:
            with self._lock:
                if self._closed:
                    req.error = RuntimeError("batcher closed")
                    req._complete()
                    return req
                self._submitted += 1
                self._note_batch(1, len(pairs))
            batch = Batch([req])
            if req.t_submit_ns:
                self._observe_batch(batch)
            self._dispatch(batch)
            return req
        with self._lock:
            if self._closed:
                req.error = RuntimeError("batcher closed")
                req._complete()
                return req
            self._submitted += 1
            if self.adaptive:
                now = time.perf_counter()
                if self._last_arrival is not None:
                    gap = now - self._last_arrival
                    alpha = self.ADAPTIVE_ALPHA
                    self._ema_gap += alpha * (gap - self._ema_gap)
                self._last_arrival = now
            self._pending.append(req)
            if req.t_submit_ns:
                self._stamped = True
            self._pending_pairs += len(pairs)
            if len(self._pending) == 1 or self._pending_pairs >= self.max_batch:
                self._wakeup.notify()
        return req

    def submit(self, pairs: Sequence[Pair]) -> List[bool]:
        """Blocking :meth:`submit_async`: wait for and return the answers."""
        done = threading.Event()
        req = self.submit_async(pairs, lambda _req: done.set())
        done.wait()
        if req.error is not None:
            raise req.error
        assert req.answers is not None
        return req.answers

    # -- the adaptive window -------------------------------------------
    def effective_window_s(self) -> float:
        """The window the next collector round will hold open.

        Equal to ``window_s`` for a non-adaptive batcher; with
        ``adaptive=True`` it scales with the arrival rate (see the
        class docstring) — 0 when arrivals are far apart, the full
        ceiling once at least :data:`ADAPTIVE_TARGET` requests are
        expected per window.
        """
        with self._lock:
            return self._effective_window_locked()

    def _effective_window_locked(self) -> float:
        if not self.adaptive:
            return self.window_s
        gap = self._ema_gap
        if gap <= 0:
            return self.window_s
        expected_arrivals = self.window_s / gap
        return self.window_s * min(1.0, expected_arrivals / self.ADAPTIVE_TARGET)

    # -- collector -----------------------------------------------------
    def _collect_loop(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._closed:
                    self._wakeup.wait()
                if self._closed:
                    return
                first_at = time.perf_counter()
                window = self._effective_window_locked()
            # Hold the window open for companions (a full cap ends it
            # early via the submit-side notify), then drain.
            deadline = first_at + window
            with self._lock:
                while not self._closed and self._pending_pairs < self.max_batch:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._wakeup.wait(remaining)
                if self._closed:
                    return
            for batch in self._drain():
                self._dispatch(batch)

    def _drain(self) -> List[Batch]:
        """Cut the pending queue into ``max_batch``-sized batches."""
        with self._lock:
            pending = self._pending
            self._pending = []
            self._pending_pairs = 0
            stamped = self._stamped
            self._stamped = False
        batches: List[Batch] = []
        group: List[QueryRequest] = []
        group_pairs = 0
        for req in pending:
            if group and group_pairs + len(req.pairs) > self.max_batch:
                batches.append(Batch(group))
                group, group_pairs = [], 0
            group.append(req)
            group_pairs += len(req.pairs)
        if group:
            batches.append(Batch(group))
        with self._lock:
            for batch in batches:
                self._note_batch(len(batch.requests), len(batch.pairs))
        if stamped:
            # Only drains that actually hold a stamped (traced) request
            # walk the observation loop — at the default 1-in-K trace
            # rate almost every drain skips it.
            for batch in batches:
                self._observe_batch(batch)
        return batches

    def _note_batch(self, n_requests: int, n_pairs: int) -> None:
        # caller holds _lock
        self._batches += 1
        self._batched_pairs += n_pairs
        if n_requests > 1:
            self._coalesced_batches += 1
        if n_pairs > self._largest_batch:
            self._largest_batch = n_pairs

    # -- stats ---------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            batches = self._batches
            return {
                "window_ms": self.window_s * 1000.0,
                "adaptive": self.adaptive,
                "effective_window_ms": self._effective_window_locked() * 1000.0,
                "max_batch": self.max_batch,
                "requests": self._submitted,
                "batches": batches,
                "batched_pairs": self._batched_pairs,
                "coalesced_batches": self._coalesced_batches,
                "largest_batch": self._largest_batch,
                "mean_batch_pairs": (
                    self._batched_pairs / batches if batches else 0.0
                ),
            }

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(window_ms={self.window_s * 1000.0:g}, "
            f"max_batch={self.max_batch})"
        )
