"""Concurrent reachability query service over compiled artifacts.

The build → compile → serve lifecycle (PR 3) produces mmap-shareable
binary artifacts; this package is the process that actually *serves*
them to concurrent clients:

* :mod:`repro.server.protocol` — the length-prefixed binary wire
  protocol (one ``u32 length | u8 opcode | u64 request_id`` header per
  frame, bit-packed answers) plus a stdlib JSON-over-HTTP fallback for
  curl-style clients.
* :mod:`repro.server.cache` — a sharded LRU result cache with
  hit/miss/negative-answer statistics.
* :mod:`repro.server.batching` — the micro-batching front end:
  requests arriving within a configurable window (default ~1 ms)
  coalesce into one batch for the vectorized engine; a lone request
  falls back to a single scalar query.
* :mod:`repro.server.service` — :class:`QueryService` (cache →
  batcher → oracle) with an optional pool of worker processes that
  each mmap-load the same artifact (one physical copy, per PR 3), and
  :class:`ReachServer`, the TCP front end.
* :mod:`repro.server.client` — :class:`ReachClient` plus the
  open-/closed-loop load generator used by the harness and
  ``benchmarks/bench_server.py``.

Answers are bit-identical to a direct
:class:`~repro.core.compiled.CompiledOracle` on the same artifact —
batching, caching and worker routing change throughput and latency
only, never a single answer bit.

Live serving (:mod:`repro.live`) plugs in underneath: a
:class:`QueryService` built over a versioned artifact store leases one
epoch per batch (hot swaps are batch-atomic), cache keys carry the
epoch, and the wire protocol grows ``OP_UPDATE`` (edge insertions into
a live index) and ``OP_EPOCH`` ops.
"""

from .batching import MicroBatcher
from .cache import ShardedLRUCache
from .client import LoadReport, ReachClient, percentiles, run_load
from .protocol import OverloadedError
from .service import QueryService, ReachServer, WorkerPool, serve_artifact

__all__ = [
    "MicroBatcher",
    "ShardedLRUCache",
    "ReachClient",
    "LoadReport",
    "run_load",
    "percentiles",
    "OverloadedError",
    "QueryService",
    "ReachServer",
    "WorkerPool",
    "serve_artifact",
]
