"""Sharded LRU result cache for reachability answers.

Reachability answers are ideal cache fodder: a query is two ints, an
answer is one bool, and the oracle is immutable for the lifetime of a
served artifact, so entries never go stale.  The cache is sharded —
each shard an ``OrderedDict`` behind its own lock — so concurrent
connection threads rarely contend on the same lock, and one giant
dict's resize pauses are avoided.

Statistics distinguish **negative hits** (cached ``False`` answers)
from positive ones: on the sparse graphs the paper targets, random
workloads are almost entirely negative, so a served deployment's hit
profile is dominated by negatives — worth seeing directly rather than
inferring.

**Epoch keying.**  A live server's oracle is immutable only *per
artifact epoch*: the batch APIs take an optional ``epoch`` that is
folded into every key as ``(epoch, u, v)``.  When the store flips to a
new epoch, entries cached under the old one simply become unreachable —
no global flush, no lock sweep — and age out of the LRU under new
traffic.  ``epoch=None`` (static serving) keeps the bare pair keys.

A ``capacity`` of 0 disables the cache entirely (every lookup is a
pass-through miss that is not counted); the service uses that for
benchmark runs that must measure the raw query path.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = ["ShardedLRUCache"]


class _Shard:
    """One LRU shard: an ordered dict + lock + local counters."""

    __slots__ = ("lock", "entries", "capacity", "hits", "misses",
                 "negative_hits", "evictions")

    def __init__(self, capacity: int) -> None:
        self.lock = threading.Lock()
        self.entries: "OrderedDict[Hashable, bool]" = OrderedDict()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.negative_hits = 0
        self.evictions = 0


class ShardedLRUCache:
    """An LRU map from query pairs to boolean answers, split into shards.

    Parameters
    ----------
    capacity:
        Total entry budget across all shards; 0 disables the cache.
    shards:
        Number of independent LRU shards (rounded up to a power of two
        so shard selection is a mask, not a modulo).
    """

    def __init__(self, capacity: int, shards: int = 8) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        n_shards = 1
        while n_shards < shards:
            n_shards *= 2
        if capacity == 0:
            n_shards = 1
        self._mask = n_shards - 1
        per_shard = (capacity + n_shards - 1) // n_shards
        self._shards = [_Shard(per_shard) for _ in range(n_shards)]
        self.capacity = per_shard * n_shards if capacity else 0
        self._lookup_hist = None
        self._lookup_tick = 0

    #: Only every K-th bound lookup is clocked (observed with weight K)
    #: — lookups are the densest path in the server, and two extra
    #: ``perf_counter_ns`` calls per request would cost more than the
    #: lookups themselves on small batches.
    LOOKUP_SAMPLE_EVERY = 8

    def bind_metrics(self, registry) -> None:
        """Record batch-lookup latency into a telemetry registry.

        Hit/miss/eviction counters stay in the shards (they are already
        cheap and exact); the histogram adds the one thing counters
        cannot show — how long ``get_many`` actually takes as shard
        contention grows.  Unbound caches skip even the sampling tick.
        """
        self._lookup_hist = registry.histogram(
            "repro_cache_lookup_seconds",
            "wall time of one batched cache lookup (get_many), "
            "1-in-%d sampled" % self.LOOKUP_SAMPLE_EVERY,
        )

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def _shard_for(self, key: Hashable) -> _Shard:
        return self._shards[hash(key) & self._mask]

    # -- single-key API ------------------------------------------------
    def get(self, key: Hashable) -> Optional[bool]:
        """The cached answer, or ``None`` on a miss (counted)."""
        if not self.capacity:
            return None
        shard = self._shard_for(key)
        with shard.lock:
            try:
                value = shard.entries[key]
            except KeyError:
                shard.misses += 1
                return None
            shard.entries.move_to_end(key)
            shard.hits += 1
            if not value:
                shard.negative_hits += 1
            return value

    def put(self, key: Hashable, value: bool) -> None:
        """Insert (or refresh) one answer, evicting the LRU entry on overflow."""
        if not self.capacity:
            return
        shard = self._shard_for(key)
        with shard.lock:
            entries = shard.entries
            if key in entries:
                entries[key] = value
                entries.move_to_end(key)
                return
            entries[key] = value
            if len(entries) > shard.capacity:
                entries.popitem(last=False)
                shard.evictions += 1

    # -- batch API (the service's hot path) ----------------------------
    def _group_by_shard(self, keys) -> Dict[int, List[int]]:
        """Positions of ``keys`` grouped by shard index."""
        mask = self._mask
        groups: Dict[int, List[int]] = {}
        for i, key in enumerate(keys):
            groups.setdefault(hash(key) & mask, []).append(i)
        return groups

    @staticmethod
    def _keys_for(
        pairs: Sequence[Tuple[int, int]], epoch: Optional[int]
    ) -> Sequence[Hashable]:
        """Pair keys, prefixed with the artifact epoch when serving live."""
        if epoch is None:
            return pairs
        return [(epoch, u, v) for u, v in pairs]

    def get_many(
        self, pairs: Sequence[Tuple[int, int]], epoch: Optional[int] = None
    ) -> Tuple[List[Optional[bool]], List[int]]:
        """Look up a workload, taking each shard lock once per batch.

        Returns ``(answers, missing)``: ``answers[i]`` is the cached
        bool or ``None``, and ``missing`` lists the indices that need
        the oracle.  ``epoch`` scopes the keys to one artifact version
        (see the module docstring).  With the cache disabled everything
        is missing and nothing is counted.
        """
        if not self.capacity:
            return [None] * len(pairs), list(range(len(pairs)))
        hist = self._lookup_hist
        if hist is not None:
            self._lookup_tick = n = self._lookup_tick + 1  # unlocked: see Telemetry
            if n % self.LOOKUP_SAMPLE_EVERY:
                hist = None
        t0 = time.perf_counter_ns() if hist is not None else 0
        keys = self._keys_for(pairs, epoch)
        answers: List[Optional[bool]] = [None] * len(pairs)
        for shard_idx, positions in self._group_by_shard(keys).items():
            shard = self._shards[shard_idx]
            with shard.lock:
                entries = shard.entries
                for i in positions:
                    try:
                        value = entries[keys[i]]
                    except KeyError:
                        shard.misses += 1
                        continue
                    entries.move_to_end(keys[i])
                    shard.hits += 1
                    if not value:
                        shard.negative_hits += 1
                    answers[i] = value
        missing = [i for i, a in enumerate(answers) if a is None]
        if hist is not None:
            hist.observe_ns(
                time.perf_counter_ns() - t0, self.LOOKUP_SAMPLE_EVERY
            )
        return answers, missing

    def put_many(
        self,
        pairs: Sequence[Tuple[int, int]],
        answers: Sequence[bool],
        epoch: Optional[int] = None,
    ) -> None:
        """Insert a batch of fresh oracle answers (one lock per shard).

        ``epoch`` must be the epoch of the oracle that *produced* the
        answers — the live service passes the resolving batch's lease
        epoch, not the epoch current at submission time.
        """
        if not self.capacity:
            return
        keys = self._keys_for(pairs, epoch)
        for shard_idx, positions in self._group_by_shard(keys).items():
            shard = self._shards[shard_idx]
            with shard.lock:
                entries = shard.entries
                for i in positions:
                    key = keys[i]
                    if key in entries:
                        entries[key] = bool(answers[i])
                        entries.move_to_end(key)
                        continue
                    entries[key] = bool(answers[i])
                    if len(entries) > shard.capacity:
                        entries.popitem(last=False)
                        shard.evictions += 1

    # -- management ----------------------------------------------------
    def clear(self) -> None:
        """Drop every entry (statistics survive)."""
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()

    def __len__(self) -> int:
        return sum(len(s.entries) for s in self._shards)

    def stats(self) -> Dict[str, object]:
        """Aggregated counters plus the derived hit rate."""
        hits = misses = negative = evictions = 0
        for shard in self._shards:
            with shard.lock:
                hits += shard.hits
                misses += shard.misses
                negative += shard.negative_hits
                evictions += shard.evictions
        lookups = hits + misses
        return {
            "capacity": self.capacity,
            "shards": len(self._shards),
            "entries": len(self),
            "hits": hits,
            "misses": misses,
            "negative_hits": negative,
            "positive_hits": hits - negative,
            "evictions": evictions,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"ShardedLRUCache(capacity={self.capacity}, "
            f"shards={len(self._shards)}, entries={len(self)})"
        )
