"""Reachability-set size estimation (Cohen's k-min sketches).

The construction-cost story of the paper revolves around |TC|: 2HOP's
complexity is O(n³·|TC|), K-Reach materialises a cover-restricted TC,
and the DNF budgets in :mod:`repro.bench.experiments` are all stated in
closure pairs.  Exactly computing |TC| costs as much as materialising
it — the very thing we are trying to avoid — so this module provides
Edith Cohen's classic size-estimation framework (JCSS 1997): assign
each vertex a uniform random label, propagate the ``k`` smallest labels
of each reachable set bottom-up through the DAG, and read the set size
off the k-th minimum:  ``|S| ≈ (k - 1) / kth_min(S)``.

One reverse-topological sweep, O(k) per edge, gives every vertex's
estimate simultaneously — this is how a production deployment would
decide *before* building whether a TC-based method is affordable,
replacing the paper's "ran out of memory after hours" discovery
process.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..graph.digraph import DiGraph
from ..graph.topo import topological_order

__all__ = ["estimate_closure_sizes", "estimate_tc_pairs"]


def _merge_kmin(target: List[float], source: List[float], k: int) -> List[float]:
    """k smallest of the union of two ascending lists."""
    out: List[float] = []
    i = j = 0
    ni, nj = len(target), len(source)
    last = None
    while len(out) < k and (i < ni or j < nj):
        if j >= nj or (i < ni and target[i] <= source[j]):
            val = target[i]
            i += 1
        else:
            val = source[j]
            j += 1
        if val != last:  # labels are almost surely distinct; dedup anyway
            out.append(val)
            last = val
    return out


def estimate_closure_sizes(
    graph: DiGraph, k: int = 32, seed: int = 0
) -> List[float]:
    """Estimate ``|TC(v)|`` (reflexive) for every vertex.

    Parameters
    ----------
    graph:
        A DAG.
    k:
        Sketch size; relative error is roughly ``1/sqrt(k-2)``.
    seed:
        Seed for the random vertex labels.

    Returns
    -------
    list[float]
        Estimated closure cardinalities.  Exact whenever the true
        reachable set has at most ``k`` members (the sketch then simply
        contains the whole set).
    """
    order = topological_order(graph)
    if order is None:
        raise ValueError("closure estimation requires a DAG; condense first")
    rng = random.Random(seed)
    labels = [rng.random() for _ in range(graph.n)]
    sketches: List[List[float]] = [[] for _ in range(graph.n)]
    estimates = [0.0] * graph.n
    for u in reversed(order):
        sketch = [labels[u]]
        for w in graph.out(u):
            sketch = _merge_kmin(sketch, sketches[w], k)
        sketches[u] = sketch
        if len(sketch) < k:
            estimates[u] = float(len(sketch))  # exact: we saw the whole set
        else:
            estimates[u] = (k - 1) / sketch[-1]
    return estimates


def estimate_tc_pairs(
    graph: DiGraph, k: int = 32, seed: int = 0
) -> Tuple[float, Optional[float]]:
    """Estimate the total number of strict reachable pairs in the DAG.

    Returns ``(estimate, rel_error_hint)`` where the hint is the
    ``1/sqrt(k-2)`` asymptotic per-vertex relative error (``None`` when
    ``k <= 2``).  Useful as a pre-flight check for TC-materialising
    methods: compare against the ``max_tc_pairs`` budgets in
    :mod:`repro.bench.experiments`.
    """
    estimates = estimate_closure_sizes(graph, k=k, seed=seed)
    total = sum(estimates) - graph.n  # drop reflexive pairs
    hint = (k - 2) ** -0.5 if k > 2 else None
    return max(0.0, total), hint
