"""Graph-free compiled serve artifacts — the "serve" of build→compile→serve.

Construction (the expensive step the paper is about) and serving are
different lifecycles: a build holds the full :class:`DiGraph` plus
whatever scaffolding the algorithm needed, while a serving process only
needs the *query-side* state.  :meth:`ReachabilityIndex.compile` maps
every built index onto one of the :class:`CompiledOracle` classes in
this module: query-only objects holding nothing but flat integer arrays
(label arenas, interval tables, CSR snapshots, closure bitsets) plus
scalar metadata — no ``DiGraph``, no per-vertex Python containers.

Each class declares an artifact ``kind`` and implements the
``to_payload`` / ``from_payload`` pair used by
:mod:`repro.serialization` to persist it through the binary container
in :mod:`repro.artifact`.  Loaded oracles serve straight off the
(usually memory-mapped) arrays, so N serving processes share one
physical copy.

Native kinds
------------
* ``labels`` — DL / HL / TF / 2HOP (hop-label arenas, plus the engine's
  height/interval certificates baked in at compile time).
* ``grail`` — GL (interval rounds + heights + a forward-CSR snapshot
  for the pruned-DFS fallback, GRAIL's exactness requirement).
* ``hopdist`` — PL / ISL ((hop, distance) arenas; ``distance`` and
  ``k_reach`` survive compilation).
* ``intervals`` — INT / TREE / PT (interval-compressed closures over a
  numbering, with the tree / same-path O(1) fast paths).
* ``chains`` — CH (chain ids/positions + first-reachable pair arenas).
* ``pwah`` — PW8 (PWAH-8 word arenas).
* ``online`` — BFS / DFS (topological levels + forward CSR; the
  compiled form answers by level-pruned BFS either way — the two live
  classes differ only in traversal order, never in answers).
* ``scarab`` — GL* / PT* (ε-BFS arrays + backbone translation + a
  nested compiled inner oracle).
* ``closure`` — the generic fallback any other exact index inherits
  from :class:`ReachabilityIndex`: packed reachability bitset rows.
  O(n²/64) words, so only for moderate DAGs — methods with compact
  query state override ``compile`` with a native kind instead.
"""

from __future__ import annotations

import abc
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Tuple, Type

from ..artifact import pack_section

__all__ = [
    "CompiledOracle",
    "CompiledLabelOracle",
    "CompiledGrail",
    "CompiledHopDist",
    "CompiledIntervalClosure",
    "CompiledChains",
    "CompiledPwah",
    "CompiledOnline",
    "CompiledScarab",
    "CompiledClosure",
    "register_compiled",
    "compiled_kind",
    "compiled_kinds",
]


_KINDS: Dict[str, Type["CompiledOracle"]] = {}


def register_compiled(cls: Type["CompiledOracle"]) -> Type["CompiledOracle"]:
    """Class decorator: register an artifact kind for deserialisation."""
    key = cls.kind
    if key in _KINDS:
        raise ValueError(f"duplicate compiled kind {key!r}")
    _KINDS[key] = cls
    return cls


def compiled_kind(kind: str) -> Type["CompiledOracle"]:
    """Look up a compiled-oracle class by artifact kind."""
    try:
        return _KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(_KINDS))
        raise KeyError(f"unknown artifact kind {kind!r}; known: {known}") from None


def compiled_kinds() -> Dict[str, Type["CompiledOracle"]]:
    """A copy of the kind -> class map."""
    return dict(_KINDS)


class CompiledOracle(abc.ABC):
    """Base class for graph-free, query-only serve artifacts.

    The query contract matches :class:`ReachabilityIndex` —
    ``query(u, u)`` is reflexively True, batch answers equal the live
    index's bit for bit — but there is no graph, no builder state, and
    no mutation: a compiled oracle is immutable by construction.
    """

    #: Artifact kind tag (one per on-disk layout); set by subclasses.
    kind: str = "?"

    def __init__(self, short_name: str, n: int, params: Optional[dict] = None) -> None:
        self.short_name = short_name
        self.n = n
        # Construction params travel to the artifact header for
        # provenance; only JSON scalars survive (factory callables and
        # the like are build-phase objects, not serve state).
        self.params = {
            k: v
            for k, v in (params or {}).items()
            if isinstance(v, (bool, int, float, str)) or v is None
        }

    # -- queries -------------------------------------------------------
    @abc.abstractmethod
    def query(self, u: int, v: int) -> bool:
        """Whether ``u`` reaches ``v`` (reflexive)."""

    def query_batch(self, pairs: Iterable[Tuple[int, int]]) -> List[bool]:
        """Answer many queries (subclasses override with fast paths)."""
        q = self.query
        return [q(u, v) for (u, v) in pairs]

    def count_reachable(self, pairs: Iterable[Tuple[int, int]]) -> int:
        """Number of positive answers in a workload."""
        q = self.query
        return sum(1 for (u, v) in pairs if q(u, v))

    # -- metrics -------------------------------------------------------
    @abc.abstractmethod
    def index_size_ints(self) -> int:
        """Stored-integer count (the paper's Figures 3-4 metric)."""

    def stats(self) -> Dict[str, object]:
        """Serve-side statistics; keys mirror the live oracles' where
        they exist so the harness can report loaded artifacts."""
        return {
            "method": self.short_name,
            "kind": self.kind,
            "n": self.n,
            "index_size_ints": self.index_size_ints(),
            "compiled": True,
        }

    # -- persistence ---------------------------------------------------
    @abc.abstractmethod
    def to_payload(self) -> Tuple[dict, Dict[str, Tuple[str, bytes]]]:
        """``(meta, sections)`` for :mod:`repro.serialization`."""

    @classmethod
    @abc.abstractmethod
    def from_payload(cls, meta: dict, sections) -> "CompiledOracle":
        """Rebuild from a parsed artifact; ``sections(name)`` returns
        the named flat array (zero-copy when memory-mapped)."""

    def _base_meta(self) -> dict:
        return {"method": self.short_name, "n": self.n, "params": self.params}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(method={self.short_name}, n={self.n})"


def _interval_member(starts, ends, a: int, b: int, x: int) -> bool:
    """Whether ``x`` falls in the interval run ``starts/ends[a:b]``."""
    i = bisect_right(starts, x, a, b) - 1
    return i >= a and ends[i] >= x


def _csr_sections(csr, prefix: str) -> Dict[str, Tuple[str, bytes]]:
    """Pack one direction of a CSR view (``offsets``/``targets``)."""
    offs, tgts = csr
    return {
        f"{prefix}_offs": pack_section(offs),
        f"{prefix}_tgts": pack_section(tgts),
    }


# ======================================================================
# labels — DL / HL / TF / 2HOP
# ======================================================================
@register_compiled
class CompiledLabelOracle(CompiledOracle):
    """Hop-label oracle compiled to its arena plus engine certificates.

    Queries answer by label intersection exactly like the live oracle;
    batches ride the staged vectorized engine
    (:mod:`repro.kernels.batchquery`), whose graph-backed stages run on
    the height/interval certificate arrays baked in at compile time.
    ``reflexive`` marks labelings (2HOP) whose live query short-circuits
    ``u == v`` before the label test.

    ``tombstones`` / ``live_csr`` are present only in artifacts
    published by the live pipeline mid-churn: the labels stay exact for
    the *ghost* graph (removed edges included), so a positive label
    answer is demoted to an exact live check through a
    :class:`~repro.kernels.dynamic.TombstoneFilter` over the live
    (tombstone-free) CSR.  Negative answers are always final — removing
    edges never creates reachability.
    """

    kind = "labels"

    def __init__(
        self,
        labels,
        method: str,
        *,
        rank_space: bool = False,
        reflexive: bool = False,
        height=None,
        rounds=(),
        hop_vertex=None,
        tombstones=None,
        live_csr=None,
        params: Optional[dict] = None,
    ) -> None:
        super().__init__(method, labels.n, params)
        self.labels = labels
        self.method = method
        self.rank_space = rank_space
        self.reflexive = reflexive
        self.height = height
        self.rounds = list(rounds)
        #: rank-space labelings (DL): hop id -> original vertex id, so
        #: witnesses keep naming real vertices after the graph is gone.
        self.hop_vertex = hop_vertex
        self.tombstones = [(int(a), int(b)) for a, b in (tombstones or [])]
        self._live_csr = live_csr
        self._tomb_filter = None

    @classmethod
    def from_index(cls, index, *, rank_space: bool = False, reflexive: bool = False):
        """Compile a live label oracle (graph present) to serve form."""
        from ..kernels.batchquery import compile_graph_aux

        height, rounds = compile_graph_aux(index.graph)
        return cls(
            index.labels,
            index.short_name,
            rank_space=rank_space,
            reflexive=reflexive,
            height=height,
            rounds=rounds,
            hop_vertex=getattr(index, "order_list", None) if rank_space else None,
            params=getattr(index, "params", None),
        )

    # -- queries -------------------------------------------------------
    def _filter(self):
        """The (cached) tombstone corrector for this artifact."""
        f = self._tomb_filter
        if f is None:
            from ..kernels.dynamic import TombstoneFilter

            if self._live_csr is None:
                raise RuntimeError(
                    "artifact has tombstones but no live CSR sections"
                )
            labels = self.labels
            offs, tgts = self._live_csr

            def reach(a, b, _q=labels.query):
                return a == b or _q(a, b)

            def neighbors(w, _offs=offs, _tgts=tgts):
                for j in range(int(_offs[w]), int(_offs[w + 1])):
                    yield int(_tgts[j])

            f = TombstoneFilter(self.tombstones, reach, neighbors)
            self._tomb_filter = f
        return f

    def query(self, u: int, v: int) -> bool:
        if self.reflexive and u == v:
            return True
        if not self.labels.query(u, v):
            return False
        if self.tombstones and u != v:
            # Labels are exact for the ghost graph; a tombstone on every
            # ghost path demotes this positive to an exact live check.
            return self._filter().check(u, v)
        return True

    def query_batch(self, pairs) -> List[bool]:
        from ..kernels.batchquery import engine_query_batch

        if not hasattr(pairs, "__len__"):
            pairs = list(pairs)
        res = engine_query_batch(
            self, self.labels, None, pairs, aux=(self.height, self.rounds)
        )
        if self.tombstones:
            check = self._filter().check
            for i, (u, v) in enumerate(pairs):
                if res[i] and u != v:
                    res[i] = check(int(u), int(v))
        if self.reflexive:
            for i, (u, v) in enumerate(pairs):
                if u == v:
                    res[i] = True
        return res

    def witness(self, u: int, v: int) -> Optional[int]:
        """A common hop certifying ``u -> v``, in original vertex ids.

        Mirrors the live oracles: vertex-id labelings (HL/TF/2HOP)
        return the hop as stored; rank-space labelings (DL) translate
        through the persisted ``hop_vertex`` map.  Raises when that map
        was stripped (v1-migrated oracles never had it; the compact
        profile drops it) — rank ids are indistinguishable from vertex
        ids, so returning them raw would silently name the wrong hub.

        With tombstones, a *suspect* positive re-derives its hop with
        both legs checked against the live graph (a non-suspect
        positive's label hop is already live-valid: none of its ghost
        paths can contain a tombstone).  Raises when the pair is live-
        reachable but no common hop lies on a live path — an exact
        witness there needs a compact + full recompile.
        """
        hop = self.labels.witness(u, v)
        if hop is None:
            return None
        if self.tombstones and u != v and self._filter().suspect(u, v):
            if not self.query(u, v):
                return None
            hop = self._live_witness_hop(u, v)
            if hop is None:
                raise RuntimeError(
                    "pair is reachable but every common-hop witness "
                    "routes through a tombstoned edge; witnesses here "
                    "need a compacted (full) recompile"
                )
        if not self.rank_space:
            return hop
        if self.hop_vertex is None:
            raise RuntimeError(
                "this compiled oracle stores rank-space hops without a "
                "hop -> vertex map (v1-migrated or compact artifact); "
                "witnesses in original ids need a full-profile compile"
            )
        return int(self.hop_vertex[hop])

    def _live_witness_hop(self, u: int, v: int) -> Optional[int]:
        """First common hop whose two legs both hold in the live graph."""
        if self.rank_space and self.hop_vertex is None:
            raise RuntimeError(
                "this compiled oracle stores rank-space hops without a "
                "hop -> vertex map (v1-migrated or compact artifact); "
                "witnesses in original ids need a full-profile compile"
            )
        lo = self.labels.lout[u]
        li = self.labels.lin[v]
        i = j = 0
        while i < len(lo) and j < len(li):
            a, b = lo[i], li[j]
            if a == b:
                w = int(self.hop_vertex[a]) if self.rank_space else int(a)
                if (w == u or self.query(u, w)) and (w == v or self.query(w, v)):
                    return int(a)
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return None

    # -- metrics -------------------------------------------------------
    def index_size_ints(self) -> int:
        return self.labels.size_ints()

    def stats(self) -> Dict[str, object]:
        base = super().stats()
        base.update(
            {
                "max_label_len": self.labels.max_label_len(),
                "avg_label_len": round(self.labels.average_label_len(), 2),
                "tombstones": len(self.tombstones),
            }
        )
        return base

    # -- persistence ---------------------------------------------------
    def to_payload(self):
        oh, oo, ih, io_ = self.labels.arena()
        meta = self._base_meta()
        meta.update(
            {
                "rank_space": self.rank_space,
                "reflexive": self.reflexive,
                "rounds": len(self.rounds),
            }
        )
        sections = {
            "out_hops": pack_section(oh),
            # Offsets pin <i8 so the batch engine adopts the mmap
            # without an upcast copy (hops stay minimal-width; the
            # engine gathers from any int dtype in place).
            "out_offs": pack_section(oo, "<i8"),
            "in_hops": pack_section(ih),
            "in_offs": pack_section(io_, "<i8"),
        }
        if self.height is not None:
            sections["height"] = pack_section(self.height)
        if self.hop_vertex is not None:
            sections["hop_vertex"] = pack_section(self.hop_vertex)
        if self.tombstones:
            offs, tgts = self._live_csr
            sections["tomb_u"] = pack_section([e[0] for e in self.tombstones])
            sections["tomb_v"] = pack_section([e[1] for e in self.tombstones])
            sections["live_offs"] = pack_section(offs, "<i8")
            sections["live_tgts"] = pack_section(tgts)
        for i, (low, post) in enumerate(self.rounds):
            sections[f"iv_low_{i}"] = pack_section(low)
            sections[f"iv_post_{i}"] = pack_section(post)
        return meta, sections

    @classmethod
    def from_payload(cls, meta, sections):
        from .labels import LabelSet

        n = int(meta["n"])
        labels = LabelSet.from_arena(
            n,
            sections("out_hops"),
            sections("out_offs"),
            sections("in_hops"),
            sections("in_offs"),
        )
        height = sections("height") if _has(sections, "height") else None
        hop_vertex = sections("hop_vertex") if _has(sections, "hop_vertex") else None
        tombstones = None
        live_csr = None
        if _has(sections, "tomb_u"):
            tombstones = list(zip(sections("tomb_u"), sections("tomb_v")))
            live_csr = (sections("live_offs"), sections("live_tgts"))
        rounds = [
            (sections(f"iv_low_{i}"), sections(f"iv_post_{i}"))
            for i in range(int(meta.get("rounds", 0)))
        ]
        return cls(
            labels,
            str(meta["method"]),
            rank_space=bool(meta.get("rank_space", False)),
            reflexive=bool(meta.get("reflexive", False)),
            height=height,
            rounds=rounds,
            hop_vertex=hop_vertex,
            tombstones=tombstones,
            live_csr=live_csr,
            params=meta.get("params"),
        )


def _has(sections, name: str) -> bool:
    try:
        sections(name)
    except KeyError:
        return False
    return True


# ======================================================================
# grail — GL
# ======================================================================
@register_compiled
class CompiledGrail(CompiledOracle):
    """GRAIL compiled to flat interval tables + a forward-CSR snapshot.

    GRAIL's containment test is necessary-but-not-sufficient, so the
    exactness-preserving pruned DFS fallback must survive compilation —
    the forward CSR arrays are part of the artifact (flat arrays, not a
    ``DiGraph``).  The stamped visited scratch is rebuilt per process.
    """

    kind = "grail"

    def __init__(self, n, k, lows, posts, heights, out_offs, out_tgts, params=None) -> None:
        super().__init__("GL", n, params)
        self.k = k
        self._ivals = list(zip(lows, posts))
        self._heights = heights
        self._offs = out_offs
        self._tgts = out_tgts
        self._vis = [-1] * n
        self._stamp = -1

    @classmethod
    def from_index(cls, index):
        offs, tgts = _forward_csr(index.graph)
        return cls(
            index.graph.n,
            index.k,
            list(index._lows),
            list(index._posts),
            index._heights,
            offs,
            tgts,
            params=getattr(index, "params", None),
        )

    def query(self, u: int, v: int) -> bool:
        if u == v:
            return True
        heights = self._heights
        if heights[u] <= heights[v]:
            return False
        ivals = self._ivals
        for low, post in ivals:
            if low[v] < low[u] or post[v] > post[u]:
                return False
        # Pruned DFS over the CSR snapshot (mirrors Grail.query).
        offs = self._offs
        tgts = self._tgts
        vis = self._vis
        self._stamp += 1
        stamp = self._stamp
        stack = [u]
        push = stack.append
        vis[u] = stamp
        while stack:
            x = stack.pop()
            for j in range(offs[x], offs[x + 1]):
                w = tgts[j]
                if w == v:
                    return True
                if vis[w] != stamp:
                    vis[w] = stamp
                    for low, post in ivals:
                        if low[v] < low[w] or post[v] > post[w]:
                            break
                    else:
                        push(int(w))
        return False

    def index_size_ints(self) -> int:
        return 2 * self.k * self.n + self.n  # intervals + heights

    def to_payload(self):
        meta = self._base_meta()
        meta["k"] = self.k
        sections = {"heights": pack_section(self._heights)}
        for i, (low, post) in enumerate(self._ivals):
            sections[f"low_{i}"] = pack_section(low)
            sections[f"post_{i}"] = pack_section(post)
        sections.update(_csr_sections((self._offs, self._tgts), "out"))
        return meta, sections

    @classmethod
    def from_payload(cls, meta, sections):
        k = int(meta["k"])
        return cls(
            int(meta["n"]),
            k,
            [sections(f"low_{i}") for i in range(k)],
            [sections(f"post_{i}") for i in range(k)],
            sections("heights"),
            sections("out_offs"),
            sections("out_tgts"),
            params=meta.get("params"),
        )


def _forward_csr(graph):
    """``(offsets, targets)`` snapshot of a graph's forward adjacency."""
    csr = graph.csr() if graph.frozen else None
    if csr is not None:
        return csr.out_offsets, csr.out_targets
    from ..graph.csr import build_csr_arrays

    return build_csr_arrays(graph.out_adj)


def _both_csr(graph):
    """Forward and reverse CSR snapshots."""
    if graph.frozen:
        csr = graph.csr()
        return (csr.out_offsets, csr.out_targets), (csr.in_offsets, csr.in_targets)
    from ..graph.csr import build_csr_arrays

    return build_csr_arrays(graph.out_adj), build_csr_arrays(graph.in_adj)


# ======================================================================
# hopdist — PL / ISL
# ======================================================================
@register_compiled
class CompiledHopDist(CompiledOracle):
    """(hop, distance) labelings compiled to parallel arenas.

    Serves Pruned-Landmark and IS-label: both answer reachability
    through the same sorted-merge distance scan, which this class runs
    over arena slices.  ``distance`` and ``k_reach`` stay available —
    the distance-oracle bonus survives compilation.
    """

    kind = "hopdist"

    def __init__(self, short_name, n, out_h, out_d, out_offs, in_h, in_d, in_offs, params=None) -> None:
        super().__init__(short_name, n, params)
        self._out_h = out_h
        self._out_d = out_d
        self._out_offs = out_offs
        self._in_h = in_h
        self._in_d = in_d
        self._in_offs = in_offs

    @classmethod
    def from_index(cls, index):
        out_h, out_offs = _flatten(index._lout_h)
        out_d, _ = _flatten(index._lout_d)
        in_h, in_offs = _flatten(index._lin_h)
        in_d, _ = _flatten(index._lin_d)
        return cls(
            index.short_name,
            len(index._lout_h),
            out_h,
            out_d,
            out_offs,
            in_h,
            in_d,
            in_offs,
            params=getattr(index, "params", None),
        )

    def distance(self, u: int, v: int) -> Optional[int]:
        """Exact hop-count distance, or ``None`` (mirrors the live scan)."""
        if u == v:
            return 0
        best = None
        hs, ds = self._out_h, self._out_d
        i = self._out_offs[u]
        ni = self._out_offs[u + 1]
        js, jd = self._in_h, self._in_d
        j = self._in_offs[v]
        nj = self._in_offs[v + 1]
        while i < ni and j < nj:
            a = hs[i]
            b = js[j]
            if a == b:
                total = ds[i] + jd[j]
                if best is None or total < best:
                    best = total
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return None if best is None else int(best)

    def query(self, u: int, v: int) -> bool:
        return self.distance(u, v) is not None

    def k_reach(self, u: int, v: int, k: int) -> bool:
        """Whether ``u`` reaches ``v`` within ``k`` steps."""
        d = self.distance(u, v)
        return d is not None and d <= k

    def index_size_ints(self) -> int:
        return 2 * (len(self._out_h) + len(self._in_h))

    def to_payload(self):
        meta = self._base_meta()
        return meta, {
            "out_h": pack_section(self._out_h),
            "out_d": pack_section(self._out_d),
            "out_offs": pack_section(self._out_offs, "<i8"),
            "in_h": pack_section(self._in_h),
            "in_d": pack_section(self._in_d),
            "in_offs": pack_section(self._in_offs, "<i8"),
        }

    @classmethod
    def from_payload(cls, meta, sections):
        return cls(
            str(meta["method"]),
            int(meta["n"]),
            sections("out_h"),
            sections("out_d"),
            sections("out_offs"),
            sections("in_h"),
            sections("in_d"),
            sections("in_offs"),
            params=meta.get("params"),
        )


def _flatten(lists):
    """``(values, offsets)`` arena from a list of per-vertex lists."""
    from array import array
    from itertools import accumulate

    values = array("l")
    for lst in lists:
        values.extend(lst)
    offsets = array("l", accumulate(map(len, lists), initial=0))
    return values, offsets


# ======================================================================
# intervals — INT / TREE / PT
# ======================================================================
@register_compiled
class CompiledIntervalClosure(CompiledOracle):
    """Interval-compressed closures over a numbering, with fast paths.

    One layout serves the three interval-closure indices; ``variant``
    selects the live query shape being mirrored:

    * ``INT`` — membership of ``number[v]`` in ``u``'s interval run.
    * ``TREE`` — the O(1) subtree-interval test first
      (``low[u] <= post[v] <= post[u]``), then membership.
    * ``PT`` — the O(1) same-path positional test first, then
      membership of the path-tree preorder number.
    """

    kind = "intervals"

    def __init__(self, short_name, variant, n, number, starts, ends, offs,
                 low=None, path_of=None, pos_of=None, extra_ints=0, params=None) -> None:
        super().__init__(short_name, n, params)
        self.variant = variant
        self._number = number
        self._starts = starts
        self._ends = ends
        self._offs = offs
        self._low = low
        self._path_of = path_of
        self._pos_of = pos_of
        self._extra_ints = extra_ints

    @classmethod
    def from_index(cls, index):
        starts, ends, offs = _flatten_intervals(index._closures)
        params = getattr(index, "params", None)
        name = index.short_name
        if name == "PT":
            return cls(
                name, "PT", index.graph.n, index._number, starts, ends, offs,
                path_of=index._path_of, pos_of=index._pos_in_path,
                extra_ints=3 * index.graph.n, params=params,
            )
        if name == "TREE":
            return cls(
                name, "TREE", index.graph.n, index._post, starts, ends, offs,
                low=index._low, extra_ints=2 * index.graph.n, params=params,
            )
        return cls(
            name, "INT", index.graph.n, index._number, starts, ends, offs,
            extra_ints=index.graph.n, params=params,
        )

    def query(self, u: int, v: int) -> bool:
        if self.variant == "PT":
            if self._path_of[u] == self._path_of[v]:
                return self._pos_of[u] <= self._pos_of[v]
        elif self.variant == "TREE":
            if self._low[u] <= self._number[v] <= self._number[u]:
                return True
        x = self._number[v]
        return _interval_member(
            self._starts, self._ends, self._offs[u], self._offs[u + 1], x
        )

    def index_size_ints(self) -> int:
        # Two endpoints per interval + the numbering arrays, mirroring
        # each live index's accounting.
        return 2 * len(self._starts) + self._extra_ints

    def to_payload(self):
        meta = self._base_meta()
        meta["variant"] = self.variant
        meta["extra_ints"] = self._extra_ints
        sections = {
            "number": pack_section(self._number),
            "starts": pack_section(self._starts),
            "ends": pack_section(self._ends),
            "offs": pack_section(self._offs, "<i8"),
        }
        if self._low is not None:
            sections["low"] = pack_section(self._low)
        if self._path_of is not None:
            sections["path_of"] = pack_section(self._path_of)
            sections["pos_of"] = pack_section(self._pos_of)
        return meta, sections

    @classmethod
    def from_payload(cls, meta, sections):
        variant = str(meta["variant"])
        return cls(
            str(meta["method"]),
            variant,
            int(meta["n"]),
            sections("number"),
            sections("starts"),
            sections("ends"),
            sections("offs"),
            low=sections("low") if variant == "TREE" else None,
            path_of=sections("path_of") if variant == "PT" else None,
            pos_of=sections("pos_of") if variant == "PT" else None,
            extra_ints=int(meta.get("extra_ints", 0)),
            params=meta.get("params"),
        )


def _flatten_intervals(closures):
    """Flatten per-vertex :class:`IntervalSet` objects into arenas."""
    from array import array

    starts = array("l")
    ends = array("l")
    offs = array("l", [0])
    total = 0
    for c in closures:
        starts.extend(c.starts)
        ends.extend(c.ends)
        total += len(c.starts)
        offs.append(total)
    return starts, ends, offs


# ======================================================================
# chains — CH
# ======================================================================
@register_compiled
class CompiledChains(CompiledOracle):
    """Chain compression compiled to pair arenas.

    ``first_keys/first_vals[offs[u]:offs[u+1]]`` is ``u``'s sorted
    (chain, min-position) table; the query bisects it exactly like the
    live index.
    """

    kind = "chains"

    def __init__(self, n, n_chains, chain_of, pos_of, keys, vals, offs, params=None) -> None:
        super().__init__("CH", n, params)
        self.n_chains = n_chains
        self._chain_of = chain_of
        self._pos_of = pos_of
        self._keys = keys
        self._vals = vals
        self._offs = offs

    @classmethod
    def from_index(cls, index):
        keys, offs = _flatten(index._first_keys)
        vals, _ = _flatten(index._first_vals)
        return cls(
            index.graph.n,
            index._n_chains,
            index._chain_of,
            index._pos_of,
            keys,
            vals,
            offs,
            params=getattr(index, "params", None),
        )

    def query(self, u: int, v: int) -> bool:
        cid = self._chain_of[v]
        a = self._offs[u]
        b = self._offs[u + 1]
        i = bisect_left(self._keys, cid, a, b)
        if i == b or self._keys[i] != cid:
            return False
        return self._vals[i] <= self._pos_of[v]

    def index_size_ints(self) -> int:
        return 2 * len(self._keys) + 2 * self.n

    def to_payload(self):
        meta = self._base_meta()
        meta["n_chains"] = self.n_chains
        return meta, {
            "chain_of": pack_section(self._chain_of),
            "pos_of": pack_section(self._pos_of),
            "keys": pack_section(self._keys),
            "vals": pack_section(self._vals),
            "offs": pack_section(self._offs, "<i8"),
        }

    @classmethod
    def from_payload(cls, meta, sections):
        return cls(
            int(meta["n"]),
            int(meta["n_chains"]),
            sections("chain_of"),
            sections("pos_of"),
            sections("keys"),
            sections("vals"),
            sections("offs"),
            params=meta.get("params"),
        )


# ======================================================================
# pwah — PW8
# ======================================================================
@register_compiled
class CompiledPwah(CompiledOracle):
    """PWAH-8 closure vectors compiled to one 64-bit word arena.

    A query wraps ``u``'s word slice in a :class:`PwahBitVector` view —
    the class stores references, so the wrap is zero-copy — and probes
    ``number[v]`` through the exact decoder the live index uses.
    """

    kind = "pwah"

    def __init__(self, n, number, words, offs, universe, params=None) -> None:
        super().__init__("PW8", n, params)
        self._number = number
        self._words = words
        self._offs = offs
        self.universe = universe

    @classmethod
    def from_index(cls, index):
        from array import array
        words = array("Q")
        offs = array("l", [0])
        total = 0
        universe = index.graph.n
        for vec in index._vectors:
            words.extend(vec.words)
            total += len(vec.words)
            offs.append(total)
            universe = vec.universe
        return cls(
            index.graph.n, index._number, words, offs, universe,
            params=getattr(index, "params", None),
        )

    def query(self, u: int, v: int) -> bool:
        from ..baselines.pwah import PwahBitVector

        a = self._offs[u]
        b = self._offs[u + 1]
        vec = PwahBitVector(self._words[a:b], self.universe)
        return vec.contains(int(self._number[v]))

    def index_size_ints(self) -> int:
        return len(self._words) + self.n

    def to_payload(self):
        meta = self._base_meta()
        meta["universe"] = self.universe
        return meta, {
            "number": pack_section(self._number),
            "words": pack_section(self._words, "<u8"),
            "offs": pack_section(self._offs, "<i8"),
        }

    @classmethod
    def from_payload(cls, meta, sections):
        return cls(
            int(meta["n"]),
            sections("number"),
            sections("words"),
            sections("offs"),
            int(meta["universe"]),
            params=meta.get("params"),
        )


# ======================================================================
# online — BFS / DFS
# ======================================================================
@register_compiled
class CompiledOnline(CompiledOracle):
    """Index-free online search compiled to levels + forward CSR.

    The live BFS and DFS classes differ only in frontier discipline;
    answers are identical, so one compiled form (level-pruned BFS over
    the CSR snapshot) serves both, with ``short_name`` recording which
    it came from.
    """

    kind = "online"

    def __init__(self, short_name, n, levels, out_offs, out_tgts, params=None) -> None:
        super().__init__(short_name, n, params)
        self._levels = levels
        self._offs = out_offs
        self._tgts = out_tgts
        self._visited = bytearray(n)

    @classmethod
    def from_index(cls, index):
        offs, tgts = _forward_csr(index.graph)
        return cls(
            index.short_name, index.graph.n, index._levels, offs, tgts,
            params=getattr(index, "params", None),
        )

    def query(self, u: int, v: int) -> bool:
        if u == v:
            return True
        levels = self._levels
        if levels[u] >= levels[v]:
            return False
        offs = self._offs
        tgts = self._tgts
        visited = self._visited
        target_level = levels[v]
        frontier = [u]
        visited[u] = 1
        touched = [u]
        found = False
        qi = 0
        while qi < len(frontier) and not found:
            x = frontier[qi]
            qi += 1
            for j in range(offs[x], offs[x + 1]):
                w = tgts[j]
                if w == v:
                    found = True
                    break
                if not visited[w] and levels[w] < target_level:
                    visited[w] = 1
                    w = int(w)
                    touched.append(w)
                    frontier.append(w)
        for x in touched:
            visited[x] = 0
        return found

    def index_size_ints(self) -> int:
        return len(self._levels)

    def to_payload(self):
        meta = self._base_meta()
        sections = {"levels": pack_section(self._levels)}
        sections.update(_csr_sections((self._offs, self._tgts), "out"))
        return meta, sections

    @classmethod
    def from_payload(cls, meta, sections):
        return cls(
            str(meta["method"]),
            int(meta["n"]),
            sections("levels"),
            sections("out_offs"),
            sections("out_tgts"),
            params=meta.get("params"),
        )


# ======================================================================
# scarab — GL* / PT*
# ======================================================================
@register_compiled
class CompiledScarab(CompiledOracle):
    """SCARAB wrapper compiled to ε-BFS arrays + a nested inner oracle.

    The local check and entry/exit collection run over CSR snapshots of
    both directions; the backbone index is whatever compiled oracle the
    inner method produced, nested inside the same artifact under an
    ``inner/`` section prefix.
    """

    kind = "scarab"

    def __init__(self, short_name, n, eps, in_backbone, to_backbone,
                 out_csr, in_csr, inner: CompiledOracle, params=None) -> None:
        super().__init__(short_name, n, params)
        self.eps = eps
        self._in_backbone = in_backbone
        self._to_backbone = to_backbone
        self._out_offs, self._out_tgts = out_csr
        self._in_offs, self._in_tgts = in_csr
        self.inner = inner

    @classmethod
    def from_index(cls, index):
        out_csr, in_csr = _both_csr(index.graph)
        # The live wrapper keeps ``to_backbone`` as a dict over backbone
        # vertices; the artifact stores it dense (0 for non-backbone —
        # never consulted, entries/exits are backbone vertices only).
        to_b = index._to_backbone
        to_backbone = [to_b.get(v, 0) for v in range(index.graph.n)]
        return cls(
            index.short_name,
            index.graph.n,
            index.eps,
            index._in_backbone,
            to_backbone,
            out_csr,
            in_csr,
            index.inner.compile(),
            params=getattr(index, "params", None),
        )

    # -- queries -------------------------------------------------------
    def _local_and_entries(self, offs, tgts, source: int, target: int):
        """ε-BFS over one CSR direction (mirrors the live wrapper)."""
        eps = self.eps
        in_backbone = self._in_backbone
        dist = {source: 0}
        frontier = [source]
        entries: List[int] = []
        if in_backbone[source]:
            entries.append(source)
        d = 0
        while frontier and d < eps:
            d += 1
            nxt = []
            for u in frontier:
                for j in range(offs[u], offs[u + 1]):
                    w = int(tgts[j])
                    if w == target:
                        return True, entries
                    if w not in dist:
                        dist[w] = d
                        nxt.append(w)
                        if in_backbone[w]:
                            entries.append(w)
            frontier = nxt
        return False, entries

    def query(self, u: int, v: int) -> bool:
        if u == v:
            return True
        hit, entries = self._local_and_entries(self._out_offs, self._out_tgts, u, v)
        if hit:
            return True
        if not entries:
            return False
        _, exits = self._local_and_entries(self._in_offs, self._in_tgts, v, u)
        if not exits:
            return False
        to_b = self._to_backbone
        inner_q = self.inner.query
        for e in entries:
            be = to_b[e]
            for x in exits:
                if inner_q(be, to_b[x]):
                    return True
        return False

    def index_size_ints(self) -> int:
        return self.inner.index_size_ints() + 2 * self.n

    def stats(self) -> Dict[str, object]:
        base = super().stats()
        base["inner"] = self.inner.stats()
        return base

    # -- persistence ---------------------------------------------------
    def to_payload(self):
        meta = self._base_meta()
        inner_meta, inner_sections = self.inner.to_payload()
        meta.update(
            {
                "eps": self.eps,
                "inner": {"kind": self.inner.kind, "meta": inner_meta},
            }
        )
        sections = {
            "in_backbone": pack_section(self._in_backbone, "<u1"),
            "to_backbone": pack_section(self._to_backbone),
        }
        sections.update(_csr_sections((self._out_offs, self._out_tgts), "out"))
        sections.update(_csr_sections((self._in_offs, self._in_tgts), "in"))
        for name, packed in inner_sections.items():
            sections[f"inner/{name}"] = packed
        return meta, sections

    @classmethod
    def from_payload(cls, meta, sections):
        inner_doc = meta["inner"]
        inner_cls = compiled_kind(str(inner_doc["kind"]))
        inner = inner_cls.from_payload(
            inner_doc["meta"], lambda name: sections(f"inner/{name}")
        )
        return cls(
            str(meta["method"]),
            int(meta["n"]),
            int(meta["eps"]),
            sections("in_backbone"),
            sections("to_backbone"),
            (sections("out_offs"), sections("out_tgts")),
            (sections("in_offs"), sections("in_tgts")),
            inner,
            params=meta.get("params"),
        )


# ======================================================================
# closure — generic fallback
# ======================================================================
@register_compiled
class CompiledClosure(CompiledOracle):
    """Packed reachability bitset rows — the generic compile fallback.

    Any exact index compiles to the DAG's reflexive transitive closure,
    one 64-bit-word row per vertex: O(1) queries, O(n²/64) words.  That
    footprint is the honest price of methods whose query state has no
    compact flat-array form (k-reach covers, dual labeling, 3-hop
    chain-cover maps…); methods with one override ``compile`` with a
    native kind.  ``max_closure_n`` guards against accidentally
    compiling a huge DAG into a quadratic artifact.
    """

    kind = "closure"

    #: Refuse the quadratic fallback above this vertex count (2^15 rows
    #: of 2^15 bits = 128 MiB — already generous for a fallback).
    MAX_CLOSURE_N = 1 << 15

    def __init__(self, short_name, n, words_per_row, bits, params=None) -> None:
        super().__init__(short_name, n, params)
        self.words_per_row = words_per_row
        self._bits = bits

    @classmethod
    def from_index(cls, index, max_closure_n: Optional[int] = None):
        from array import array

        from ..graph.closure import transitive_closure_bits

        graph = index.graph
        limit = cls.MAX_CLOSURE_N if max_closure_n is None else max_closure_n
        if graph.n > limit:
            raise MemoryError(
                f"{type(index).__name__} compiles through the generic closure "
                f"fallback, quadratic in n; refusing n={graph.n} > {limit}"
            )
        n = graph.n
        w = max(1, (n + 63) >> 6)
        tc = transitive_closure_bits(graph)
        # Shift each row's bigint out in 64-bit chunks.
        bits = array("Q")
        mask = (1 << 64) - 1
        for row in tc:
            for _ in range(w):
                bits.append(row & mask)
                row >>= 64
        return cls(index.short_name, n, w, bits, params=getattr(index, "params", None))

    def query(self, u: int, v: int) -> bool:
        if u == v:
            return True
        word = self._bits[u * self.words_per_row + (v >> 6)]
        return bool((word >> (v & 63)) & 1)

    def index_size_ints(self) -> int:
        return len(self._bits)

    def to_payload(self):
        meta = self._base_meta()
        meta["words_per_row"] = self.words_per_row
        return meta, {"bits": pack_section(self._bits, "<u8")}

    @classmethod
    def from_payload(cls, meta, sections):
        return cls(
            str(meta["method"]),
            int(meta["n"]),
            int(meta["words_per_row"]),
            sections("bits"),
            params=meta.get("params"),
        )
