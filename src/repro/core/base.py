"""Common interface for every reachability index in the library.

Each method of §6 — the two oracles, the transitive-closure compressors,
the online-search index, and the SCARAB wrappers — implements
:class:`ReachabilityIndex`.  The benchmark harness, the facade and the
tests talk only to this interface, so methods are interchangeable.

A tiny registry maps the method abbreviations used in the paper's tables
(``DL``, ``HL``, ``PT``, ``INT``, ``PW8``, ``KR``, ``GL``, ``GL*``,
``PT*``, ``2HOP``, ``TF``, ``PL``, ``BFS``) to their classes so the CLI
and experiment specs can name methods the same way the paper does.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Iterable, List, Tuple, Type

from ..graph.digraph import DiGraph

__all__ = ["ReachabilityIndex", "register_method", "method_registry", "get_method"]


class ReachabilityIndex(abc.ABC):
    """Abstract base class for DAG reachability indices.

    Subclasses implement :meth:`_build` and :meth:`query`; the base class
    provides batch querying, statistics, and the index-size metric used
    throughout the paper's figures (number of integers stored).

    Lifecycle: build → compile → serve
    ----------------------------------
    A live index is the **build** phase: it keeps the graph and whatever
    scaffolding construction needed, so it can answer queries, report
    stats, and (for the dynamic variants) absorb updates.  For
    production serving — build once, serve from many processes — call
    :meth:`compile` to produce a :class:`repro.core.compiled.CompiledOracle`:
    a graph-free, query-only object holding nothing but flat arrays,
    which :func:`repro.serialization.save_artifact` persists as a
    binary, memory-mappable artifact.  The eager-construction
    ``__init__(graph, **params)`` convention is the compatibility shim
    for every existing call site (and keeps ``time(Method(graph))``
    measuring construction exactly); ``compile()`` is the hand-off out
    of it.
    """

    #: Paper abbreviation (e.g. ``"DL"``); set by subclasses.
    short_name: str = "?"
    #: Human-readable name; set by subclasses.
    full_name: str = "?"

    def __init__(self, graph: DiGraph, **params) -> None:
        if not graph.frozen:
            graph = graph.copy().freeze()
        self.graph = graph
        self.params = params
        self._build(graph, **params)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _build(self, graph: DiGraph, **params) -> None:
        """Construct the index for ``graph`` (a DAG)."""

    @abc.abstractmethod
    def query(self, u: int, v: int) -> bool:
        """Whether ``u`` reaches ``v`` (reflexively: ``query(u, u)`` is True)."""

    @abc.abstractmethod
    def index_size_ints(self) -> int:
        """Number of integers the index stores (paper's Figures 3-4 metric)."""

    # ------------------------------------------------------------------
    def compile(self):
        """Compile to a graph-free :class:`~repro.core.compiled.CompiledOracle`.

        The default falls back to the packed-closure artifact
        (:class:`repro.core.compiled.CompiledClosure`) — exact for any
        index but quadratic in ``n``, so methods whose query state has
        a compact flat-array form override this with a native kind
        (DL/HL/TF/2HOP → label arenas, GL → interval tables, PL/ISL →
        hop-distance arenas, PT/INT/TREE → interval closures, CH →
        chain arenas, PW8 → word arenas, BFS/DFS → CSR snapshots,
        GL*/PT* → ε-BFS arrays + nested inner).
        """
        from .compiled import CompiledClosure

        return CompiledClosure.from_index(self)

    def query_batch(self, pairs: Iterable[Tuple[int, int]]) -> List[bool]:
        """Answer many queries; the benchmark harness times this loop."""
        q = self.query
        return [q(u, v) for (u, v) in pairs]

    def count_reachable(self, pairs: Iterable[Tuple[int, int]]) -> int:
        """Number of positive answers in a workload (cheap sanity check)."""
        q = self.query
        return sum(1 for (u, v) in pairs if q(u, v))

    def stats(self) -> Dict[str, object]:
        """Index statistics for reports; subclasses may extend."""
        return {
            "method": self.short_name,
            "n": self.graph.n,
            "m": self.graph.m,
            "index_size_ints": self.index_size_ints(),
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.graph.n}, m={self.graph.m})"


_REGISTRY: Dict[str, Callable[..., ReachabilityIndex]] = {}


def register_method(cls: Type[ReachabilityIndex]) -> Type[ReachabilityIndex]:
    """Class decorator: register under the class's ``short_name``."""
    key = cls.short_name.upper()
    if key in _REGISTRY:
        raise ValueError(f"duplicate method abbreviation {key!r}")
    _REGISTRY[key] = cls
    return cls


def register_factory(name: str, factory: Callable[..., ReachabilityIndex]) -> None:
    """Register a non-class factory (used for SCARAB-wrapped variants)."""
    key = name.upper()
    if key in _REGISTRY:
        raise ValueError(f"duplicate method abbreviation {key!r}")
    _REGISTRY[key] = factory


def method_registry() -> Dict[str, Callable[..., ReachabilityIndex]]:
    """A copy of the abbreviation -> factory map."""
    return dict(_REGISTRY)


def get_method(name: str) -> Callable[..., ReachabilityIndex]:
    """Look up a method factory by paper abbreviation (case-insensitive)."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown method {name!r}; known: {known}") from None
