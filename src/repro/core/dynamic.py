"""Incremental edge insertion for the DL oracle (paper §7 future work).

The paper closes with "In the future, we will investigate the labeling
on dynamic graphs".  This module implements the incremental half of
that program on top of Distribution-Labeling, using a label-flooding
update whose completeness argument is three lines long:

    Inserting ``u -> v`` (acyclic, not previously reachable) creates
    exactly the pairs ``(x, y)`` with ``x -> u`` and ``v -> y`` in the
    old graph.  Old labels already certify ``x -> u`` with some hop
    ``h ∈ Lout(x) ∩ Lin(u)``.  Therefore unioning ``Lin(u) ∪ {u}``
    into ``Lin(y)`` for every ``y ∈ desc(v)`` covers every new pair:
    ``h ∈ Lout(x)`` held before, and ``h ∈ Lin(y)`` holds after.

Soundness is equally direct: every hop added to ``Lin(y)`` reaches
``u`` (it was in ``Lin(u)``), hence reaches ``y`` through the new edge.

The trade-off versus a rebuild is the one the paper would expect:
updates are cheap (one forward BFS from ``v`` plus sorted merges) but
the labeling loses Theorem 4's non-redundancy — labels grow
monotonically over a long insert stream.  :meth:`DynamicDL.rebuild`
restores the minimal static labeling; the ``auto_rebuild_factor``
parameter does so automatically once the index has bloated past a
configurable factor of its last rebuilt size.

Deletions are *not* supported (decremental reachability is strictly
harder and the paper does not sketch it); ``remove_edge`` raises
``NotImplementedError`` to make the boundary explicit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..graph.digraph import DiGraph
from .distribution import DistributionLabeling

__all__ = ["DynamicDL"]


def _merge_into(target: List[int], extra: List[int]) -> List[int]:
    """Sorted union of two sorted int lists (returns a new list)."""
    out: List[int] = []
    i = j = 0
    ni, nj = len(target), len(extra)
    while i < ni and j < nj:
        a, b = target[i], extra[j]
        if a == b:
            out.append(a)
            i += 1
            j += 1
        elif a < b:
            out.append(a)
            i += 1
        else:
            out.append(b)
            j += 1
    out.extend(target[i:])
    out.extend(extra[j:])
    return out


class DynamicDL:
    """A Distribution-Labeling oracle that accepts edge insertions.

    Parameters
    ----------
    graph:
        Initial DAG; copied, so the caller's graph is never mutated.
    order:
        Rank strategy for (re)builds, as in
        :class:`~repro.core.distribution.DistributionLabeling`.
    auto_rebuild_factor:
        When the label size exceeds this multiple of the size at the
        last rebuild, the oracle rebuilds itself (0 disables).

    Examples
    --------
    >>> from repro.graph.generators import path_dag
    >>> dyn = DynamicDL(path_dag(4))
    >>> dyn.query(3, 0)
    False
    >>> dyn.insert_edge(3, 0)
    Traceback (most recent call last):
        ...
    ValueError: inserting 3->0 would create a cycle
    """

    def __init__(
        self,
        graph: DiGraph,
        order: str = "degree_product",
        auto_rebuild_factor: float = 4.0,
        seed_index=None,
    ) -> None:
        self._graph = graph.copy()
        self._order = order
        self.auto_rebuild_factor = auto_rebuild_factor
        self._inserts_since_rebuild = 0
        if seed_index is None or not self._adopt_seed(seed_index):
            self._rebuild_from_graph()

    def _adopt_seed(self, index) -> bool:
        """Adopt a prebuilt DL's labels instead of rebuilding them.

        ``seed_index`` must be a :class:`DistributionLabeling` built on
        *this same graph* (the caller's contract; only the cheap n/m
        shape is checked here).  Labels, rank and order are deep-copied
        — this oracle mutates its labels on every insert, and sharing
        them would silently corrupt the seed index's answers.  Returns
        False when the seed does not fit, falling back to a fresh
        build; either way the resulting labeling is bit-identical to
        one built directly.
        """
        from .labels import LabelSet

        graph = getattr(index, "graph", None)
        labels = getattr(index, "labels", None)
        if (
            graph is None
            or labels is None
            or graph.n != self._graph.n
            or graph.m != self._graph.m
        ):
            return False
        copy = LabelSet(labels.n)
        copy.lout = [list(lab) for lab in labels.lout]
        copy.lin = [list(lab) for lab in labels.lin]
        if labels._out_masks is not None:
            copy.attach_masks(list(labels._out_masks), list(labels._in_masks))
        else:
            copy.seal()
        self._labels = copy
        self._rank = list(index.rank)
        self._order_list = list(index.order_list)
        self._base_size = max(1, index.index_size_ints())
        self._inserts_since_rebuild = 0
        return True

    # ------------------------------------------------------------------
    def _rebuild_from_graph(self) -> None:
        frozen = self._graph.copy().freeze()
        dl = DistributionLabeling(frozen, order=self._order)
        self._labels = dl.labels
        self._rank = dl.rank
        self._order_list = dl.order_list
        self._base_size = max(1, dl.index_size_ints())
        self._inserts_since_rebuild = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._graph.n

    @property
    def m(self) -> int:
        """Current number of edges (including inserted ones)."""
        return self._graph.m

    @property
    def graph(self) -> DiGraph:
        """The oracle's own (mutable) graph copy, inserted edges included.

        Read-only by contract: mutate it through :meth:`insert_edge`
        only, or the labels silently go stale.  The incremental
        compiler reads it to recompute the engine's graph certificates
        at publish time.
        """
        return self._graph

    @property
    def labels(self):
        """The live :class:`~repro.core.labels.LabelSet` (rank space)."""
        return self._labels

    @property
    def rank(self) -> List[int]:
        """Vertex -> rank map of the last (re)build."""
        return self._rank

    @property
    def order_list(self) -> List[int]:
        """Rank -> vertex map (the DL hop->vertex witness table)."""
        return self._order_list

    def query(self, u: int, v: int) -> bool:
        """Whether ``u`` currently reaches ``v``."""
        if u == v:
            return True
        # Edge inserts only mutate Lin lists; the sealed Lout mirror
        # built at (re)build time stays valid throughout.
        return self._labels.query(u, v)

    def query_batch(self, pairs: Iterable[Tuple[int, int]]) -> List[bool]:
        """Vectorised :meth:`query`."""
        return [self.query(u, v) for u, v in pairs]

    def index_size_ints(self) -> int:
        """Current label size in stored integers."""
        return self._labels.size_ints()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> bool:
        """Insert edge ``u -> v``; returns True if reachability changed.

        Raises
        ------
        ValueError
            If the edge would create a cycle (``v`` already reaches
            ``u``) or is a self-loop.
        """
        if u == v:
            raise ValueError("self-loops are not allowed in a DAG oracle")
        if self.query(v, u):
            raise ValueError(f"inserting {u}->{v} would create a cycle")
        already_reachable = self.query(u, v)
        self._graph.add_edge(u, v)
        if already_reachable:
            # The edge adds no new reachable pairs; labels stay valid.
            return False

        # Flood Lin(u) ∪ {u} into every descendant of v.
        addition = _merge_into(self._labels.lin[u], [self._rank[u]])
        add_mask = 0
        for h in addition:
            add_mask |= 1 << h
        labels = self._labels
        lin = labels.lin
        out_adj = self._graph.out_adj
        seen = {v}
        frontier = [v]
        qi = 0
        while qi < len(frontier):
            w = frontier[qi]
            qi += 1
            lin[w] = _merge_into(lin[w], addition)
            # Keep the sealed bigint mask coherent with the merged list.
            labels.or_in_mask(w, add_mask)
            for x in out_adj[w]:
                if x not in seen:
                    seen.add(x)
                    frontier.append(x)

        self._inserts_since_rebuild += 1
        if (
            self.auto_rebuild_factor
            and self.index_size_ints() > self.auto_rebuild_factor * self._base_size
        ):
            self.rebuild()
        return True

    def insert_edges(self, edges: Iterable[Tuple[int, int]]) -> int:
        """Insert many edges; returns how many changed reachability."""
        return sum(1 for u, v in edges if self.insert_edge(u, v))

    def remove_edge(self, u: int, v: int) -> None:
        """Decremental updates are out of scope (paper future work)."""
        raise NotImplementedError(
            "decremental reachability is not supported; rebuild on a new graph"
        )

    def rebuild(self) -> None:
        """Recompute the minimal static DL labeling for the current graph."""
        self._rebuild_from_graph()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Current oracle statistics."""
        return {
            "method": "DynamicDL",
            "n": self._graph.n,
            "m": self._graph.m,
            "index_size_ints": self.index_size_ints(),
            "inserts_since_rebuild": self._inserts_since_rebuild,
            "size_at_last_rebuild": self._base_size,
        }

    def __repr__(self) -> str:
        return (
            f"DynamicDL(n={self._graph.n}, m={self._graph.m}, "
            f"ints={self.index_size_ints()})"
        )
