"""Incremental *and* decremental updates for the DL oracle.

The paper closes with "In the future, we will investigate the labeling
on dynamic graphs".  This module implements that program on top of
Distribution-Labeling, in three layers:

**Single-edge insertion** (:meth:`DynamicDL.insert_edge`) — the
reference scalar path, a label-flooding update whose completeness
argument is three lines long:

    Inserting ``u -> v`` (acyclic, not previously reachable) creates
    exactly the pairs ``(x, y)`` with ``x -> u`` and ``v -> y`` in the
    old graph.  Old labels already certify ``x -> u`` with some hop
    ``h ∈ Lout(x) ∩ Lin(u)``.  Therefore unioning ``Lin(u) ∪ {u}``
    into ``Lin(y)`` for every ``y ∈ desc(v)`` covers every new pair:
    ``h ∈ Lout(x)`` held before, and ``h ∈ Lin(y)`` holds after.

Soundness is equally direct: every hop added to ``Lin(y)`` reaches
``u`` (it was in ``Lin(u)``), hence reaches ``y`` through the new edge.

**Batched insertion** (:meth:`DynamicDL.insert_edges`) — the live
update path.  The whole stream is classified up front (duplicate /
already-reachable / novel, stream-atomic cycle rejection) and all novel
floods collapse into ONE multi-source sweep with vectorized label
merges, through :mod:`repro.kernels.dynamic` — selectable via the
``backend={auto,python,numpy}`` axis and property-tested bit-identical
to replaying :meth:`insert_edge` sequentially.

**Deletion** (:meth:`DynamicDL.remove_edge`) — decremental updates by
*tombstone*: the edge stays in the oracle's ghost graph (so the labels
remain exact for it) and joins a removed set consulted at query time.
A positive label answer is demoted to an exact live BFS only when some
tombstone could explain it (:class:`repro.kernels.dynamic.TombstoneFilter`);
negative label answers are always final, because removing edges can
never create reachability.  :meth:`compact` physically drops the
tombstones and rebuilds minimal labels; the ``dirt_ratio`` property is
what :class:`repro.live.index.LiveIndex` watches to schedule that
recompile in the background.

The trade-off versus a rebuild is the one the paper would expect:
updates are cheap but the labeling loses Theorem 4's non-redundancy —
labels grow monotonically over a long insert stream.
:meth:`DynamicDL.rebuild` restores the minimal static labeling; the
``auto_rebuild_factor`` parameter does so automatically once the index
has bloated past a configurable factor of its last rebuilt size.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..graph.digraph import DiGraph
from ..kernels import numpy_or_none, resolve_backend
from ..kernels.dynamic import (
    CycleInBatch,
    TombstoneFilter,
    classify_batch,
    flood_batch_numpy,
    flood_batch_python,
    merge_sorted,
)
from .distribution import DistributionLabeling

__all__ = ["DynamicDL", "CycleInBatch"]

# Backwards-compatible alias (tests and older callers import it).
_merge_into = merge_sorted


def _fresh_counters() -> Dict[str, int]:
    return {
        "batches": 0,
        "novel": 0,
        "noop": 0,
        "duplicate": 0,
        "resurrected": 0,
        "removals": 0,
        "removals_redundant": 0,
        "compacts": 0,
        "frontier_vertices": 0,
        "labels_merged": 0,
        "patterns": 0,
    }


class DynamicDL:
    """A Distribution-Labeling oracle that accepts edge churn.

    Parameters
    ----------
    graph:
        Initial DAG; copied, so the caller's graph is never mutated.
    order:
        Rank strategy for (re)builds, as in
        :class:`~repro.core.distribution.DistributionLabeling`.
    auto_rebuild_factor:
        When the label size exceeds this multiple of the size at the
        last rebuild, the oracle rebuilds itself (0 disables).
    backend:
        Default backend for :meth:`insert_edges` (``None`` = the
        ``auto`` resolution of :func:`repro.kernels.resolve_backend`,
        honouring ``REPRO_BACKEND``).

    Examples
    --------
    >>> from repro.graph.generators import path_dag
    >>> dyn = DynamicDL(path_dag(4))
    >>> dyn.query(3, 0)
    False
    >>> dyn.insert_edge(3, 0)
    Traceback (most recent call last):
        ...
    ValueError: inserting 3->0 would create a cycle
    """

    def __init__(
        self,
        graph: DiGraph,
        order: str = "degree_product",
        auto_rebuild_factor: float = 4.0,
        seed_index=None,
        backend: Optional[str] = None,
    ) -> None:
        self._graph = graph.copy()
        self._order = order
        self.auto_rebuild_factor = auto_rebuild_factor
        self._backend = backend
        self._inserts_since_rebuild = 0
        self._removed: set = set()
        self._filter: Optional[TombstoneFilter] = None
        self._counters = _fresh_counters()
        if seed_index is None or not self._adopt_seed(seed_index):
            self._rebuild_from_graph()

    def _adopt_seed(self, index) -> bool:
        """Adopt a prebuilt DL's labels instead of rebuilding them.

        ``seed_index`` must be a :class:`DistributionLabeling` built on
        *this same graph* (the caller's contract; only the cheap n/m
        shape is checked here).  Labels, rank and order are deep-copied
        — this oracle mutates its labels on every insert, and sharing
        them would silently corrupt the seed index's answers.  Returns
        False when the seed does not fit, falling back to a fresh
        build; either way the resulting labeling is bit-identical to
        one built directly.
        """
        from .labels import LabelSet

        graph = getattr(index, "graph", None)
        labels = getattr(index, "labels", None)
        if (
            graph is None
            or labels is None
            or graph.n != self._graph.n
            or graph.m != self._graph.m
        ):
            return False
        copy = LabelSet(labels.n)
        copy.lout = [list(lab) for lab in labels.lout]
        copy.lin = [list(lab) for lab in labels.lin]
        if labels._out_masks is not None:
            copy.attach_masks(list(labels._out_masks), list(labels._in_masks))
        else:
            copy.seal()
        self._labels = copy
        self._rank = list(index.rank)
        self._order_list = list(index.order_list)
        self._base_size = max(1, index.index_size_ints())
        self._inserts_since_rebuild = 0
        return True

    # ------------------------------------------------------------------
    def _rebuild_from_graph(self) -> None:
        frozen = self._graph.copy().freeze()
        dl = DistributionLabeling(frozen, order=self._order)
        self._labels = dl.labels
        self._rank = dl.rank
        self._order_list = dl.order_list
        self._base_size = max(1, dl.index_size_ints())
        self._inserts_since_rebuild = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._graph.n

    @property
    def m(self) -> int:
        """Edge count of the ghost graph (tombstoned edges included)."""
        return self._graph.m

    @property
    def live_m(self) -> int:
        """Edge count with tombstoned edges excluded."""
        return self._graph.m - len(self._removed)

    @property
    def graph(self) -> DiGraph:
        """The oracle's own (mutable) *ghost* graph copy.

        Inserted edges are present; tombstoned edges are **still
        present** (the labels are exact for this graph — that is the
        tombstone invariant).  Read-only by contract: mutate it through
        :meth:`insert_edge` / :meth:`remove_edge` only, or the labels
        silently go stale.  The incremental compiler reads it to
        recompute the engine's graph certificates at publish time.
        """
        return self._graph

    @property
    def labels(self):
        """The live :class:`~repro.core.labels.LabelSet` (rank space)."""
        return self._labels

    @property
    def rank(self) -> List[int]:
        """Vertex -> rank map of the last (re)build."""
        return self._rank

    @property
    def order_list(self) -> List[int]:
        """Rank -> vertex map (the DL hop->vertex witness table)."""
        return self._order_list

    @property
    def tombstones(self) -> List[Tuple[int, int]]:
        """Currently tombstoned edges, sorted (deterministic)."""
        return sorted(self._removed)

    def is_tombstoned(self, u: int, v: int) -> bool:
        """Whether edge ``u -> v`` is currently tombstoned."""
        return (u, v) in self._removed

    @property
    def dirt_ratio(self) -> float:
        """Tombstoned fraction of the ghost edge set.

        The live tier compares this against its recompile threshold;
        :meth:`compact` resets it to zero.
        """
        return len(self._removed) / max(1, self._graph.m)

    def _label_reach(self, u: int, v: int) -> bool:
        """Reflexive reachability in ghost (label) space."""
        return u == v or self._labels.query(u, v)

    def tombstone_filter(self) -> TombstoneFilter:
        """The (cached) query-time corrector for the current tombstones."""
        f = self._filter
        if f is None:
            removed = self._removed
            out_adj = self._graph.out_adj

            def neighbors(w, _out=out_adj, _removed=removed):
                for x in _out[w]:
                    if (w, x) not in _removed:
                        yield x

            f = TombstoneFilter(sorted(removed), self._label_reach, neighbors)
            self._filter = f
        return f

    def live_out_adj(self) -> List[List[int]]:
        """Forward adjacency with tombstoned edges filtered out."""
        if not self._removed:
            return self._graph.out_adj
        removed = self._removed
        return [
            [x for x in row if (w, x) not in removed]
            for w, row in enumerate(self._graph.out_adj)
        ]

    def query(self, u: int, v: int) -> bool:
        """Whether ``u`` currently reaches ``v`` (tombstone-aware)."""
        if u == v:
            return True
        # Edge inserts only mutate Lin lists; the sealed Lout mirror
        # built at (re)build time stays valid throughout.
        if not self._labels.query(u, v):
            return False
        if not self._removed:
            return True
        return self.tombstone_filter().check(u, v)

    def query_batch(self, pairs: Iterable[Tuple[int, int]]) -> List[bool]:
        """Vectorised :meth:`query`."""
        return [self.query(u, v) for u, v in pairs]

    def index_size_ints(self) -> int:
        """Current label size in stored integers."""
        return self._labels.size_ints()

    # ------------------------------------------------------------------
    # Updates: insertion
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> bool:
        """Insert edge ``u -> v``; returns True if reachability changed.

        This is the sequential reference path; :meth:`insert_edges` is
        property-tested to produce bit-identical labels for whole
        batches.

        Raises
        ------
        ValueError
            If the edge would create a cycle (``v`` already reaches
            ``u``) or is a self-loop.
        """
        if u == v:
            raise ValueError("self-loops are not allowed in a DAG oracle")
        if (u, v) in self._removed:
            # Resurrection: the ghost edge never left the graph and the
            # labels still cover it — dropping the tombstone is the
            # whole update.
            changed = not self.query(u, v)
            self._removed.discard((u, v))
            self._filter = None
            self._counters["resurrected"] += 1
            return changed
        if self._label_reach(v, u):
            if not self._removed or self.query(v, u):
                raise ValueError(f"inserting {u}->{v} would create a cycle")
            # The cycle exists only through tombstoned ghost edges:
            # compact them away and retry against clean labels.
            self.compact()
            return self.insert_edge(u, v)
        already_reachable = self._label_reach(u, v)
        live_already = already_reachable and (
            not self._removed or self.query(u, v)
        )
        self._graph.add_edge(u, v)
        if already_reachable:
            # The edge adds no new ghost pairs; labels stay valid.  It
            # may still create *live* pairs when tombstones hid the old
            # path — the tombstone filter's BFS sees the new edge.
            self._counters["noop"] += 1
            return not live_already

        # Flood Lin(u) ∪ {u} into every descendant of v.
        addition = merge_sorted(self._labels.lin[u], [self._rank[u]])
        add_mask = 0
        for h in addition:
            add_mask |= 1 << h
        labels = self._labels
        lin = labels.lin
        out_adj = self._graph.out_adj
        seen = {v}
        frontier = [v]
        qi = 0
        while qi < len(frontier):
            w = frontier[qi]
            qi += 1
            lin[w] = merge_sorted(lin[w], addition)
            # Keep the sealed bigint mask coherent with the merged list.
            labels.or_in_mask(w, add_mask)
            for x in out_adj[w]:
                if x not in seen:
                    seen.add(x)
                    frontier.append(x)

        self._counters["novel"] += 1
        self._counters["frontier_vertices"] += len(frontier)
        self._counters["labels_merged"] += len(frontier)
        self._inserts_since_rebuild += 1
        if (
            self.auto_rebuild_factor
            and self.index_size_ints() > self.auto_rebuild_factor * self._base_size
        ):
            self.rebuild()
        return True

    def insert_edges(
        self, edges: Iterable[Tuple[int, int]], backend: Optional[str] = None
    ) -> Dict[str, object]:
        """Insert a whole edge stream in one batched sweep.

        Classifies every edge up front, then applies all novel-edge
        label deltas with ONE multi-source flood and vectorized merges
        (:mod:`repro.kernels.dynamic`).  The result is bit-identical to
        replaying :meth:`insert_edge` in stream order (with rebuilds
        disabled; an auto-rebuild collapses both paths to the same
        minimal labeling anyway, deferred here to the end of the
        batch).

        Stream-atomic on rejection: a self-loop raises ``ValueError``
        and a cycle raises :class:`CycleInBatch` (carrying the stream
        index) *before anything is applied*, unlike the sequential
        loop which would stop mid-stream.

        Returns a per-edge classification summary::

            {"edges", "novel", "noop", "duplicate", "resurrected",
             "changed", "backend", "frontier_vertices", "patterns",
             "auto_rebuilt"}

        A fully no-op batch (all duplicate / already-reachable) leaves
        the label generation untouched, so downstream snapshot reuse
        (batch-engine arenas, packed artifact sections) stays valid.
        """
        items = [(int(u), int(v)) for u, v in edges]
        summary: Dict[str, object] = {
            "edges": len(items),
            "novel": 0,
            "noop": 0,
            "duplicate": 0,
            "resurrected": 0,
            "changed": 0,
            "backend": "python",
            "frontier_vertices": 0,
            "patterns": 0,
            "auto_rebuilt": False,
        }
        self._counters["batches"] += 1
        if not items:
            return summary

        mode = resolve_backend(
            backend if backend is not None else self._backend, n=self._graph.n
        )
        np_mod = numpy_or_none() if mode == "numpy" else None
        summary["backend"] = mode

        # Classify against pre-batch labels (+ batch closure); nothing
        # is applied until the whole stream is accepted.  A cycle that
        # exists only through tombstoned edges is retried once after a
        # compact.
        for attempt in (0, 1):
            resurrect: Dict[int, bool] = {}
            pending = set()
            for t, e in enumerate(items):
                if e in self._removed and e not in pending:
                    pending.add(e)
                    resurrect[t] = True
            try:
                kinds, novel_idx = classify_batch(
                    items, self._labels, self._graph.has_edge, np=np_mod
                )
                break
            except CycleInBatch:
                if attempt or not self._removed:
                    raise
                self.compact()

        counters = self._counters
        changed = 0
        for t, (u, v) in enumerate(items):
            if resurrect.get(t):
                if not self.query(u, v):
                    changed += 1
                self._removed.discard((u, v))
                self._filter = None
                summary["resurrected"] += 1
                counters["resurrected"] += 1
                continue
            kind = kinds[t]
            if kind == "noop" and self._removed and not self.query(u, v):
                # Ghost-reachable but live-unreachable: the new edge
                # changes live answers even though labels stay put.
                changed += 1
            self._graph.add_edge(u, v)
            summary[kind] += 1
            counters[kind] += 1

        novel_idx = [t for t in novel_idx if not resurrect.get(t)]
        if not novel_idx:
            summary["changed"] = changed
            return summary

        novel_edges = [items[t] for t in novel_idx]
        # Pre-batch additions: by the confluence argument (see
        # repro.kernels.dynamic) flooding each novel edge's *old*
        # Lin(u) ∪ {rank(u)} over its final-graph descendant cone
        # reaches the exact sequential fixpoint.
        additions = []
        add_masks = []
        for bu, _ in novel_edges:
            lst = merge_sorted(self._labels.lin[bu], [self._rank[bu]])
            m = 0
            for h in lst:
                m |= 1 << h
            additions.append(lst)
            add_masks.append(m)

        if np_mod is not None:
            stats = flood_batch_numpy(
                np_mod, self._graph, novel_edges, additions, add_masks, self._labels
            )
        else:
            stats = flood_batch_python(
                self._graph.out_adj, novel_edges, additions, add_masks, self._labels
            )
        changed += len(novel_edges)
        summary["changed"] = changed
        summary["frontier_vertices"] = stats["frontier_vertices"]
        summary["patterns"] = stats["patterns"]
        counters["frontier_vertices"] += stats["frontier_vertices"]
        counters["labels_merged"] += stats["labels_merged"]
        counters["patterns"] += stats["patterns"]

        self._inserts_since_rebuild += len(novel_edges)
        if (
            self.auto_rebuild_factor
            and self.index_size_ints() > self.auto_rebuild_factor * self._base_size
        ):
            self.rebuild()
            summary["auto_rebuilt"] = True
        return summary

    # ------------------------------------------------------------------
    # Updates: deletion
    # ------------------------------------------------------------------
    def remove_edge(self, u: int, v: int) -> bool:
        """Tombstone edge ``u -> v``; returns True if live reachability changed.

        The edge stays in the ghost graph (labels remain exact for it)
        and joins the tombstone set checked at query time.  Removing an
        edge can only *destroy* reachability, so the changed test is a
        single live probe of the endpoints: if ``u`` still reaches
        ``v`` through other live edges, no pair changed at all.

        Raises
        ------
        ValueError
            If the edge is not (live) in the graph.
        """
        edge = (int(u), int(v))
        if not self._graph.has_edge(*edge) or edge in self._removed:
            raise ValueError(f"edge {u}->{v} is not in the live graph")
        self._removed.add(edge)
        self._filter = None
        self._counters["removals"] += 1
        changed = not self.query(*edge)
        if not changed:
            self._counters["removals_redundant"] += 1
        return changed

    def compact(self) -> int:
        """Physically drop tombstones and rebuild minimal labels.

        Returns the number of edges dropped.  After a compact the
        labels are exact for the live graph again and ``dirt_ratio``
        is zero; the live tier calls this (in a background thread)
        once the dirt ratio crosses its recompile threshold.
        """
        if not self._removed:
            return 0
        dropped = len(self._removed)
        for edge in self._removed:
            self._graph.remove_edge(*edge)
        self._removed.clear()
        self._filter = None
        self._counters["compacts"] += 1
        self._rebuild_from_graph()
        return dropped

    def rebuild(self) -> None:
        """Recompute the minimal static DL labeling for the ghost graph."""
        self._rebuild_from_graph()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Current oracle statistics (update-path counters included)."""
        return {
            "method": "DynamicDL",
            "n": self._graph.n,
            "m": self._graph.m,
            "live_m": self.live_m,
            "tombstones": len(self._removed),
            "dirt_ratio": self.dirt_ratio,
            "index_size_ints": self.index_size_ints(),
            "inserts_since_rebuild": self._inserts_since_rebuild,
            "size_at_last_rebuild": self._base_size,
            "updates": dict(self._counters),
        }

    def __repr__(self) -> str:
        return (
            f"DynamicDL(n={self._graph.n}, m={self._graph.m}, "
            f"ints={self.index_size_ints()})"
        )
