"""Vertex ranking strategies.

Distribution-Labeling replaces the recursive hierarchy with "the simplest
hierarchy — a total order" (§5).  The paper's chosen rank function is the
degree product ``(|Nout(v)|+1) × (|Nin(v)|+1)``, which counts the vertex
pairs at distance ≤ 2 covered by ``v``; the same criterion is used by
SCARAB for backbone selection.

Alternative orders are provided for the rank-function ablation
(``benchmarks/bench_ablation_rank.py``): degree sum, random, and
topological-position orders.  All orders are *descending by importance*:
``order[0]`` is the most important vertex (processed first / highest
hierarchy level).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from ..graph.digraph import DiGraph
from ..graph.topo import topological_order

__all__ = ["degree_product_order", "degree_sum_order", "random_order", "topo_center_order", "get_order"]


def _mix(v: int) -> int:
    """Deterministic integer hash used to break rank ties.

    Breaking ties by raw vertex id is pathological on chain-shaped
    graphs (sequential hop order on a path yields Θ(n²) total label
    size); a Knuth multiplicative scramble makes tied runs behave like a
    random order (expected logarithmic labels on paths) while staying
    fully deterministic.
    """
    return (v * 2654435761) & 0xFFFFFFFF


def degree_product_order(graph: DiGraph, seed: int = 0) -> List[int]:
    """The paper's rank: ``(|Nout|+1)(|Nin|+1)`` descending.

    The +1 terms count the vertex itself as a trivial endpoint, so a pure
    source or sink still ranks above an isolated vertex.  Ties are broken
    by a deterministic hash (see :func:`_mix`).

    Keys are materialised as tuples and sorted without a key callable —
    one comprehension plus a C-level tuple sort instead of 2n method
    calls through a Python key function.
    """
    out_adj = graph.out_adj
    in_adj = graph.in_adj
    keyed = [
        (-(len(out_adj[v]) + 1) * (len(in_adj[v]) + 1), _mix(v), v)
        for v in range(graph.n)
    ]
    keyed.sort()
    return [k[2] for k in keyed]


def degree_sum_order(graph: DiGraph, seed: int = 0) -> List[int]:
    """Rank by total degree, descending (a common cheap alternative)."""
    def key(v: int):
        return (-(graph.out_degree(v) + graph.in_degree(v)), _mix(v), v)

    return sorted(graph.vertices(), key=key)


def random_order(graph: DiGraph, seed: int = 0) -> List[int]:
    """Uniformly random order (ablation control)."""
    order = list(graph.vertices())
    random.Random(seed).shuffle(order)
    return order


def topo_center_order(graph: DiGraph, seed: int = 0) -> List[int]:
    """Middle-out topological order.

    Vertices near the middle of the topological order tend to lie on many
    source-to-sink paths; this order processes them first.  Included to
    show the degree product is not the only structure-aware choice.
    """
    topo = topological_order(graph)
    if topo is None:
        raise ValueError("topo_center_order requires a DAG")
    n = len(topo)
    mid = (n - 1) / 2.0
    pos = [0] * n
    for i, v in enumerate(topo):
        pos[v] = i
    return sorted(graph.vertices(), key=lambda v: (abs(pos[v] - mid), v))


_ORDERS: Dict[str, Callable[[DiGraph, int], List[int]]] = {
    "degree_product": degree_product_order,
    "degree_sum": degree_sum_order,
    "random": random_order,
    "topo_center": topo_center_order,
}


def get_order(name: str) -> Callable[[DiGraph, int], List[int]]:
    """Look up an order strategy by name."""
    try:
        return _ORDERS[name]
    except KeyError:
        known = ", ".join(sorted(_ORDERS))
        raise KeyError(f"unknown order {name!r}; known: {known}") from None
