"""Hierarchical-Labeling (HL) — Algorithm 1 of the paper (§4).

HL labels vertices level by level over the hierarchical DAG decomposition
(:func:`repro.core.backbone.hierarchical_decomposition`):

1. **Core graph** ``Gh``: the decomposition stops once ``|Vh|`` is small
   (the paper: "practically, the decomposition can be stopped when the
   vertex set Vh is small enough ... instead of making its diameter less
   than or equal to ε", in which case an existing labeling algorithm is
   applied).  We label the core with Distribution-Labeling, which is
   complete for any core, then translate the hops to original ids.
2. **Level i = h-1 … 0** (Formulas 4-5): each vertex ``v ∈ Vi \\ Vi+1``
   receives::

       Lout(v) = N^{⌈ε/2⌉}out(v|Gi)  ∪  ⋃ { Lout(u) : u ∈ Bεout(v|Gi) }
       Lin(v)  = N^{⌈ε/2⌉}in(v|Gi)   ∪  ⋃ { Lin(u)  : u ∈ Bεin(v|Gi) }

   i.e. its ⌈ε/2⌉-step neighbourhood *within the level graph* plus the
   already-computed labels of its backbone vertex set.  For the default
   ε = 2 the neighbourhood is just the vertex and its direct neighbours
   in ``Gi``.

Completeness is Theorem 1 of the paper; the labeling is generally *not*
non-redundant (the paper's own counter-example), which is why DL tends to
produce smaller labels — our Figure 3/4 benchmarks reproduce that gap.

The TF-label baseline (:mod:`repro.baselines.tflabel`) reuses this class
with ``eps=1``, the special case the paper identifies with [11].
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..graph.digraph import DiGraph
from .backbone import Hierarchy, hierarchical_decomposition
from .base import ReachabilityIndex, register_method
from .distribution import distribution_labels
from .labels import LabelSet, first_common_hop
from .order import get_order

__all__ = ["HierarchicalLabeling", "hierarchical_labels"]


def hierarchical_labels(
    hierarchy: Hierarchy,
    order_name: str = "degree_product",
    seed: int = 0,
    backend: Optional[str] = None,
) -> LabelSet:
    """Compute HL labels (in original vertex ids) for a decomposition.

    ``backend`` is forwarded to the core Distribution-Labeling run and
    selects the level-fold implementation (scalar ``set.update`` vs the
    batched unique-union kernel in :mod:`repro.kernels.hl` — identical
    labels either way).
    """
    from ..kernels import numpy_or_none, resolve_backend

    if not hierarchy.levels:
        # Degenerate: the whole graph is the core.
        return _core_labels(hierarchy, order_name, seed, backend)

    n0 = hierarchy.levels[0].graph.n
    labels = LabelSet(n0)

    core = _core_labels(hierarchy, order_name, seed, backend)
    for j, orig in enumerate(hierarchy.orig_of_core):
        labels.lout[orig] = core.lout[j]
        labels.lin[orig] = core.lin[j]

    # Level-wise labeling, higher levels first (Algorithm 1, lines 4-10).
    np = numpy_or_none()
    for level_idx in range(hierarchy.height - 1, -1, -1):
        level = hierarchy.levels[level_idx]
        orig_of = hierarchy.orig_of_level[level_idx]
        gi = level.graph
        in_backbone = set(level.backbone_vertices)
        plain = [v for v in gi.vertices() if v not in in_backbone]
        if np is not None and resolve_backend(backend, gi.n) == "numpy":
            from ..kernels.hl import fold_level_numpy

            folded_out = fold_level_numpy(
                np, plain, gi.out_adj, level.bout, orig_of, labels.lout, n0
            )
            folded_in = fold_level_numpy(
                np, plain, gi.in_adj, level.bin_, orig_of, labels.lin, n0
            )
            for v, lo, li in zip(plain, folded_out, folded_in):
                orig_v = orig_of[v]
                labels.lout[orig_v] = lo
                labels.lin[orig_v] = li
            continue
        for v in plain:
            orig_v = orig_of[v]
            labels.lout[orig_v] = _fold(
                gi.out(v), v, level.bout[v], orig_of, labels.lout
            )
            labels.lin[orig_v] = _fold(
                gi.inn(v), v, level.bin_[v], orig_of, labels.lin
            )
    return labels


def _fold(
    neighbours, v: int, bset: List[int], orig_of: List[int], side: List[List[int]]
) -> List[int]:
    """Formula 4/5 for one vertex: neighbourhood ∪ backbone labels.

    The unions run through C-level ``set.update`` / ``map`` so the fold
    cost is dominated by the label sizes, not interpreter dispatch.
    """
    merged = {orig_of[v]}
    merged.update(map(orig_of.__getitem__, neighbours))
    for u in bset:
        merged.update(side[orig_of[u]])
    return sorted(merged)


def _core_labels(
    hierarchy: Hierarchy, order_name: str, seed: int, backend: Optional[str] = None
) -> LabelSet:
    """Label the core graph with DL, hops translated to original ids."""
    core_graph = hierarchy.core_graph
    order_fn = get_order(order_name)
    order_list = order_fn(core_graph, seed)
    core_rank_labels, _rank = distribution_labels(
        core_graph, order_list, backend=backend
    )
    orig_of_core = hierarchy.orig_of_core
    translated = LabelSet(core_graph.n)
    for j in range(core_graph.n):
        translated.lout[j] = sorted(
            orig_of_core[order_list[h]] for h in core_rank_labels.lout[j]
        )
        translated.lin[j] = sorted(
            orig_of_core[order_list[h]] for h in core_rank_labels.lin[j]
        )
    return translated


@register_method
class HierarchicalLabeling(ReachabilityIndex):
    """Hierarchical-Labeling reachability oracle (paper §4, ``HL``).

    Parameters
    ----------
    graph:
        The DAG to index.
    eps:
        Locality threshold of the backbone hierarchy (paper default 2).
    core_limit:
        Stop decomposing once the level graph has at most this many
        vertices; the core is labeled directly.
    max_levels:
        Upper bound on the number of decomposition steps (the paper
        suggests bounding ``h``; level counts of 5-6 are typical at ε=2).
    order:
        Rank strategy used for backbone selection and core labeling.
    backend:
        ``"python"`` / ``"numpy"`` / ``"auto"`` (``None`` defers to
        ``REPRO_BACKEND``).  The numpy backend batches the backbone
        decomposition (:mod:`repro.kernels.backbone`); labels are
        bit-identical either way.

    Examples
    --------
    >>> from repro.graph.generators import path_dag
    >>> hl = HierarchicalLabeling(path_dag(6))
    >>> hl.query(0, 5), hl.query(3, 1)
    (True, False)
    """

    short_name = "HL"
    full_name = "Hierarchical-Labeling"

    def _build(
        self,
        graph: DiGraph,
        eps: int = 2,
        core_limit: int = 64,
        max_levels: int = 16,
        order: str = "degree_product",
        seed: int = 0,
        backend: Optional[str] = None,
    ) -> None:
        order_fn = get_order(order)
        self.hierarchy = hierarchical_decomposition(
            graph,
            eps=eps,
            core_limit=core_limit,
            max_levels=max_levels,
            order_fn=order_fn,
            seed=seed,
            backend=backend,
        )
        self.labels = hierarchical_labels(
            self.hierarchy, order_name=order, seed=seed, backend=backend
        )
        # HL is static after _build, so freezing Lin behind bigint masks
        # is safe and makes sealed queries a single AND on small graphs.
        self.labels.seal(build_masks=True)

    def query(self, u: int, v: int) -> bool:
        """``u`` reaches ``v`` iff their labels share a hop (Theorem 1)."""
        return self.labels.query(u, v)

    def query_batch(self, pairs):
        """Batch fast path: the vectorized engine for large
        arena-layout batches, the single-pass scalar loop otherwise."""
        from ..kernels.batchquery import engine_query_batch

        return engine_query_batch(self, self.labels, self.graph, pairs)

    def compile(self):
        """Graph-free label artifact (hops in original vertex ids)."""
        from .compiled import CompiledLabelOracle

        return CompiledLabelOracle.from_index(self)

    def witness(self, u: int, v: int) -> Optional[int]:
        """A hop (original vertex id) certifying ``u -> v``, or ``None``."""
        return first_common_hop(self.labels.lout[u], self.labels.lin[v])

    def index_size_ints(self) -> int:
        return self.labels.size_ints()

    def stats(self) -> Dict[str, object]:
        base = super().stats()
        base.update(
            {
                "levels": self.hierarchy.level_sizes(),
                "height": self.hierarchy.height,
                "core_size": self.hierarchy.core_graph.n,
                "max_label_len": self.labels.max_label_len(),
                "avg_label_len": round(self.labels.average_label_len(), 2),
            }
        )
        return base
