"""Distribution-Labeling (DL) — Algorithm 2 of the paper (§5).

The algorithm replaces the recursive hierarchy with a total order: rank
all vertices (default: the degree product ``(|Nout|+1)(|Nin|+1)``,
descending) and *distribute* each vertex ``vi`` as a hop, from the
highest rank down:

* a **pruned reverse BFS** from ``vi`` adds ``vi`` to ``Lout(u)`` of every
  visited ancestor ``u`` — unless ``Lout(u) ∩ Lin(vi) ≠ ∅`` already, in
  which case ``u`` is neither labeled nor expanded (a higher-ranked hop
  already covers the pair, Theorem 2's ``TC⁻¹(X)`` exclusion);
* a **pruned forward BFS** symmetrically adds ``vi`` to ``Lin(w)`` of
  descendants.

Properties proved in the paper and property-tested here:

* **Completeness** (Theorem 3): ``u -> v  iff  Lout(u) ∩ Lin(v) ≠ ∅``.
* **Non-redundancy** (Theorem 4): removing any hop from any label breaks
  completeness — DL labelings are minimal in this per-entry sense, which
  is why §6 finds them *smaller than the set-cover optimised 2HOP*.

Implementation notes
--------------------
* Hops are stored as **rank indices** (0 = highest rank).  Because hops
  are distributed in rank order, every label list is automatically
  sorted, so no per-label sort pass is needed.  Queries probe the
  ``Lin`` list against a sealed frozenset mirror of ``Lout`` (see
  :meth:`repro.core.labels.LabelSet.seal` for why that beats a pure
  sorted-merge *in CPython*, inverting the paper's C++-centric advice).
* The per-hop prune test ``Lout(u) ∩ Lin(vi)`` is evaluated against a
  set snapshot of ``Lin(vi)`` (which cannot change during the reverse
  BFS), so each test costs ``O(|Lout(u)|)`` set probes.
* Worst-case construction is ``O(n (n + m) L)`` as in the paper; the
  pruning makes it near-linear on the benchmark families.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graph.digraph import DiGraph
from .base import ReachabilityIndex, register_method
from .labels import LabelSet, first_common_hop
from .order import get_order

__all__ = ["DistributionLabeling", "distribution_labels"]


def distribution_labels(
    graph: DiGraph, order: List[int]
) -> Tuple[LabelSet, List[int]]:
    """Run Algorithm 2 over ``graph`` using the given total ``order``.

    Parameters
    ----------
    graph:
        A DAG.
    order:
        All vertices, most important first; ``order[i]`` becomes hop ``i``.

    Returns
    -------
    (labels, rank):
        ``labels`` holds ``Lout/Lin`` in *rank space* (hop ``i`` means
        vertex ``order[i]``) indexed by original vertex id; ``rank[v]``
        is ``v``'s position in the order.
    """
    n = graph.n
    if len(order) != n or len(set(order)) != n:
        raise ValueError("order must be a permutation of the vertices")
    rank = [0] * n
    for i, v in enumerate(order):
        rank[v] = i

    labels = LabelSet(n)
    lout = labels.lout
    lin = labels.lin
    out_adj = graph.out_adj
    in_adj = graph.in_adj
    visited = bytearray(n)

    for hop, vi in enumerate(order):
        # ---- reverse BFS: distribute `hop` into Lout of ancestors -----
        lin_vi = set(lin[vi])
        frontier = [vi]
        visited[vi] = 1
        touched = [vi]
        qi = 0
        while qi < len(frontier):
            u = frontier[qi]
            qi += 1
            lab = lout[u]
            pruned = False
            if lin_vi:
                for h in lab:
                    if h in lin_vi:
                        pruned = True
                        break
            if pruned:
                continue
            lab.append(hop)
            for w in in_adj[u]:
                if not visited[w]:
                    visited[w] = 1
                    touched.append(w)
                    frontier.append(w)
        for u in touched:
            visited[u] = 0

        # ---- forward BFS: distribute `hop` into Lin of descendants ----
        lout_vi = set(lout[vi])
        frontier = [vi]
        visited[vi] = 1
        touched = [vi]
        qi = 0
        while qi < len(frontier):
            w = frontier[qi]
            qi += 1
            lab = lin[w]
            pruned = False
            if lout_vi:
                for h in lab:
                    if h in lout_vi:
                        # `hop` itself certifies vi -> w, it must not
                        # prune: only *higher* hops (< hop) do.
                        if h != hop:
                            pruned = True
                            break
            if pruned:
                continue
            lab.append(hop)
            for x in out_adj[w]:
                if not visited[x]:
                    visited[x] = 1
                    touched.append(x)
                    frontier.append(x)
        for w in touched:
            visited[w] = 0

    return labels, rank


@register_method
class DistributionLabeling(ReachabilityIndex):
    """Distribution-Labeling reachability oracle (paper §5, ``DL``).

    Parameters
    ----------
    graph:
        The DAG to index.
    order:
        Rank strategy name (see :mod:`repro.core.order`); default is the
        paper's ``degree_product``.
    seed:
        Seed for randomised orders (ignored by deterministic ones).

    Examples
    --------
    >>> from repro.graph.generators import path_dag
    >>> dl = DistributionLabeling(path_dag(5))
    >>> dl.query(0, 4), dl.query(4, 0)
    (True, False)
    """

    short_name = "DL"
    full_name = "Distribution-Labeling"

    def _build(self, graph: DiGraph, order: str = "degree_product", seed: int = 0) -> None:
        order_list = get_order(order)(graph, seed)
        self.labels, self.rank = distribution_labels(graph, order_list)
        self.labels.seal()
        self.order_list = order_list

    def query(self, u: int, v: int) -> bool:
        """``u`` reaches ``v`` iff their labels share a hop (Theorem 3)."""
        return self.labels.query(u, v)

    def witness(self, u: int, v: int) -> Optional[int]:
        """The highest-ranked hop vertex certifying ``u -> v`` (or None).

        Returned in *original* vertex ids; useful for explanations
        ("u reaches v through hub h").
        """
        hop = first_common_hop(self.labels.lout[u], self.labels.lin[v])
        if hop is None:
            return None
        return self.order_list[hop]

    def index_size_ints(self) -> int:
        return self.labels.size_ints()

    def stats(self) -> Dict[str, object]:
        base = super().stats()
        base.update(
            {
                "max_label_len": self.labels.max_label_len(),
                "avg_label_len": round(self.labels.average_label_len(), 2),
            }
        )
        return base
