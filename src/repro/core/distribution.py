"""Distribution-Labeling (DL) — Algorithm 2 of the paper (§5).

The algorithm replaces the recursive hierarchy with a total order: rank
all vertices (default: the degree product ``(|Nout|+1)(|Nin|+1)``,
descending) and *distribute* each vertex ``vi`` as a hop, from the
highest rank down:

* a **pruned reverse BFS** from ``vi`` adds ``vi`` to ``Lout(u)`` of every
  visited ancestor ``u`` — unless ``Lout(u) ∩ Lin(vi) ≠ ∅`` already, in
  which case ``u`` is neither labeled nor expanded (a higher-ranked hop
  already covers the pair, Theorem 2's ``TC⁻¹(X)`` exclusion);
* a **pruned forward BFS** symmetrically adds ``vi`` to ``Lin(w)`` of
  descendants.

Properties proved in the paper and property-tested here:

* **Completeness** (Theorem 3): ``u -> v  iff  Lout(u) ∩ Lin(v) ≠ ∅``.
* **Non-redundancy** (Theorem 4): removing any hop from any label breaks
  completeness — DL labelings are minimal in this per-entry sense, which
  is why §6 finds them *smaller than the set-cover optimised 2HOP*.

Implementation notes
--------------------
The inner loops below are the hottest code in the library and are shaped
by measurements recorded in ``benchmarks/BENCH_kernels.json``:

* Hops are stored as **rank indices** (0 = highest rank).  Because hops
  are distributed in rank order, every label list is automatically
  sorted, so no per-label sort pass is needed.
* The **forward sweep runs first**.  At that point ``Lout(vi)`` does not
  yet contain the self-hop, and the sweep only mutates ``Lin`` lists, so
  the prune set is a stable snapshot with no copy and no ``h != hop``
  exclusion.  The reverse sweep then prunes against ``Lin(vi) ∖ {hop}``
  (one mask op); the fresh self-hop cannot occur in any ``Lout(u)``, so
  no per-test exclusion is needed there either.  The labeling produced
  is identical to the classic reverse-first formulation.
* For ``n ≤ _BITS_LIMIT`` each vertex carries a **bigint label mask**
  and the prune test ``Lout(u) ∩ Lin(vi)`` is a single C-level ``&``;
  beyond that the masks' length would grow with ``n`` and per-hop
  frozenset snapshots with ``isdisjoint`` take over.  The masks double
  as the sealed query accelerator (:meth:`LabelSet.attach_masks`), so
  DL's seal is nearly free.
* BFS uses a **stamped visited array** (no per-sweep reset pass) and
  grows the frontier list while iterating it (CPython's list iterator
  picks up appends), which removes all queue-index bookkeeping.
* On **dense inputs** the sweeps traverse the transitive reduction
  (:func:`repro.graph.reduction.reduced_adjacency`): reachability — and,
  with it, the resulting labeling — is unchanged, but the per-sweep edge
  scans shrink by the redundancy factor.  The decision is staged
  cheapest-first (see :func:`_reduce_census`): a density check, a
  topological-span pre-filter that rejects level-structured graphs,
  and a closure-free 2-hop redundancy census — the transitive closure
  is computed only after acceptance and is handed straight to the
  reduction.
* Worst-case construction is ``O(n (n + m) L)`` as in the paper; the
  pruning makes it near-linear on the benchmark families.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..graph.digraph import DiGraph
from ..graph.reduction import reduced_adjacency
from ..graph.closure import transitive_closure_bits
from ..graph.topo import topological_order
from .base import ReachabilityIndex, register_method
from .labels import LabelSet, first_common_hop
from .order import get_order

__all__ = ["DistributionLabeling", "distribution_labels"]


#: Use bigint prune masks (and attach them as the query accelerator) for
#: graphs up to this many vertices; larger graphs fall back to per-hop
#: frozenset prune tests whose cost does not grow with n.
_BITS_LIMIT = 1 << 15

#: Below this edge density the graph is forest-like, labels are tiny, and
#: maintaining per-vertex bigints costs more than the frozenset
#: snapshots they replace (measured in BENCH_csr_speedup.json on the
#: sparse family) — the sets core takes over.
_BITS_MIN_DENSITY = 2.0

#: Consider traversing the transitive reduction only when the graph has
#: at least this many edges per vertex ...
_REDUCE_MIN_DENSITY = 8.0
#: ... and the 2-hop redundancy census over sampled multi-out-degree
#: vertices finds at least this fraction of their edges shadowed by a
#: shortcut (a *lower bound* on true redundancy, hence the low bar;
#: level-structured graphs measure exactly 0.0 here and are never
#: reduced, while the redundant dense families measure 0.13+).
_REDUCE_MIN_REDUNDANCY = 0.1
#: Number of vertices the redundancy census samples.
_REDUCE_SAMPLE = 128

#: The span pre-filter looks at this many edges.  An edge between
#: adjacent topological levels can never be redundant, so a graph whose
#: sampled edges all span one level (layered/level-structured inputs)
#: is rejected before the closure is ever computed.
_REDUCE_SPAN_SAMPLE = 2500
#: Minimum fraction of sampled edges spanning >= 2 levels to proceed.
_REDUCE_MIN_SPAN_FRAC = 0.2


def _span_prefilter(graph: DiGraph, order: List[int]) -> bool:
    """O(n + m) guard that rejects level-structured graphs cheaply.

    ``order`` is a topological order the caller already computed; the
    longest-path levels are derived from it here instead of calling
    :func:`topological_levels` (which would redo the topological sort).
    """
    levels = [0] * graph.n
    out_adj = graph.out_adj
    for u in order:
        lu = levels[u] + 1
        for w in out_adj[u]:
            if lu > levels[w]:
                levels[w] = lu
    spanning = 0
    censused = 0
    for u in range(graph.n):
        lu = levels[u] + 1
        for w in out_adj[u]:
            if levels[w] > lu:
                spanning += 1
        censused += len(out_adj[u])
        if censused >= _REDUCE_SPAN_SAMPLE:
            break
    return censused > 0 and spanning >= _REDUCE_MIN_SPAN_FRAC * censused


#: Per-sampled-vertex cap on neighbours examined by the 2-hop census
#: (bounds its cost at O(sample · cap²) O(1) edge-set probes).
_REDUCE_CENSUS_NEIGHBOURS = 16


def _sampled_redundancy(graph: DiGraph) -> float:
    """Closure-free lower bound on the redundant-edge fraction.

    Samples up to ``_REDUCE_SAMPLE`` vertices with out-degree >= 2
    (strided across the vertex range) and counts out-edges ``(u, w)``
    shadowed by a length-2 path ``u -> w' -> w`` through another
    out-neighbour — each test is one O(1) edge-set probe.  Longer-range
    redundancy is invisible here, which only makes the predictor
    conservative; graphs dense enough to profit from
    reduction-traversal show plenty of 2-hop shortcuts.
    """
    n = graph.n
    censused = 0
    redundant = 0
    sampled = 0
    stride = max(1, n // _REDUCE_SAMPLE)
    out_adj = graph.out_adj
    for u in range(0, n, stride):
        nbrs = out_adj[u][:_REDUCE_CENSUS_NEIGHBOURS]
        if len(nbrs) < 2:
            continue
        sampled += 1
        censused += len(nbrs)
        for w in nbrs:
            for w2 in nbrs:
                if w2 != w and (w2, w) in graph:
                    redundant += 1
                    break
        if sampled >= _REDUCE_SAMPLE:
            break
    if censused == 0:
        return 0.0
    return redundant / censused


def _reduce_census(graph: DiGraph) -> Optional[List[int]]:
    """The reduce-predictor decision chain; a topological order on
    accept, ``None`` on reject.

    Ordered cheapest-first: density check, one topological sort (shared
    by every later stage), the O(n + sample) span pre-filter, and the
    closure-free 2-hop redundancy census.  A rejected graph — sparse,
    oversized, cyclic, level-structured, or simply not redundant —
    never pays the closure's O(n·m/64) bigint cost.
    """
    n, m = graph.n, graph.m
    if n == 0 or n > _BITS_LIMIT or m / n < _REDUCE_MIN_DENSITY:
        return None
    order = topological_order(graph)
    if order is None:
        # Cyclic input: nothing to reduce; the sweeps handle it the
        # same way the classic formulation did.
        return None
    if not _span_prefilter(graph, order):
        return None
    if _sampled_redundancy(graph) < _REDUCE_MIN_REDUNDANCY:
        return None
    return order


def _should_reduce(graph: DiGraph) -> bool:
    """Whether reduction-traversal will pay off (exposed for tests)."""
    return _reduce_census(graph) is not None


def _prepare_reduction(graph: DiGraph):
    """``(order, tc)`` for the auto-reduce path, or ``None`` when
    :func:`_reduce_census` rejects the graph.  The closure is computed
    only after acceptance, and is handed on to the reduction."""
    order = _reduce_census(graph)
    if order is None:
        return None
    return order, transitive_closure_bits(graph, order)


#: DL's numpy construction kernel is only taken when the caller forces
#: ``backend="numpy"``: the ``backend_crossover`` sweep in
#: ``benchmarks/bench_kernels.py`` measures the scalar bigint sweeps
#: ahead at every size and density tried (2n sweeps × per-level array
#: dispatch overhead never amortizes against CPython loops that are
#: already C-heavy), so ``"auto"`` always picks the scalar core here.
#: The kernel still earns its keep as the bit-identical substrate the
#: forced-backend CI axis and the equivalence suite exercise.


def distribution_labels(
    graph: DiGraph,
    order: List[int],
    reduce: Optional[bool] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> Tuple[LabelSet, List[int]]:
    """Run Algorithm 2 over ``graph`` using the given total ``order``.

    Parameters
    ----------
    graph:
        A DAG.
    order:
        All vertices, most important first; ``order[i]`` becomes hop ``i``.
    reduce:
        Traverse the transitive reduction instead of the full edge set
        (the labeling is unchanged).  ``None`` (default) decides
        automatically via :func:`_should_reduce`.
    backend:
        ``"python"`` / ``"numpy"`` / ``"auto"`` (``None`` defers to
        ``REPRO_BACKEND``, then ``"auto"``).  ``"numpy"`` forces the
        frontier-at-a-time kernel with chunked ``uint64`` prune bitsets
        (:mod:`repro.kernels.distribute`); ``"auto"`` keeps the scalar
        core, which the ``backend_crossover`` sweep measures faster for
        DL at every size (queries are a different story — see
        :mod:`repro.kernels.batchquery`).
    workers:
        Shard the construction over this many forked worker processes
        (:mod:`repro.kernels.sharded`); ``None`` defers to
        ``REPRO_WORKERS`` (default 1 = in-process).

    Every backend/worker combination produces the same labeling — the
    canonical one — bit for bit; the knobs are purely about speed.

    Returns
    -------
    (labels, rank):
        ``labels`` holds ``Lout/Lin`` in *rank space* (hop ``i`` means
        vertex ``order[i]``) indexed by original vertex id; ``rank[v]``
        is ``v``'s position in the order.  On the bigint path the labels
        arrive already mask-sealed (``attach_masks``); on the large-n
        sets path they are returned unsealed.
    """
    from ..kernels import (
        default_workers,
        numpy_or_none,
        requested_backend,
        resolve_backend,
    )

    n = graph.n
    if len(order) != n or len(set(order)) != n:
        raise ValueError("order must be a permutation of the vertices")
    rank = [0] * n
    for i, v in enumerate(order):
        rank[v] = i

    out_adj, in_adj = graph.out_adj, graph.in_adj
    if reduce is None:
        prepared = _prepare_reduction(graph)
        if prepared is not None:
            # Reuse the predictor's topological order and closure.
            out_adj, in_adj = reduced_adjacency(graph, *prepared)
    elif reduce:
        out_adj, in_adj = reduced_adjacency(graph)

    if workers is None:
        workers = default_workers()
    use_bits = 0 < n <= _BITS_LIMIT and graph.m / n >= _BITS_MIN_DENSITY

    labels = LabelSet(n)
    if workers > 1 and n:
        from ..kernels.sharded import distribute_labels_sharded

        distribute_labels_sharded(labels, order, out_adj, in_adj, workers)
        if use_bits:
            # Same sealed state the bigint path reaches via attach_masks.
            labels.seal(build_masks=True)
        return labels, rank

    if requested_backend(backend) == "numpy" and resolve_backend(backend, n) == "numpy":
        from ..kernels.distribute import distribute_labels_numpy, fits_numpy_masks

        if fits_numpy_masks(n):
            csr_np = (
                graph.csr().as_numpy() if out_adj is graph.out_adj else None
            )
            out_masks, in_masks = distribute_labels_numpy(
                numpy_or_none(), labels, order, out_adj, in_adj, csr_np
            )
            if use_bits:
                labels.attach_masks(out_masks, in_masks)
            return labels, rank

    if use_bits:
        out_masks, in_masks = _distribute_bits(labels, order, out_adj, in_adj)
        # The pruning bitsets double as the sealed-query masks:
        # attach_masks seals the labels around them for free.
        labels.attach_masks(out_masks, in_masks)
    else:
        _distribute_sets(labels, order, out_adj, in_adj)
    return labels, rank


def _distribute_bits(labels, order, out_adj, in_adj):
    """Sweep loop with bigint prune masks; returns ``(out_masks, in_masks)``."""
    n = labels.n
    lout, lin = labels.lout, labels.lin
    obits = [0] * n
    ibits = [0] * n
    vis = [-1] * n
    stamp = -1
    for hop, vi in enumerate(order):
        bit = 1 << hop
        # ---- forward sweep: distribute `hop` into Lin of descendants --
        pb = obits[vi]
        stamp += 1
        frontier = [vi]
        fap = frontier.append
        vis[vi] = stamp
        if pb:
            for w in frontier:
                if pb & ibits[w]:
                    continue
                lin[w].append(hop)
                ibits[w] |= bit
                for x in out_adj[w]:
                    if vis[x] != stamp:
                        vis[x] = stamp
                        fap(x)
        else:
            for w in frontier:
                lin[w].append(hop)
                ibits[w] |= bit
                for x in out_adj[w]:
                    if vis[x] != stamp:
                        vis[x] = stamp
                        fap(x)
        # ---- reverse sweep: distribute `hop` into Lout of ancestors ---
        pb = ibits[vi] & ~bit
        stamp += 1
        frontier = [vi]
        fap = frontier.append
        vis[vi] = stamp
        if pb:
            for u in frontier:
                if pb & obits[u]:
                    continue
                lout[u].append(hop)
                obits[u] |= bit
                for w in in_adj[u]:
                    if vis[w] != stamp:
                        vis[w] = stamp
                        fap(w)
        else:
            for u in frontier:
                lout[u].append(hop)
                obits[u] |= bit
                for w in in_adj[u]:
                    if vis[w] != stamp:
                        vis[w] = stamp
                        fap(w)
    return obits, ibits


def _distribute_sets(labels, order, out_adj, in_adj):
    """Sweep loop with per-hop frozenset prune snapshots (large n)."""
    n = labels.n
    lout, lin = labels.lout, labels.lin
    vis = [-1] * n
    stamp = -1
    for hop, vi in enumerate(order):
        # ---- forward sweep (Lout(vi) is a stable snapshot here) -------
        pset = frozenset(lout[vi])
        stamp += 1
        frontier = [vi]
        fap = frontier.append
        vis[vi] = stamp
        if pset:
            disjoint = pset.isdisjoint
            for w in frontier:
                lab = lin[w]
                if disjoint(lab):
                    lab.append(hop)
                    for x in out_adj[w]:
                        if vis[x] != stamp:
                            vis[x] = stamp
                            fap(x)
        else:
            for w in frontier:
                lin[w].append(hop)
                for x in out_adj[w]:
                    if vis[x] != stamp:
                        vis[x] = stamp
                        fap(x)
        # ---- reverse sweep (drop the fresh self-hop from the snapshot)
        pset = set(lin[vi])
        pset.discard(hop)
        stamp += 1
        frontier = [vi]
        fap = frontier.append
        vis[vi] = stamp
        if pset:
            disjoint = pset.isdisjoint
            for u in frontier:
                lab = lout[u]
                if disjoint(lab):
                    lab.append(hop)
                    for w in in_adj[u]:
                        if vis[w] != stamp:
                            vis[w] = stamp
                            fap(w)
        else:
            for u in frontier:
                lout[u].append(hop)
                for w in in_adj[u]:
                    if vis[w] != stamp:
                        vis[w] = stamp
                        fap(w)


@register_method
class DistributionLabeling(ReachabilityIndex):
    """Distribution-Labeling reachability oracle (paper §5, ``DL``).

    Parameters
    ----------
    graph:
        The DAG to index.
    order:
        Rank strategy name (see :mod:`repro.core.order`); default is the
        paper's ``degree_product``.
    seed:
        Seed for randomised orders (ignored by deterministic ones).
    reduce:
        Traverse the transitive reduction during construction
        (``None`` = auto).  Purely a construction-speed knob; the
        resulting labeling is identical.
    backend:
        Construction backend (see :func:`distribution_labels`); also a
        speed knob, the labeling is identical.
    workers:
        Shard the construction over forked worker processes; identical
        labels for any count.

    Examples
    --------
    >>> from repro.graph.generators import path_dag
    >>> dl = DistributionLabeling(path_dag(5))
    >>> dl.query(0, 4), dl.query(4, 0)
    (True, False)
    """

    short_name = "DL"
    full_name = "Distribution-Labeling"

    def _build(
        self,
        graph: DiGraph,
        order: str = "degree_product",
        seed: int = 0,
        reduce: Optional[bool] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        order_list = get_order(order)(graph, seed)
        self.labels, self.rank = distribution_labels(
            graph, order_list, reduce=reduce, backend=backend, workers=workers
        )
        if not self.labels.sealed:
            # The bigint core arrives mask-sealed via attach_masks; the
            # large-n sets core leaves sealing (hybrid mirrors) to us.
            self.labels.seal()
        self.order_list = order_list

    def query(self, u: int, v: int) -> bool:
        """``u`` reaches ``v`` iff their labels share a hop (Theorem 3)."""
        return self.labels.query(u, v)

    def query_batch(self, pairs: Iterable[Tuple[int, int]]) -> List[bool]:
        """Batch fast path: the vectorized engine for large
        arena-layout batches, the single-pass scalar loop otherwise."""
        from ..kernels.batchquery import engine_query_batch

        return engine_query_batch(self, self.labels, self.graph, pairs)

    def compile(self):
        """Graph-free label artifact (hops stay in rank space)."""
        from .compiled import CompiledLabelOracle

        return CompiledLabelOracle.from_index(self, rank_space=True)

    def witness(self, u: int, v: int) -> Optional[int]:
        """The highest-ranked hop vertex certifying ``u -> v`` (or None).

        Returned in *original* vertex ids; useful for explanations
        ("u reaches v through hub h").
        """
        hop = first_common_hop(self.labels.lout[u], self.labels.lin[v])
        if hop is None:
            return None
        return self.order_list[hop]

    def index_size_ints(self) -> int:
        return self.labels.size_ints()

    def stats(self) -> Dict[str, object]:
        base = super().stats()
        base.update(
            {
                "max_label_len": self.labels.max_label_len(),
                "avg_label_len": round(self.labels.average_label_len(), 2),
            }
        )
        return base
