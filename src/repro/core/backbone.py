"""One-side reachability backbone (SCARAB FastCover) and DAG hierarchy.

Definition 1 of the paper (imported from SCARAB [23]): given a DAG ``G``
and locality threshold ``ε``, a one-side reachability backbone
``G* = (V*, E*)`` satisfies

1. for every pair ``(u, v)`` with ``d(u, v) = ε`` there is ``v* ∈ V*``
   with ``d(u, v*) ≤ ε`` and ``d(v*, v) ≤ ε``;
2. ``E*`` links backbone pairs with ``d(u*, v*) ≤ ε + 1`` (with a
   domination rule that drops ``(u*, v*)`` when an intermediate backbone
   vertex ``x`` has ``d(u*, x) ≤ ε`` and ``d(x, v*) ≤ ε``).

Key consequences (Lemma 1): reachability between backbone vertices is
preserved in ``G*``, and every non-local reachable pair routes through a
backbone entry/exit within ``ε``.

Cover construction
------------------
* ``ε = 2``: every length-2 path ``u -> x -> w`` must have one of
  ``{u, x, w}`` in ``V*`` (any of the three satisfies condition 1).  We
  run a single **midpoint pass** in descending rank order: ``x`` joins
  ``V*`` if it still has an in-neighbour and an out-neighbour outside
  ``V*``.  If ``x`` is skipped, every 2-path through ``x`` is already
  endpoint-covered, and stays covered because ``V*`` only grows.
* ``ε = 1``: condition 1 degenerates to a **vertex cover** (Example 4.1
  of the paper); we take the greedy cover in rank order.  This is also
  how the TF-label special case builds its folding hierarchy.

The recursive application of the extraction yields the *hierarchical DAG
decomposition* of Definition 2 (:func:`hierarchical_decomposition`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from ..graph.digraph import DiGraph
from .order import degree_product_order

__all__ = [
    "extract_cover",
    "BackboneLevel",
    "build_backbone_level",
    "Hierarchy",
    "hierarchical_decomposition",
]

OrderFn = Callable[[DiGraph, int], List[int]]


# ----------------------------------------------------------------------
# Cover extraction (condition 1)
# ----------------------------------------------------------------------
def extract_cover(graph: DiGraph, eps: int, order: Sequence[int]) -> List[int]:
    """Select the backbone vertex set ``V*`` for locality ``eps``.

    Parameters
    ----------
    graph:
        The DAG ``Gi`` being decomposed.
    eps:
        Locality threshold, 1 or 2 (the paper evaluates ε=2; ε=1 is the
        TF-label special case).
    order:
        Vertex processing order, most important first.

    Returns
    -------
    list[int]
        Backbone vertices, sorted by vertex id.
    """
    if eps == 2:
        return _midpoint_two_path_cover(graph, order)
    if eps == 1:
        return _greedy_vertex_cover(graph, order)
    raise ValueError(f"eps must be 1 or 2, got {eps}")


def _midpoint_two_path_cover(graph: DiGraph, order: Sequence[int]) -> List[int]:
    """Hit every directed 2-path; see module docstring for the argument."""
    in_cover = bytearray(graph.n)
    for x in order:
        if not graph.inn(x) or not graph.out(x):
            continue
        has_free_in = any(not in_cover[u] for u in graph.inn(x))
        if not has_free_in:
            continue
        has_free_out = any(not in_cover[w] for w in graph.out(x))
        if has_free_out:
            in_cover[x] = 1
    return [v for v in graph.vertices() if in_cover[v]]


def _greedy_vertex_cover(graph: DiGraph, order: Sequence[int]) -> List[int]:
    """Greedy vertex cover: keep high-rank endpoints of uncovered edges."""
    in_cover = bytearray(graph.n)
    for v in order:
        if in_cover[v]:
            continue
        # v joins the cover if any incident edge is still uncovered.
        uncovered = any(not in_cover[u] for u in graph.inn(v)) or any(
            not in_cover[w] for w in graph.out(v)
        )
        if uncovered:
            in_cover[v] = 1
    # The pass above is over-eager (it covers each edge from both sides);
    # thin it: drop v if all its neighbours are themselves in the cover.
    # Process in *reverse* rank so low-importance vertices are dropped first.
    for v in reversed(order):
        if not in_cover[v]:
            continue
        if all(in_cover[u] for u in graph.inn(v)) and all(
            in_cover[w] for w in graph.out(v)
        ):
            in_cover[v] = 0
            # Removing v is only safe if every incident edge keeps a
            # covered endpoint, which the condition above guarantees.
    return [v for v in graph.vertices() if in_cover[v]]


# ----------------------------------------------------------------------
# Bounded traversals used by backbone-edge building and B-sets
# ----------------------------------------------------------------------
def _bounded_bfs(adj: Sequence[Sequence[int]], source: int, depth: int) -> Dict[int, int]:
    """``{vertex: dist}`` for all vertices within ``depth`` of ``source``."""
    dist = {source: 0}
    frontier = [source]
    d = 0
    while frontier and d < depth:
        d += 1
        nxt: List[int] = []
        nap = nxt.append
        for u in frontier:
            for w in adj[u]:
                if w not in dist:
                    dist[w] = d
                    nap(w)
        frontier = nxt
    return dist


class BackboneLevel:
    """One step ``Gi -> Gi+1`` of the hierarchical decomposition.

    Attributes
    ----------
    graph:
        ``Gi`` (in its own vertex coordinates).
    backbone_vertices:
        Sorted ``Gi`` ids forming ``Vi+1``.
    backbone_graph:
        ``Gi+1`` in compact coordinates ``0..|Vi+1|-1``.
    to_backbone / from_backbone:
        Coordinate maps between ``Gi`` ids and ``Gi+1`` ids.
    bout / bin_:
        For every ``Gi`` vertex, its (domination-pruned) backbone vertex
        sets ``Bεout(v|Gi)`` / ``Bεin(v|Gi)`` of Formulas 1-2, as ``Gi``
        ids.  Used directly by Hierarchical-Labeling.
    """

    __slots__ = (
        "graph",
        "eps",
        "backbone_vertices",
        "backbone_graph",
        "to_backbone",
        "from_backbone",
        "bout",
        "bin_",
    )

    def __init__(
        self,
        graph: DiGraph,
        eps: int,
        backbone_vertices: List[int],
        backbone_graph: DiGraph,
        to_backbone: Dict[int, int],
        from_backbone: List[int],
        bout: List[List[int]],
        bin_: List[List[int]],
    ) -> None:
        self.graph = graph
        self.eps = eps
        self.backbone_vertices = backbone_vertices
        self.backbone_graph = backbone_graph
        self.to_backbone = to_backbone
        self.from_backbone = from_backbone
        self.bout = bout
        self.bin_ = bin_

    def __repr__(self) -> str:
        return (
            f"BackboneLevel(|Vi|={self.graph.n}, |Vi+1|={len(self.backbone_vertices)}, "
            f"|Ei+1|={self.backbone_graph.m})"
        )


def build_backbone_level(
    graph: DiGraph,
    eps: int = 2,
    order_fn: OrderFn = degree_product_order,
    seed: int = 0,
    backend: str = "python",
) -> BackboneLevel:
    """Extract one backbone level from ``graph`` (= ``Gi``).

    ``backend="numpy"`` routes to the batched kernels in
    :mod:`repro.kernels.backbone` (bit-identical output: same cover,
    same backbone edges, same B-sets); the caller is responsible for
    resolving availability (see :func:`repro.kernels.resolve_backend`).
    """
    if backend == "numpy":
        from ..kernels import numpy_or_none
        from ..kernels.backbone import build_backbone_level_numpy

        return build_backbone_level_numpy(
            numpy_or_none(), graph, eps, order_fn, seed
        )
    order = order_fn(graph, seed)
    backbone = extract_cover(graph, eps, order)
    in_backbone = bytearray(graph.n)
    for v in backbone:
        in_backbone[v] = 1

    out_adj = graph.out_adj
    in_adj = graph.in_adj

    # within_out[b] / within_in[b]: backbone vertices at distance 1..eps
    # of backbone vertex b, used for both edge domination and B-set
    # domination checks.
    within_out: Dict[int, Set[int]] = {}
    within_in: Dict[int, Set[int]] = {}
    for b in backbone:
        dist = _bounded_bfs(out_adj, b, eps)
        within_out[b] = {x for x in dist if in_backbone[x] and x != b}
        rdist = _bounded_bfs(in_adj, b, eps)
        within_in[b] = {x for x in rdist if in_backbone[x] and x != b}

    # --- backbone edges: pairs within eps+1, minus dominated ones -----
    to_backbone = {v: i for i, v in enumerate(backbone)}
    bg = DiGraph(len(backbone))
    for b in backbone:
        reach = _bounded_bfs(out_adj, b, eps + 1)
        wout_b = within_out[b]
        for x, d in reach.items():
            if d == 0 or not in_backbone[x]:
                continue
            # Domination: skip (b, x) if some backbone y sits within eps
            # of both b (forward) and x (backward).
            win_x = within_in[x]
            dominated = False
            if wout_b and win_x:
                smaller, larger = (
                    (wout_b, win_x) if len(wout_b) < len(win_x) else (win_x, wout_b)
                )
                for y in smaller:
                    if y != b and y != x and y in larger:
                        dominated = True
                        break
            if not dominated:
                bg.add_edge(to_backbone[b], to_backbone[x])
    bg.freeze()

    # --- B-sets (Formulas 1-2) for every Gi vertex ---------------------
    bout: List[List[int]] = [[] for _ in range(graph.n)]
    bin_: List[List[int]] = [[] for _ in range(graph.n)]
    for v in graph.vertices():
        if in_backbone[v]:
            # Backbone vertices are labeled at a higher level; their
            # B-sets are never consulted.
            continue
        bout[v] = _pruned_candidates(out_adj, v, eps, in_backbone, within_out)
        bin_[v] = _pruned_candidates(in_adj, v, eps, in_backbone, within_in)

    return BackboneLevel(
        graph=graph,
        eps=eps,
        backbone_vertices=backbone,
        backbone_graph=bg,
        to_backbone=to_backbone,
        from_backbone=list(backbone),
        bout=bout,
        bin_=bin_,
    )


def _pruned_candidates(
    adj: Sequence[Sequence[int]],
    v: int,
    eps: int,
    in_backbone: bytearray,
    within: Dict[int, Set[int]],
) -> List[int]:
    """Backbone vertices within ``eps`` of ``v``, minus dominated ones.

    ``u`` is dominated when another candidate ``x`` reaches ``u`` within
    ``eps`` (``u ∈ within[x]``): any labeling need served by ``u`` is then
    served by ``x`` (Formulas 1-2 of the paper).
    """
    dist = _bounded_bfs(adj, v, eps)
    candidates = [x for x in dist if in_backbone[x]]
    if len(candidates) <= 1:
        return sorted(candidates)
    cand_set = set(candidates)
    kept = []
    for u in candidates:
        dominated = False
        for x in candidates:
            if x != u and u in within[x] and x in cand_set:
                dominated = True
                break
        if not dominated:
            kept.append(u)
    return sorted(kept)


# ----------------------------------------------------------------------
# Recursive decomposition (Definition 2)
# ----------------------------------------------------------------------
class Hierarchy:
    """Hierarchical DAG decomposition ``V0 ⊃ V1 ⊃ … ⊃ Vh``.

    ``levels[i]`` describes the step ``Gi -> Gi+1``; ``core_graph`` is
    ``Gh`` in its own compact coordinates.  ``orig_of_core[j]`` maps core
    vertex ``j`` back to a ``G0`` vertex id, and each level keeps its own
    ``orig_of`` map, so labels can always be expressed in original ids.
    """

    __slots__ = ("levels", "core_graph", "orig_of_level", "orig_of_core", "eps")

    def __init__(
        self,
        levels: List[BackboneLevel],
        core_graph: DiGraph,
        orig_of_level: List[List[int]],
        orig_of_core: List[int],
        eps: int,
    ) -> None:
        self.levels = levels
        self.core_graph = core_graph
        self.orig_of_level = orig_of_level
        self.orig_of_core = orig_of_core
        self.eps = eps

    @property
    def height(self) -> int:
        """Number of extraction steps (``h`` in the paper)."""
        return len(self.levels)

    def level_sizes(self) -> List[int]:
        """``[|V0|, |V1|, …, |Vh|]``."""
        sizes = [lvl.graph.n for lvl in self.levels]
        sizes.append(self.core_graph.n)
        return sizes

    def __repr__(self) -> str:
        return f"Hierarchy(levels={self.level_sizes()}, eps={self.eps})"


def hierarchical_decomposition(
    graph: DiGraph,
    eps: int = 2,
    core_limit: int = 64,
    max_levels: int = 16,
    order_fn: OrderFn = degree_product_order,
    seed: int = 0,
    backend: Optional[str] = None,
) -> Hierarchy:
    """Recursively extract backbones until the core is small.

    Stops when the next level would not shrink, when ``core_limit`` is
    reached, or after ``max_levels`` (the paper notes 5-6 levels suffice
    at ε=2 and suggests bounding ``h``).

    ``backend`` selects the level-builder per level: under ``"auto"``
    big levels run the batched numpy kernels and the shrinking tail
    levels fall back to the scalar builder (identical output either
    way, so the crossover is purely a speed decision).
    """
    from ..kernels import resolve_backend

    levels: List[BackboneLevel] = []
    orig_of_level: List[List[int]] = []
    g = graph
    orig_of = list(range(graph.n))
    while g.n > core_limit and len(levels) < max_levels:
        level = build_backbone_level(
            g,
            eps=eps,
            order_fn=order_fn,
            seed=seed,
            backend=resolve_backend(backend, g.n),
        )
        if len(level.backbone_vertices) >= g.n:
            break  # no shrink: stop rather than loop forever
        levels.append(level)
        orig_of_level.append(orig_of)
        orig_of = [orig_of[v] for v in level.from_backbone]
        g = level.backbone_graph
    return Hierarchy(
        levels=levels,
        core_graph=g,
        orig_of_level=orig_of_level,
        orig_of_core=orig_of,
        eps=eps,
    )
