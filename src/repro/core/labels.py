"""Hop-label containers and intersection kernels.

§1 of the paper makes a practical observation that matters as much as the
algorithms: earlier hop-labeling implementations stored ``Lout/Lin`` as
hash sets and paid for it at query time; storing them as **sorted
vectors** and intersecting by merge eliminates the gap to interval-based
indices.  We follow that advice: labels are sorted Python lists of ints,
and the empty-intersection test below is the single hottest function in
the library.

Three kernels are provided:

* :func:`sorted_intersect` — classic linear merge; best when the lists
  have similar lengths.
* :func:`gallop_intersect` — galloping/exponential search of the longer
  list; best when lengths are very skewed.
* :func:`intersects` — adaptive dispatcher used by the oracles.

A :class:`LabelSet` bundles the per-vertex ``Lout``/``Lin`` lists with
size accounting and (de)serialisation, shared by HL, DL, TF-label and
2HOP.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "sorted_intersect",
    "gallop_intersect",
    "intersects",
    "first_common_hop",
    "LabelSet",
]


def sorted_intersect(a: Sequence[int], b: Sequence[int]) -> bool:
    """Whether two strictly-increasing int sequences share an element."""
    i, j = 0, 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            return True
        if x < y:
            i += 1
        else:
            j += 1
    return False


def gallop_intersect(small: Sequence[int], big: Sequence[int]) -> bool:
    """Merge with binary search into the larger list.

    For each element of ``small``, binary-search ``big`` from a moving
    lower bound.  O(|small| · log |big|), which wins when
    ``|big| >> |small|``.
    """
    lo = 0
    hi = len(big)
    for x in small:
        lo = bisect_left(big, x, lo, hi)
        if lo == hi:
            return False
        if big[lo] == x:
            return True
    return False


# When the longer list is at least this many times the shorter, galloping
# beats the linear merge (empirically on CPython).
_GALLOP_RATIO = 16


def intersects(a: Sequence[int], b: Sequence[int]) -> bool:
    """Adaptive non-empty-intersection test for sorted int sequences."""
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return False
    # Cheap range rejection: disjoint value ranges cannot intersect.
    if a[-1] < b[0] or b[-1] < a[0]:
        return False
    if la * _GALLOP_RATIO < lb:
        return gallop_intersect(a, b)
    if lb * _GALLOP_RATIO < la:
        return gallop_intersect(b, a)
    return sorted_intersect(a, b)


def first_common_hop(a: Sequence[int], b: Sequence[int]) -> Optional[int]:
    """Smallest common element of two sorted sequences, or ``None``.

    Used by explanation utilities ("which hop certifies u -> v?") and by
    the Pruned-Landmark distance query.
    """
    i, j = 0, 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            return x
        if x < y:
            i += 1
        else:
            j += 1
    return None


class LabelSet:
    """Per-vertex ``Lout``/``Lin`` hop labels for ``n`` vertices.

    Hops are stored in whatever id space the owning algorithm chooses
    (DL stores rank indices, HL stores vertex ids); the owner is
    responsible for translating queries.  Lists must be kept sorted; the
    :meth:`check_sorted` helper is used by tests.
    """

    __slots__ = ("n", "lout", "lin", "lout_sets")

    def __init__(self, n: int) -> None:
        self.n = n
        self.lout: List[List[int]] = [[] for _ in range(n)]
        self.lin: List[List[int]] = [[] for _ in range(n)]
        #: Optional frozenset mirror of ``lout`` built by :meth:`seal`.
        self.lout_sets = None

    def seal(self) -> "LabelSet":
        """Build a frozenset mirror of ``Lout`` for fast queries.

        The paper's advice — sorted vectors over hash sets — is about
        C++ cache behaviour; in CPython the constant factors invert
        because ``frozenset.isdisjoint`` runs in C while a merge loop
        runs in the interpreter (our ablation-labelstore experiment
        measures ~3-5×).  We keep the sorted lists canonical (they are
        what construction merges, serialisation stores and witnesses
        scan) and mirror only the out side, probing the in-list against
        it.  Call again after mutating ``lout``.
        """
        self.lout_sets = [frozenset(x) for x in self.lout]
        return self

    def query(self, u: int, v: int) -> bool:
        """Whether ``Lout(u) ∩ Lin(v) ≠ ∅``."""
        sets = self.lout_sets
        if sets is not None:
            return not sets[u].isdisjoint(self.lin[v])
        return intersects(self.lout[u], self.lin[v])

    def witness(self, u: int, v: int) -> Optional[int]:
        """A common hop certifying ``u -> v``, or ``None``."""
        return first_common_hop(self.lout[u], self.lin[v])

    def size_ints(self) -> int:
        """Total number of integers stored — the paper's index-size metric."""
        return sum(len(x) for x in self.lout) + sum(len(x) for x in self.lin)

    def max_label_len(self) -> int:
        """Length of the longest single label (the L in the complexity bounds)."""
        longest_out = max((len(x) for x in self.lout), default=0)
        longest_in = max((len(x) for x in self.lin), default=0)
        return max(longest_out, longest_in)

    def average_label_len(self) -> float:
        """Mean of |Lout(v)| + |Lin(v)| over vertices."""
        if self.n == 0:
            return 0.0
        return self.size_ints() / self.n

    def check_sorted(self) -> bool:
        """Whether every label is strictly increasing (test invariant)."""
        for labels in (self.lout, self.lin):
            for lab in labels:
                for i in range(1, len(lab)):
                    if lab[i - 1] >= lab[i]:
                        return False
        return True

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by :mod:`repro.serialization`)."""
        return {"n": self.n, "lout": self.lout, "lin": self.lin}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LabelSet":
        """Inverse of :meth:`to_dict`."""
        ls = cls(int(data["n"]))
        ls.lout = [list(map(int, x)) for x in data["lout"]]
        ls.lin = [list(map(int, x)) for x in data["lin"]]
        if len(ls.lout) != ls.n or len(ls.lin) != ls.n:
            raise ValueError("label arrays do not match vertex count")
        return ls

    def __repr__(self) -> str:
        return f"LabelSet(n={self.n}, ints={self.size_ints()})"


def merge_sorted_unique(lists: Iterable[Sequence[int]]) -> List[int]:
    """Union of several sorted sequences as a sorted de-duplicated list.

    Used by Hierarchical-Labeling when folding backbone labels into a
    lower-level vertex (Formulas 4 and 5 of the paper).
    """
    merged = set()
    for lst in lists:
        merged.update(lst)
    return sorted(merged)
